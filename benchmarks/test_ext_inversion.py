"""Extension bench: the §2.2 inversion negative result, measured.

"If the PVN > 50%, then the confidence estimator can improve the
branch prediction accuracy by inverting the outcome of a low-confident
branch ... We have examined many confidence estimators in many
configurations, but have not found a situation where these conditions
hold across a range of programs."  This bench sweeps estimators x
predictors x workloads and checks the negative result survives the
reproduction -- including for *boosted* low-confidence signals, whose
per-branch PVN stays below break-even even when the composed event's
PVN exceeds 50% (boosting describes the pipeline, not one branch).
"""

from conftest import BENCH_SCALE

from repro.confidence import (
    BoostedEstimator,
    JRSEstimator,
    MispredictionDistanceEstimator,
    SaturatingCountersEstimator,
)
from repro.engine import workload_run
from repro.predictors import make_predictor
from repro.speculation import evaluate_inversion

WORKLOADS = ("compress", "gcc", "go", "perl", "xlisp", "vortex", "m88ksim", "jpeg")

CONFIGS = {
    "jrs>=15": lambda p: JRSEstimator(threshold=15, enhanced=True),
    "jrs>=8": lambda p: JRSEstimator(threshold=8, enhanced=True),
    "satcnt": lambda p: SaturatingCountersEstimator.for_predictor(p),
    "distance>4": lambda p: MispredictionDistanceEstimator(4),
    "boost3(satcnt)": lambda p: BoostedEstimator(
        SaturatingCountersEstimator.for_predictor(p), k=3
    ),
}


def run_sweep():
    rows = []
    for predictor_name in ("gshare", "mcfarling"):
        for config_name, factory in CONFIGS.items():
            helped = 0
            hurt = 0
            branches = 0
            wins = 0
            for workload in WORKLOADS:
                trace = workload_run(workload, BENCH_SCALE.iterations).trace
                predictor = make_predictor(predictor_name)
                result = evaluate_inversion(trace, predictor, factory(predictor))
                helped += result.flips_helped
                hurt += result.flips_hurt
                branches += result.branches
                if result.accuracy_delta > 0:
                    wins += 1
            rows.append(
                (predictor_name, config_name, helped, hurt, branches, wins)
            )
    return rows


def test_ext_inversion_negative_result(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'predictor':10s} {'estimator':16s} {'flip pvn':>9s}"
        f" {'accuracy delta':>15s} {'winning workloads':>18s}"
    ]
    for predictor_name, config_name, helped, hurt, branches, wins in rows:
        flips = helped + hurt
        flip_pvn = helped / flips if flips else 0.0
        delta = (helped - hurt) / branches if branches else 0.0
        lines.append(
            f"{predictor_name:10s} {config_name:16s} {flip_pvn:9.1%}"
            f" {delta:+15.2%} {wins:15d}/8"
        )
        # the paper's negative result: flipping LC branches never pays
        # across the suite -- every flipped population sits below the
        # 50% PVN break-even and the aggregate delta is negative
        assert flip_pvn < 0.5, (predictor_name, config_name)
        assert delta < 0, (predictor_name, config_name)
        assert wins <= 1, (predictor_name, config_name)
    (results_dir / "ext_inversion.txt").write_text("\n".join(lines) + "\n")
