"""Application benches: the three speculation-control uses of §2.2.

Not paper tables, but the paper's stated motivation; these benches pin
down that the estimators actually pay off when plugged into the
mechanisms the paper targets (pipeline gating for power, SMT fetch
control, eager execution).
"""

from conftest import BENCH_SCALE

from repro.confidence import JRSEstimator, SaturatingCountersEstimator
from repro.engine import workload_program
from repro.pipeline import PipelineConfig, PipelineSimulator
from repro.predictors import GsharePredictor
from repro.speculation import (
    compare_gating,
    compare_policies,
    evaluate_eager_execution,
)


def jrs_factory(predictor):
    return JRSEstimator(threshold=15, enhanced=True)


def test_app_pipeline_gating(benchmark, results_dir):
    def run():
        rows = {}
        for name in ("gcc", "go"):
            rows[name] = compare_gating(
                workload_program(name, BENCH_SCALE.iterations),
                GsharePredictor,
                jrs_factory,
                gate_threshold=2,
                max_instructions=BENCH_SCALE.pipeline_instructions,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["workload  extra-work-cut  slowdown"]
    for name, comparison in rows.items():
        lines.append(
            f"{name:9s} {comparison.extra_work_reduction:13.1%}"
            f" {comparison.slowdown:9.2%}"
        )
        # the power-conservation bargain: a solid cut in squashed work
        # for a small performance loss (gate threshold 2, as in the
        # companion pipeline-gating paper)
        assert comparison.extra_work_reduction > 0.15, name
        assert comparison.slowdown < 0.20, name
    (results_dir / "app_gating.txt").write_text("\n".join(lines) + "\n")


def test_app_smt_fetch_policy(benchmark, results_dir):
    programs = [
        workload_program("go", 120),
        workload_program("gcc", 120),
    ]

    def run():
        return compare_policies(
            programs,
            GsharePredictor,
            jrs_factory,
            config=PipelineConfig(resolve_stage=8),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    round_robin = results["round_robin"]
    confidence = results["confidence"]
    lines = [
        "policy       agg-ipc  wasted-fetch",
        f"round_robin  {round_robin.aggregate_ipc:7.3f}"
        f" {round_robin.wasted_fetch_fraction:12.1%}",
        f"confidence   {confidence.aggregate_ipc:7.3f}"
        f" {confidence.wasted_fetch_fraction:12.1%}",
    ]
    (results_dir / "app_smt.txt").write_text("\n".join(lines) + "\n")
    assert confidence.aggregate_ipc > round_robin.aggregate_ipc


def test_app_eager_execution(benchmark, results_dir):
    def run():
        program = workload_program("go", BENCH_SCALE.iterations)
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            program,
            predictor,
            estimators={
                "jrs": JRSEstimator(threshold=15, enhanced=True),
                "satcnt": SaturatingCountersEstimator.for_predictor(predictor),
            },
        )
        records = simulator.run(
            max_instructions=BENCH_SCALE.pipeline_instructions
        ).branch_records
        return {
            name: evaluate_eager_execution(records, name)
            for name in ("jrs", "satcnt")
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["estimator  forks  coverage  precision  net-cycles"]
    for name, outcome in outcomes.items():
        lines.append(
            f"{name:9s} {outcome.forks:6d} {outcome.coverage:8.1%}"
            f" {outcome.fork_precision:9.1%} {outcome.net_cycles:10.0f}"
        )
        # eager execution must pay off on a hard workload under both
        # estimators (PVN comfortably above the fork-cost break-even)
        assert outcome.net_cycles > 0, name
    (results_dir / "app_eager.txt").write_text("\n".join(lines) + "\n")
