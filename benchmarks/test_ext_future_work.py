"""Extension bench: the paper's §5 future-work designs, realised.

1. **Tuned static estimation** -- "an algorithm to 'tune' static
   confidence estimation to achieve a particular goal for PVN or SPEC"
   (`repro.confidence.tuning`).
2. **McFarling-structure-aware JRS** -- "a confidence estimator similar
   to the JRS mechanism designed to better exploit the structure of the
   McFarling two-level branch predictor"
   (:class:`~repro.confidence.jrs.CombiningJRSEstimator`).
3. The original Jacobsen **correct/incorrect registers**, and §4.1's
   global-distance-indexed CIR that the paper predicts "probably did
   not work well".
"""

from conftest import BENCH_SCALE

from repro.confidence import (
    CIREstimator,
    CombiningJRSEstimator,
    DistanceIndexedCIREstimator,
    JRSEstimator,
    profile_site_accuracy,
    tune_for_pvn,
    tune_for_spec,
)
from repro.engine import measure, workload_run
from repro.metrics import average_quadrants
from repro.predictors import make_predictor

WORKLOADS = ("compress", "gcc", "go", "perl", "xlisp", "vortex", "m88ksim", "jpeg")


def measure_suite(predictor_name, estimator_factories):
    quadrants = {name: [] for name in estimator_factories}
    for workload in WORKLOADS:
        trace = workload_run(workload, BENCH_SCALE.iterations).trace
        predictor = make_predictor(predictor_name)
        estimators = {
            name: factory(predictor)
            for name, factory in estimator_factories.items()
        }
        result = measure(trace, predictor, estimators)
        for name in estimator_factories:
            quadrants[name].append(result.quadrants[name])
    return {name: average_quadrants(qs) for name, qs in quadrants.items()}


def test_ext_combining_jrs_and_cir(benchmark, results_dir):
    averages = benchmark.pedantic(
        lambda: measure_suite(
            "mcfarling",
            {
                "jrs": lambda p: JRSEstimator(threshold=15, enhanced=True),
                "jrs-mcf": lambda p: CombiningJRSEstimator(threshold=15),
                "jrs-mcf-both": lambda p: CombiningJRSEstimator(
                    threshold=15, selection="both"
                ),
                "cir": lambda p: CIREstimator(register_bits=8, max_incorrect=0),
                "cir@dist": lambda p: DistanceIndexedCIREstimator(),
            },
        ),
        rounds=1,
        iterations=1,
    )
    lines = [f"{'estimator':14s} {'sens':>6s} {'spec':>6s} {'pvp':>7s} {'pvn':>6s}"]
    for name, quadrant in averages.items():
        lines.append(
            f"{name:14s} {quadrant.sens:6.1%} {quadrant.spec:6.1%}"
            f" {quadrant.pvp:7.2%} {quadrant.pvn:6.1%}"
        )
    (results_dir / "ext_future_work_estimators.txt").write_text(
        "\n".join(lines) + "\n"
    )

    jrs = averages["jrs"]
    combining = averages["jrs-mcf"]
    # the §5 design goal: exploiting both index structures of the
    # combining predictor recovers SENS and PVN over a gshare-shaped JRS
    assert combining.sens > jrs.sens
    assert combining.pvn > jrs.pvn
    assert combining.pvp > jrs.pvp - 0.02
    # the conservative variant buys back SPEC/PVP instead
    assert averages["jrs-mcf-both"].spec > combining.spec

    # Jacobsen's CIR and the resetting MDC are close cousins: the MDC
    # approximates the all-correct CIR reduction at a fraction of the
    # storage, so their metrics should be in the same neighbourhood
    cir = averages["cir"]
    assert abs(cir.pvp - jrs.pvp) < 0.03
    assert abs(cir.spec - jrs.spec) < 0.10

    # §4.1's prediction about the distance-indexed CIR: the index
    # matches no predictor structure, so its SPEC collapses
    assert averages["cir@dist"].spec < jrs.spec - 0.3


def test_ext_tuned_static(benchmark, results_dir):
    def run():
        rows = []
        for workload in ("gcc", "go", "compress"):
            trace = workload_run(workload, BENCH_SCALE.iterations).trace
            counts = profile_site_accuracy(trace, make_predictor("gshare"))
            for target in (0.6, 0.8, 0.95):
                tuned = tune_for_spec(counts, target)
                measured = measure(
                    trace, make_predictor("gshare"), {"t": tuned.estimator}
                ).quadrants["t"]
                rows.append((workload, "spec", target, tuned, measured))
            for target in (0.3, 0.4):
                tuned = tune_for_pvn(counts, target)
                measured = measure(
                    trace, make_predictor("gshare"), {"t": tuned.estimator}
                ).quadrants["t"]
                rows.append((workload, "pvn", target, tuned, measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'workload':9s} {'goal':>5s} {'target':>7s} {'tuned':>7s}"
        f" {'measured':>9s} {'sens kept':>10s}"
    ]
    for workload, goal, target, tuned, measured in rows:
        tuned_value = tuned.achieved_spec if goal == "spec" else tuned.achieved_pvn
        measured_value = measured.spec if goal == "spec" else measured.pvn
        lines.append(
            f"{workload:9s} {goal:>5s} {target:7.0%} {tuned_value:7.1%}"
            f" {measured_value:9.1%} {measured.sens:10.1%}"
        )
        # the tuner hits its target on the profile, and the measured
        # value lands on the tuned one (self-profiled best case)
        assert tuned_value >= target - 1e-9 or not tuned.low_confidence_sites
        assert abs(measured_value - tuned_value) < 0.05
    (results_dir / "ext_tuned_static.txt").write_text("\n".join(lines) + "\n")
