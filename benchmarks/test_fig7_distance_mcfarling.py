"""Bench fig7: precise misprediction distance, McFarling (Figure 7)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig7_precise_distance_mcfarling(benchmark, results_dir):
    fig7 = benchmark.pedantic(
        lambda: run_experiment("fig7", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, fig7)
    fig6 = run_experiment("fig6", BENCH_SCALE)  # memoised

    curve = fig7.data["all"]
    assert curve.clustering_ratio > 1.5
    # McFarling's average misprediction rate sits below gshare's
    assert curve.average_rate < fig6.data["all"].average_rate
    # clustering survives the better predictor
    assert (
        curve.buckets[0].misprediction_rate
        > 1.5 * curve.average_rate
    )
