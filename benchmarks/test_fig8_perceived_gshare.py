"""Bench fig8: perceived misprediction distance, gshare (Figure 8)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig8_perceived_distance_gshare(benchmark, results_dir):
    fig8 = benchmark.pedantic(
        lambda: run_experiment("fig8", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, fig8)
    fig6 = run_experiment("fig6", BENCH_SCALE)  # memoised

    perceived = fig8.data["all"]
    precise = fig6.data["all"]

    # detection delay skews clustering toward larger distances: in the
    # 1..4 band the perceived curve sits above the precise curve
    def band_rate(curve, lo, hi):
        branches = sum(bucket.branches for bucket in curve.buckets[lo:hi])
        misses = sum(bucket.mispredictions for bucket in curve.buckets[lo:hi])
        return misses / branches if branches else 0.0

    assert band_rate(perceived, 1, 5) > band_rate(precise, 1, 5)
    # clustering is still visible in the implementable signal
    assert perceived.clustering_ratio > 1.3
