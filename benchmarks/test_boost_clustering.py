"""Bench boost: mis-estimation clustering and PVN boosting (§4.2)."""

import pytest
from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_boost_clustering_and_bernoulli_model(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("boost", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)

    # mis-estimations cluster only mildly and the rate decays with
    # distance (paper's 45% -> 41% -> 33% shape)
    for label, curve in result.data["curves"].items():
        head = curve.buckets[0].misprediction_rate
        mid = curve.buckets[4].misprediction_rate
        assert head > mid, label

    # boosting: k=2 and k=3 raise the effective PVN, and the Bernoulli
    # closed form 1-(1-pvn)^k tracks the measurement
    boosting = result.data["boosting"]
    for (label, k), (base, empirical, analytic) in boosting.items():
        if k == 1:
            assert empirical == pytest.approx(base, abs=1e-9)
        else:
            assert empirical > base, (label, k)
            assert empirical == pytest.approx(analytic, abs=0.08), (label, k)
