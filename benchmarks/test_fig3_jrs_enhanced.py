"""Bench fig3: enhanced (prediction-in-index) JRS vs the original."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig3_enhanced_jrs(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    enhanced = result.data["enhanced"]
    original = result.data["original"]

    # the paper's "noticeable performance difference": at matched
    # thresholds the enhanced index gives at least as good a PVP/PVN
    # front, and strictly better at the saturation threshold
    wins = 0
    for threshold in range(4, 16):
        enhanced_quadrant = enhanced.point(threshold).quadrant
        original_quadrant = original.point(threshold).quadrant
        assert enhanced_quadrant.pvp >= original_quadrant.pvp - 0.02
        if (
            enhanced_quadrant.pvp > original_quadrant.pvp + 0.001
            or enhanced_quadrant.pvn > original_quadrant.pvn + 0.001
        ):
            wins += 1
    assert wins >= 6
