"""Ablation: precise vs perceived reset source for the distance estimator.

DESIGN.md §5(3).  The distance estimator resets on *detected*
mispredictions (what hardware can implement).  An oracle variant that
resets the moment a mispredicted branch is fetched would track the
cluster more tightly.  The trace engine gives exactly that oracle
(resolution immediately follows prediction), while the pipeline gives
the implementable behaviour, so comparing the two quantifies the cost
of the detection delay.
"""

from conftest import BENCH_SCALE

from repro.confidence import MispredictionDistanceEstimator
from repro.engine import measure, workload_program, workload_run
from repro.metrics import average_quadrants
from repro.pipeline import PipelineSimulator
from repro.predictors import GsharePredictor

WORKLOADS = ("compress", "gcc", "go", "vortex")
THRESHOLD = 3


def run_both():
    oracle = []
    implementable = []
    for name in WORKLOADS:
        trace = workload_run(name, BENCH_SCALE.iterations).trace
        oracle.append(
            measure(
                trace,
                GsharePredictor(),
                {"dist": MispredictionDistanceEstimator(THRESHOLD)},
            ).quadrants["dist"]
        )
        program = workload_program(name, BENCH_SCALE.iterations)
        simulator = PipelineSimulator(
            program,
            GsharePredictor(),
            estimators={"dist": MispredictionDistanceEstimator(THRESHOLD)},
        )
        result = simulator.run(max_instructions=BENCH_SCALE.pipeline_instructions)
        implementable.append(result.quadrants_committed["dist"])
    return average_quadrants(oracle), average_quadrants(implementable)


def test_ablation_distance_reset_source(benchmark, results_dir):
    oracle, implementable = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        "reset source   sens    spec    pvp     pvn",
        f"precise/oracle {oracle.sens:6.1%} {oracle.spec:6.1%}"
        f" {oracle.pvp:6.1%} {oracle.pvn:6.1%}",
        f"perceived      {implementable.sens:6.1%} {implementable.spec:6.1%}"
        f" {implementable.pvp:6.1%} {implementable.pvn:6.1%}",
    ]
    (results_dir / "ablation_distance_source.txt").write_text(
        "\n".join(lines) + "\n"
    )
    # both variants must behave like distance estimators at all
    for quadrant in (oracle, implementable):
        assert 0.2 <= quadrant.sens <= 0.98
        assert quadrant.pvp > 0.8
    # the oracle resets earlier, so it tags the cluster's branches LC
    # more aggressively right where they mispredict: its PVN should not
    # be materially worse than the implementable signal's
    assert oracle.pvn >= implementable.pvn - 0.05
