"""Bench fig9: perceived misprediction distance, McFarling (Figure 9)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig9_perceived_distance_mcfarling(benchmark, results_dir):
    fig9 = benchmark.pedantic(
        lambda: run_experiment("fig9", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, fig9)
    fig7 = run_experiment("fig7", BENCH_SCALE)  # memoised

    perceived = fig9.data["all"]
    precise = fig7.data["all"]

    def band_rate(curve, lo, hi):
        branches = sum(bucket.branches for bucket in curve.buckets[lo:hi])
        misses = sum(bucket.mispredictions for bucket in curve.buckets[lo:hi])
        return misses / branches if branches else 0.0

    # the same skew as Figure 8, on the better predictor
    assert band_rate(perceived, 1, 5) > band_rate(precise, 1, 5)
    # paper: the committed distribution stays similar between the
    # precise and perceived views
    committed_perceived = fig9.data["committed"]
    committed_precise = fig7.data["committed"]
    assert abs(
        committed_perceived.average_rate - committed_precise.average_rate
    ) < 0.02
