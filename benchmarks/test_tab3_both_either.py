"""Bench tab3: Both-Strong vs Either-Strong counter variants (Table 3)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_tab3_saturating_variants(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab3", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    both = result.data["both_mean"]
    either = result.data["either_mean"]

    # paper §3.3.1: Both Strong -> higher SPEC and PVP (more branches
    # marked LC, so more mispredictions caught); Either Strong -> higher
    # SENS, and -- because its LC set is the both-weak subset, the most
    # misprediction-prone branches -- a higher PVN.  (The paper's prose
    # here is self-contradictory about PVP/PVN; Bayes settles it this
    # way, and the measurement agrees.)
    assert both.spec > either.spec
    assert either.pvn >= both.pvn
    assert either.sens > both.sens
    assert both.pvp >= either.pvp - 0.01
    # sanity band around the paper's suite means (67% / 78%)
    assert 0.4 <= both.sens <= 0.9
    assert 0.5 <= both.spec <= 0.95
