"""Bench the artifact cache: warm reruns must skip re-simulation.

Runs a small battery cold (empty cache) and warm (second pass over the
same cache) and checks the contract the harness relies on: identical
rendered tables, a 100% hit rate on the warm pass, and strictly less
simulated work.
"""

from repro.engine import BRANCHES_METRIC
from repro.engine.cache import configure, get_cache
from repro.engine.corpus import clear_cache
from repro.harness import SMOKE, clear_memoised, run_all
from repro.obs.registry import REGISTRY


def _drop_memo():
    """Forget in-process memoisation but keep the disk cache."""
    clear_memoised()
    clear_cache()


def _simulated_branches(baseline):
    return REGISTRY.since(baseline).counters.get(BRANCHES_METRIC, 0.0)


def test_warm_cache_skips_resimulation(benchmark, tmp_path):
    previous = get_cache()
    try:
        configure(root=tmp_path / "artifacts", enabled=True)
        clear_memoised()
        clear_cache()
        selected = ["tab2", "fig6"]

        cold_base = REGISTRY.snapshot()
        cold = run_all(scale=SMOKE, only=selected)
        cold_work = _simulated_branches(cold_base)
        cold_stats = get_cache().stats.snapshot()
        assert cold_stats.writes > 0, "cold run should populate the cache"

        _drop_memo()
        warm_base = REGISTRY.snapshot()
        warm = benchmark.pedantic(
            lambda: run_all(scale=SMOKE, only=selected), rounds=1, iterations=1
        )
        warm_work = _simulated_branches(warm_base)
        warm_delta = get_cache().stats.since(cold_stats)

        for experiment_id in selected:
            assert warm[experiment_id].to_text() == cold[experiment_id].to_text()
        assert warm_delta.misses == 0, "warm pass must be all hits"
        assert warm_delta.hits > 0
        assert warm_work < cold_work, "warm pass must re-simulate less"
    finally:
        configure(root=previous.root, enabled=previous.enabled)
        clear_memoised()
        clear_cache()
