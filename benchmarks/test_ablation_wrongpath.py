"""Ablation: estimator quadrants over committed vs all fetched branches.

DESIGN.md §5(5).  The paper restricts its reported numbers to committed
branches but records everything; this bench measures how much the
wrong-path population shifts an estimator's metrics -- i.e. how wrong a
committed-only (trace) evaluation would be about what the hardware
actually sees.
"""

from conftest import BENCH_SCALE

from repro.confidence import JRSEstimator
from repro.engine import workload_program
from repro.metrics import average_quadrants
from repro.pipeline import PipelineSimulator
from repro.predictors import GsharePredictor

WORKLOADS = ("compress", "gcc", "go", "vortex")


def run_pipelines():
    committed = []
    fetched = []
    for name in WORKLOADS:
        program = workload_program(name, BENCH_SCALE.iterations)
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            program,
            predictor,
            estimators={"jrs": JRSEstimator(threshold=15, enhanced=True)},
        )
        result = simulator.run(max_instructions=BENCH_SCALE.pipeline_instructions)
        committed.append(result.quadrants_committed["jrs"])
        fetched.append(result.quadrants_all["jrs"])
    return average_quadrants(committed), average_quadrants(fetched)


def test_ablation_wrong_path_population(benchmark, results_dir):
    committed, fetched = benchmark.pedantic(run_pipelines, rounds=1, iterations=1)
    lines = [
        "population  sens    spec    pvp     pvn     accuracy",
        f"committed   {committed.sens:6.1%} {committed.spec:6.1%}"
        f" {committed.pvp:6.1%} {committed.pvn:6.1%} {committed.accuracy:6.1%}",
        f"all-fetched {fetched.sens:6.1%} {fetched.spec:6.1%}"
        f" {fetched.pvp:6.1%} {fetched.pvn:6.1%} {fetched.accuracy:6.1%}",
    ]
    (results_dir / "ablation_wrongpath.txt").write_text("\n".join(lines) + "\n")

    # wrong-path branches mispredict (in context) more often, so the
    # all-fetched population has lower accuracy ...
    assert fetched.accuracy < committed.accuracy
    # ... and supplies the estimator with more low-confidence work
    assert fetched.coverage >= committed.coverage - 0.02
    # the headline metrics remain in the same regime (the paper's
    # committed-only reporting is not wildly unrepresentative)
    assert abs(fetched.pvp - committed.pvp) < 0.10
