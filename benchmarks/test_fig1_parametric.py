"""Bench fig1: regenerate Figure 1's parametric PVP/PVN curves."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig1_parametric(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig1", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    curves = result.data["curves"]
    assert len(curves) == 5
    # the right-most curve of the paper's figure: spec=99%, p=90%;
    # sweeping sens drives PVP toward ~1 while PVN climbs
    rightmost = curves[2]
    __, pvp_hi, pvn_hi = rightmost.points[-2]
    assert pvp_hi > 0.98
    assert pvn_hi > 0.8
