"""Bench tab1: program characteristics (Table 1)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment
from repro.harness.paper_values import FETCH_COMMIT_RATIO_RANGE


def test_tab1_program_characteristics(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab1", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)

    ratios = result.data["ratios"]
    low, high = FETCH_COMMIT_RATIO_RANGE
    # paper: "typically issue 20-100% more instructions than commit";
    # allow a little slack on both sides of the quoted band
    for workload, ratio in ratios.items():
        assert low - 0.1 <= ratio <= high + 0.5, (workload, ratio)

    accuracies = result.data["accuracies"]
    # predictability ordering of the suite (Table 1's shape)
    gshare = {name: accs["gshare"] for name, accs in accuracies.items()}
    assert gshare["go"] == min(gshare.values())
    assert gshare["vortex"] == max(gshare.values())
    # the three predictors land in a plausible band on every workload
    for name, accs in accuracies.items():
        for predictor, accuracy in accs.items():
            assert 0.70 <= accuracy <= 0.995, (name, predictor, accuracy)
