"""Extension bench: the wider two-level predictor family.

Extends Table 1/Table 2 with GAg, gselect and PAs, quantifying the
paper's structural-match thesis across more predictor shapes:

* gshare > gselect > GAg on accuracy (more useful index bits);
* the pattern-history estimator works on PAs (its original home, per
  Lick et al.) just as it does on SAg, and fails on the global-history
  predictors.
"""

from conftest import BENCH_SCALE

from repro.confidence import PatternHistoryEstimator
from repro.engine import measure, measure_accuracy, workload_run
from repro.metrics import average_quadrants
from repro.predictors import make_predictor

WORKLOADS = ("compress", "gcc", "go", "perl", "xlisp", "vortex", "m88ksim", "jpeg")
PREDICTORS = ("gshare", "gselect", "gag", "sag", "pas", "bimodal")


def run_family():
    accuracies = {name: [] for name in PREDICTORS}
    pattern_quadrants = {name: [] for name in ("gshare", "sag", "pas")}
    for workload in WORKLOADS:
        trace = workload_run(workload, BENCH_SCALE.iterations).trace
        for predictor_name in PREDICTORS:
            predictor = make_predictor(predictor_name)
            if predictor_name in pattern_quadrants:
                result = measure(
                    trace,
                    predictor,
                    {"pattern": PatternHistoryEstimator.for_predictor(predictor)},
                )
                pattern_quadrants[predictor_name].append(
                    result.quadrants["pattern"]
                )
            else:
                result = measure_accuracy(trace, predictor)
            accuracies[predictor_name].append(result.accuracy)
    mean_accuracy = {
        name: sum(values) / len(values) for name, values in accuracies.items()
    }
    mean_pattern = {
        name: average_quadrants(quadrants)
        for name, quadrants in pattern_quadrants.items()
    }
    return mean_accuracy, mean_pattern


def test_ext_predictor_family(benchmark, results_dir):
    mean_accuracy, mean_pattern = benchmark.pedantic(
        run_family, rounds=1, iterations=1
    )
    lines = ["predictor  mean accuracy"]
    for name in PREDICTORS:
        lines.append(f"{name:10s} {mean_accuracy[name]:12.2%}")
    lines.append("")
    lines.append("pattern-history estimator per substrate:")
    for name, quadrant in mean_pattern.items():
        lines.append(
            f"  {name:8s} sens {quadrant.sens:6.1%}  spec {quadrant.spec:6.1%}"
            f"  pvp {quadrant.pvp:7.2%}  pvn {quadrant.pvn:6.1%}"
        )
    (results_dir / "ext_predictor_family.txt").write_text("\n".join(lines) + "\n")

    # PC bits in the index matter: both gshare and gselect beat the
    # PC-blind GAg, and the two sit close together (McFarling reports
    # gshare only marginally ahead; at small geometries gselect's
    # shorter history can even win, as it does here)
    assert mean_accuracy["gshare"] > mean_accuracy["gag"]
    assert mean_accuracy["gselect"] > mean_accuracy["gag"]
    assert abs(mean_accuracy["gshare"] - mean_accuracy["gselect"]) < 0.03
    # bimodal trails every two-level scheme
    assert mean_accuracy["bimodal"] == min(mean_accuracy.values())
    # local-history predictors are in the same band as in the paper
    assert abs(mean_accuracy["sag"] - mean_accuracy["pas"]) < 0.05

    # the structural-match thesis, extended: pattern history works on
    # local-history substrates and collapses on gshare
    assert mean_pattern["pas"].sens > 3 * mean_pattern["gshare"].sens
    assert mean_pattern["sag"].sens > 3 * mean_pattern["gshare"].sens
