"""Bench fig4: JRS design space (table sizes x thresholds) on gshare."""

import pytest
from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig4_jrs_design_space_gshare(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    lines = result.data["lines"]

    # higher thresholds: SENS falls, SPEC rises (monotone trade-off)
    for size, line in lines.items():
        sens = [point.quadrant.sens for point in line.points]
        spec = [point.quadrant.spec for point in line.points]
        assert sens == sorted(sens, reverse=True), size
        assert spec == sorted(spec), size

    # bigger MDC tables dominate smaller ones on PVP at saturation
    assert (
        lines[4096].point(15).quadrant.pvp
        >= lines[64].point(15).quadrant.pvp - 0.01
    )

    # threshold 16 is unreachable: all LC, PVN == misprediction rate
    for line in lines.values():
        top = line.point(16).quadrant
        assert top.high_confidence == 0
        assert top.pvn == pytest.approx(top.misprediction_rate, abs=1e-9)
