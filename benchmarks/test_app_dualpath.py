"""Application bench: selective dual-path execution end to end.

The full-pipeline version of the §2.2 eager-execution application:
forks really change the front end's behaviour (bandwidth dilution,
flush-free mispredictions), so the estimator-quality ranking the paper
predicts from PVN/SPEC shows up directly as cycle counts.
"""

from conftest import BENCH_SCALE

from repro.confidence import (
    JRSEstimator,
    MispredictionDistanceEstimator,
    SaturatingCountersEstimator,
)
from repro.engine import workload_program
from repro.predictors import GsharePredictor
from repro.speculation import compare_eager_execution

CONFIGS = {
    "satcnt": lambda p: SaturatingCountersEstimator.for_predictor(p),
    "jrs>=15": lambda p: JRSEstimator(threshold=15, enhanced=True),
    "distance>4": lambda p: MispredictionDistanceEstimator(4),
    "always-LC": lambda p: JRSEstimator(threshold=16),  # fork on everything
    "always-HC": lambda p: JRSEstimator(threshold=0),  # never fork
}


def run_matrix():
    out = {}
    for workload in ("go", "gcc", "vortex"):
        prog = workload_program(workload, BENCH_SCALE.iterations)
        for name, factory in CONFIGS.items():
            out[(workload, name)] = compare_eager_execution(
                prog,
                GsharePredictor,
                factory,
                max_instructions=BENCH_SCALE.pipeline_instructions,
            )
    return out


def test_app_dualpath_execution(benchmark, results_dir):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = [
        f"{'workload':9s} {'estimator':12s} {'speedup':>8s} {'forks':>7s}"
        f" {'precision':>10s} {'coverage':>9s}"
    ]
    for (workload, name), comparison in matrix.items():
        lines.append(
            f"{workload:9s} {name:12s} {comparison.speedup:+8.1%}"
            f" {comparison.forks:7,d} {comparison.fork_precision:10.1%}"
            f" {comparison.coverage:9.1%}"
        )
    (results_dir / "app_dualpath.txt").write_text("\n".join(lines) + "\n")

    for workload in ("go", "gcc"):
        # forking on a decent estimator wins on misprediction-heavy code
        assert matrix[(workload, "satcnt")].speedup > 0.02, workload
        assert matrix[(workload, "jrs>=15")].speedup > 0.0, workload
        # never-fork is the exact baseline
        assert abs(matrix[(workload, "always-HC")].speedup) < 0.02, workload
        # the estimator beats indiscriminate forking: selectivity (the
        # PVN) is what earns the speedup beyond blind dual-path
        assert (
            matrix[(workload, "satcnt")].speedup
            > matrix[(workload, "always-LC")].speedup
        ), workload
    # on a highly predictable workload there is little to win
    assert matrix[("vortex", "satcnt")].speedup < matrix[("go", "satcnt")].speedup
