"""Bench fig6: precise misprediction distance, gshare (Figure 6)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig6_precise_distance_gshare(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    curve_all = result.data["all"]
    curve_committed = result.data["committed"]

    # clustering: branches right after a misprediction mispredict far
    # more often than the average line
    assert curve_all.clustering_ratio > 1.5
    assert curve_committed.clustering_ratio > 1.3

    # the curve decays toward (and below) the average at large distance
    assert (
        curve_all.buckets[0].misprediction_rate
        > 2 * curve_all.buckets[-1].misprediction_rate
    )

    # the pipeline view (all branches) shows more near-distance trouble
    # than a committed-only trace would
    assert (
        curve_all.buckets[0].misprediction_rate
        >= curve_committed.buckets[0].misprediction_rate - 0.02
    )
