"""Ablation: self-profiled vs cross-input static estimation.

The paper reports the static estimator under *self-profiling* -- the
same input trains and evaluates the hint bits -- and explicitly calls
that "a best-case evaluation of this confidence method".  This ablation
quantifies the optimism: train the hints on one input (the profile's
default LCG/data seeds), evaluate on a *different* input to the same
program structure (fresh seeds), and compare.
"""

from dataclasses import replace

from conftest import BENCH_SCALE

from repro.confidence import StaticEstimator, profile_site_accuracy
from repro.engine import measure, trace_branches
from repro.metrics import average_quadrants
from repro.predictors import GsharePredictor
from repro.workloads import generate_program, get_profile

WORKLOADS = ("compress", "gcc", "go")


def traces_for(workload):
    profile = get_profile(workload)
    train_program = generate_program(profile, iterations=BENCH_SCALE.iterations)
    test_profile = replace(
        profile,
        lcg_seed=profile.lcg_seed ^ 0x5A5A5A5A,
        data_seed=profile.data_seed + 9999,
    )
    test_program = generate_program(test_profile, iterations=BENCH_SCALE.iterations)
    return trace_branches(train_program).trace, trace_branches(test_program).trace


def run_comparison():
    self_profiled = []
    cross_input = []
    for workload in WORKLOADS:
        train_trace, test_trace = traces_for(workload)
        counts = profile_site_accuracy(train_trace, GsharePredictor())
        sites = frozenset(
            pc
            for pc, (correct, total) in counts.items()
            if total and correct / total >= 0.90
        )
        estimator = StaticEstimator(sites, threshold=0.90)
        self_profiled.append(
            measure(train_trace, GsharePredictor(), {"s": estimator}).quadrants["s"]
        )
        cross_input.append(
            measure(test_trace, GsharePredictor(), {"s": estimator}).quadrants["s"]
        )
    return average_quadrants(self_profiled), average_quadrants(cross_input)


def test_ablation_static_training_input(benchmark, results_dir):
    self_profiled, cross_input = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    lines = [
        "training       sens    spec    pvp     pvn",
        f"self-profiled  {self_profiled.sens:6.1%} {self_profiled.spec:6.1%}"
        f" {self_profiled.pvp:6.2%} {self_profiled.pvn:6.1%}",
        f"cross-input    {cross_input.sens:6.1%} {cross_input.spec:6.1%}"
        f" {cross_input.pvp:6.2%} {cross_input.pvn:6.1%}",
    ]
    (results_dir / "ablation_static_training.txt").write_text(
        "\n".join(lines) + "\n"
    )
    # the hints must transfer: site *identity* (which sites are easy) is
    # a structural property, so cross-input metrics stay in the same
    # regime even though the exact outcome sequence changed ...
    assert abs(cross_input.pvp - self_profiled.pvp) < 0.05
    assert abs(cross_input.spec - self_profiled.spec) < 0.15
    # ... while self-profiling keeps its (mild) best-case advantage on
    # the PVP/SPEC front overall
    assert (
        self_profiled.pvp + self_profiled.spec
        >= cross_input.pvp + cross_input.spec - 0.02
    )
