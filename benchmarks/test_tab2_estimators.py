"""Bench tab2: the four estimators over three predictors (Table 2)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_tab2_estimator_comparison(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab2", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    averages = result.data["averages"]

    # --- gshare column (paper: JRS 56/96/98/30, satcnt 88/42/88/41,
    #     pattern sens 17, static 55/89/96/28) -----------------------
    jrs = averages[("gshare", "jrs")]
    satcnt = averages[("gshare", "satcnt")]
    pattern = averages[("gshare", "pattern")]
    static = averages[("gshare", "static")]
    # JRS: highest PVP, very high SPEC, moderate SENS
    assert jrs.pvp >= max(satcnt.pvp, pattern.pvp, static.pvp) - 0.02
    assert jrs.spec > 0.85
    assert 0.3 <= jrs.sens <= 0.8
    # saturating counters: more sensitive, far less specific, best PVN
    assert satcnt.sens > jrs.sens
    assert satcnt.spec < jrs.spec
    assert satcnt.pvn >= jrs.pvn
    # pattern history collapses under global history
    assert pattern.sens < 0.25
    # static roughly tracks JRS
    assert abs(static.pvp - jrs.pvp) < 0.1

    # --- predictor transition: PVN sinks as accuracy rises ----------
    for estimator in ("jrs", "satcnt"):
        assert (
            averages[("mcfarling", estimator)].pvn
            < averages[("gshare", estimator)].pvn
        ), estimator
    # static is near-flat in the paper too (28% -> 26%); just require it
    # not to move far
    assert abs(
        averages[("mcfarling", "static")].pvn - averages[("gshare", "static")].pvn
    ) < 0.08

    # --- SAg column: pattern history becomes competitive ------------
    assert averages[("sag", "pattern")].sens > 0.45
    assert averages[("sag", "pattern")].pvp > 0.9
