"""Ablation: speculative vs non-speculative global history update.

DESIGN.md §5(1).  The paper runs gshare/McFarling with speculative
history plus repair and notes that non-speculative update "will
slightly increase the branch misprediction rate".  In a trace-driven
run the two are provably identical (predict/resolve are adjacent); the
difference only exists under a pipeline with branches in flight, so
this ablation runs the pipeline.
"""

from conftest import BENCH_SCALE

from repro.pipeline import PipelineSimulator
from repro.predictors import GsharePredictor
from repro.engine import workload_program

WORKLOADS = ("gcc", "go", "perl", "xlisp")


def run_variant(speculative: bool):
    accuracies = {}
    for name in WORKLOADS:
        program = workload_program(name, BENCH_SCALE.iterations)
        predictor = GsharePredictor(speculative_history=speculative)
        result = PipelineSimulator(program, predictor).run(
            max_instructions=BENCH_SCALE.pipeline_instructions
        )
        accuracies[name] = result.stats.committed_accuracy
    return accuracies


def test_ablation_speculative_history(benchmark, results_dir):
    speculative = benchmark.pedantic(
        lambda: run_variant(True), rounds=1, iterations=1
    )
    non_speculative = run_variant(False)

    lines = ["workload  speculative  non-speculative  delta"]
    wins = 0
    for name in WORKLOADS:
        delta = speculative[name] - non_speculative[name]
        lines.append(
            f"{name:9s} {speculative[name]:10.2%} {non_speculative[name]:14.2%}"
            f" {delta:+7.3%}"
        )
        if delta >= -0.003:  # speculative at least ties (small noise band)
            wins += 1
    (results_dir / "ablation_spec_history.txt").write_text("\n".join(lines) + "\n")
    # the paper's direction: speculative update should not lose; expect
    # it to at least tie on most workloads
    assert wins >= len(WORKLOADS) - 1
