"""Ablation: the paper's quadrant averaging vs naive metric averaging.

DESIGN.md §5(4).  The paper insists on averaging the quadrant
frequencies and then taking ratios.  This bench quantifies how much the
two disciplines disagree on the actual Table 2 data -- the reason the
paper spells its method out.
"""

from conftest import BENCH_SCALE

from repro.harness import run_experiment
from repro.harness.experiments import _table2_measurements
from repro.metrics import average_quadrants, metric_means


def test_ablation_averaging_method(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab2", BENCH_SCALE), rounds=1, iterations=1
    )
    lines = ["predictor  estimator  metric     paper-style  naive-mean  |delta|"]
    max_delta = 0.0
    for predictor in ("gshare", "mcfarling", "sag"):
        per_workload, __ = _table2_measurements(
            predictor, BENCH_SCALE.key(), BENCH_SCALE.workloads
        )
        for estimator in ("jrs", "satcnt", "pattern", "static"):
            quadrants = [per_workload[w][estimator] for w in BENCH_SCALE.workloads]
            paper_style = average_quadrants(quadrants)
            naive = metric_means(quadrants)
            for metric in ("sens", "spec", "pvp", "pvn"):
                a = getattr(paper_style, metric)
                b = naive[metric]
                delta = abs(a - b)
                max_delta = max(max_delta, delta)
                lines.append(
                    f"{predictor:10s} {estimator:9s} {metric:9s}"
                    f" {a:11.2%} {b:10.2%} {delta:7.3%}"
                )
    (results_dir / "ablation_averaging.txt").write_text("\n".join(lines) + "\n")
    # the disciplines genuinely disagree somewhere (else the paper's
    # methodological point would be moot) ...
    assert max_delta > 0.005
    # ... but not so wildly that either is broken
    assert max_delta < 0.25
