"""Bench tab4: the misprediction-distance estimator (Table 4)."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_tab4_distance_estimator(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab4", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, result)
    rows = result.data["rows"]

    for predictor in ("gshare", "mcfarling"):
        sens = [rows[("distance", predictor, t)].sens for t in range(1, 8)]
        spec = [rows[("distance", predictor, t)].spec for t in range(1, 8)]
        pvp = [rows[("distance", predictor, t)].pvp for t in range(1, 8)]
        # paper Table 4 shape: raising the distance threshold trades
        # SENS down for SPEC up, with PVP slowly improving
        assert sens == sorted(sens, reverse=True), predictor
        assert spec == sorted(spec), predictor
        assert pvp[-1] >= pvp[0], predictor

    # a single counter is competitive with the cheap estimators: at a
    # mid threshold its PVN lands within a factor of the JRS PVN
    jrs_pvn = rows[("jrs", "gshare", None)].pvn
    distance_pvn = rows[("distance", "gshare", 3)].pvn
    assert distance_pvn > 0.5 * jrs_pvn

    # PVN degrades moving to the better predictor, as everywhere else
    for threshold in (2, 4, 6):
        assert (
            rows[("distance", "mcfarling", threshold)].pvn
            < rows[("distance", "gshare", threshold)].pvn
        )

    # the paper closes the table with the SAg pattern row being
    # competitive (sens/spec both solid)
    sag_pattern = rows[("pattern", "sag", None)]
    assert sag_pattern.sens > 0.45
    assert sag_pattern.spec > 0.5
