"""Shared benchmark configuration.

Benchmarks run the experiments at *paper scale* (each workload's full
calibrated iteration count) and write the regenerated tables under
``benchmarks/results/`` so they can be diffed against EXPERIMENTS.md.

The harness memoises traces and measurements process-wide, so running
the whole ``benchmarks/`` directory costs each simulation once.
"""

import pathlib

import pytest

from repro.harness import Scale

#: Paper-scale runs: profile-default iterations, a generous pipeline
#: window, the full eight-benchmark suite.
BENCH_SCALE = Scale(iterations=None, pipeline_instructions=120_000)


@pytest.fixture(scope="session")
def results_dir():
    path = pathlib.Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def save_result(results_dir, experiment_result):
    """Persist one experiment's rendered tables."""
    target = results_dir / f"{experiment_result.experiment_id}.txt"
    target.write_text(experiment_result.to_text() + "\n")
    return target
