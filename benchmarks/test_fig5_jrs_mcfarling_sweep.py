"""Bench fig5: JRS design space on the McFarling predictor."""

from conftest import BENCH_SCALE, save_result

from repro.harness import run_experiment


def test_fig5_jrs_design_space_mcfarling(benchmark, results_dir):
    fig5 = benchmark.pedantic(
        lambda: run_experiment("fig5", BENCH_SCALE), rounds=1, iterations=1
    )
    save_result(results_dir, fig5)
    fig4 = run_experiment("fig4", BENCH_SCALE)  # memoised inputs

    # same monotone trade-off trends as on gshare
    for size, line in fig5.data["lines"].items():
        sens = [point.quadrant.sens for point in line.points]
        assert sens == sorted(sens, reverse=True), size

    # "the trends are similar ... but the overall PVN is lower":
    # the McFarling predictor leaves fewer mispredictions to find
    for threshold in (8, 12, 15):
        gshare_pvn = fig4.data["lines"][4096].point(threshold).quadrant.pvn
        mcfarling_pvn = fig5.data["lines"][4096].point(threshold).quadrant.pvn
        assert mcfarling_pvn < gshare_pvn, threshold
