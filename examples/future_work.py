#!/usr/bin/env python3
"""The paper's §5 future-work designs, implemented and measured.

1. *"an algorithm to 'tune' static confidence estimation to achieve a
   particular goal for PVN or SPEC"* -- `tune_for_spec` / `tune_for_pvn`
   solve the site-selection knapsack exactly.
2. *"a confidence estimator similar to the JRS mechanism designed to
   better exploit the structure of the McFarling two-level branch
   predictor"* -- `CombiningJRSEstimator` keeps one MDC table per
   McFarling component and follows the meta-predictor's choice.

Plus the estimator the JRS design descended from (Jacobsen's
correct/incorrect registers) and §4.1's distance-indexed CIR, included
to check the paper's suspicion that it would underperform.
"""

from repro.confidence import (
    CIREstimator,
    CombiningJRSEstimator,
    DistanceIndexedCIREstimator,
    JRSEstimator,
    profile_site_accuracy,
    tune_for_pvn,
    tune_for_spec,
)
from repro.engine import measure, workload_run
from repro.metrics import average_quadrants
from repro.predictors import GsharePredictor, make_predictor

WORKLOADS = ("compress", "gcc", "go", "xlisp")
ITERATIONS = 250


def tuned_static_demo() -> None:
    print("== tuned static estimation (§5) ==")
    trace = workload_run("gcc", ITERATIONS).trace
    counts = profile_site_accuracy(trace, GsharePredictor())
    print(f"{'goal':18s} {'achieved':>9s} {'sens kept':>10s} {'LC sites':>9s}")
    for target in (0.6, 0.8, 0.95):
        tuned = tune_for_spec(counts, target)
        print(
            f"SPEC >= {target:<9.0%} {tuned.achieved_spec:9.1%}"
            f" {tuned.achieved_sens:10.1%} {len(tuned.low_confidence_sites):9d}"
        )
    for target in (0.3, 0.4):
        tuned = tune_for_pvn(counts, target)
        print(
            f"PVN  >= {target:<9.0%} {tuned.achieved_pvn:9.1%}"
            f" {tuned.achieved_sens:10.1%} {len(tuned.low_confidence_sites):9d}"
        )
    print()


def combining_jrs_demo() -> None:
    print("== McFarling-structure-aware JRS (§5) ==")
    factories = {
        "plain JRS": lambda p: JRSEstimator(threshold=15, enhanced=True),
        "jrs-mcf meta": lambda p: CombiningJRSEstimator(threshold=15),
        "jrs-mcf both": lambda p: CombiningJRSEstimator(
            threshold=15, selection="both"
        ),
        "CIR (8b, 0 wrong)": lambda p: CIREstimator(
            register_bits=8, max_incorrect=0
        ),
        "CIR @ distance": lambda p: DistanceIndexedCIREstimator(),
    }
    quadrants = {name: [] for name in factories}
    for workload in WORKLOADS:
        trace = workload_run(workload, ITERATIONS).trace
        predictor = make_predictor("mcfarling")
        estimators = {name: make(predictor) for name, make in factories.items()}
        result = measure(trace, predictor, estimators)
        for name in factories:
            quadrants[name].append(result.quadrants[name])
    print(f"{'estimator':18s} {'sens':>6s} {'spec':>6s} {'pvp':>7s} {'pvn':>6s}")
    for name, values in quadrants.items():
        quadrant = average_quadrants(values)
        print(
            f"{name:18s} {quadrant.sens:6.1%} {quadrant.spec:6.1%}"
            f" {quadrant.pvp:7.2%} {quadrant.pvn:6.1%}"
        )
    print(
        "\nthe meta-aware JRS lifts SENS and PVN over the gshare-shaped one;"
        "\nthe distance-indexed CIR's SPEC collapse confirms §4.1's suspicion."
    )


if __name__ == "__main__":
    tuned_static_demo()
    combining_jrs_demo()
