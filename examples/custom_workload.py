#!/usr/bin/env python3
"""Bring your own workload: profiles, raw assembly, and trace files.

Three ways to feed the measurement machinery something that is not one
of the built-in SPECint95-like benchmarks:

1. compose a new :class:`WorkloadProfile` from branch-site models;
2. write mini-RISC assembly directly and trace it;
3. convert an external textual branch trace (``<pc> <T|N>`` lines).
"""

import io

from repro.confidence import JRSEstimator
from repro.engine import measure, trace_branches
from repro.isa import assemble
from repro.predictors import GsharePredictor
from repro.workloads import (
    AlternatingSite,
    BiasedSite,
    CorrelatedSite,
    LoopSite,
    WorkloadProfile,
    convert_text_trace,
    generate_program,
)


def from_profile() -> None:
    """1. A custom profile: a hash-table probe loop, say."""
    profile = WorkloadProfile(
        name="hashprobe",
        description="probe loop: hit/miss branch + chain-walk loop",
        sites=(
            BiasedSite(threshold=880, field_shift=14),  # ~86% hit rate
            LoopSite(trip_min=1, trip_max=4),  # chain walk
            BiasedSite(threshold=512, field_shift=18),  # rebalance coin-flip
            CorrelatedSite(threshold=700, field_shift=18),  # related check
            AlternatingSite(),  # ping-pong buffer
        ),
        default_iterations=2000,
    )
    program = generate_program(profile)
    traced = trace_branches(program)
    predictor = GsharePredictor()
    result = measure(
        traced.trace, predictor, {"jrs": JRSEstimator(threshold=15)}
    )
    print(
        f"[profile] {traced.stats.branches:,} branches, accuracy"
        f" {result.accuracy:.1%}, JRS: {result.quadrants['jrs'].summary()}"
    )


def from_assembly() -> None:
    """2. Raw assembly: a little GCD program."""
    program = assemble(
        """
        ; gcd(1071, 462) by repeated subtraction, then repeat with fresh
        ; operands derived from the result to make a longer branch stream
        start:  li r1, 1071
                li r2, 462
                li r5, 200        ; outer repetitions
        outer:  mv r3, r1
                mv r4, r2
        gcd:    beq r3, r4, done
                blt r3, r4, swap
                sub r3, r3, r4
                j gcd
        swap:   sub r4, r4, r3
                j gcd
        done:   add r6, r6, r3
                addi r1, r1, 7    ; perturb operands
                addi r2, r2, 3
                addi r5, r5, -1
                bne r5, r0, outer
                halt
        """,
        name="gcd",
    )
    traced = trace_branches(program)
    predictor = GsharePredictor(table_size=1024)
    result = measure(traced.trace, predictor, {"jrs": JRSEstimator(threshold=15)})
    print(
        f"[assembly] gcd stream: {traced.stats.branches:,} branches,"
        f" accuracy {result.accuracy:.1%}"
    )


def from_text_trace() -> None:
    """3. Converting someone else's trace dump."""
    dump = io.StringIO(
        "# pc outcome\n"
        + "\n".join(
            f"{0x400 + (i % 7)} {'T' if (i * 2654435761) % 97 < 60 else 'N'}"
            for i in range(5000)
        )
    )
    trace = convert_text_trace(dump, name="external")
    predictor = GsharePredictor()
    result = measure(trace, predictor, {"jrs": JRSEstimator(threshold=15)})
    print(
        f"[converted] {len(trace):,} branches from text dump, accuracy"
        f" {result.accuracy:.1%}"
    )


if __name__ == "__main__":
    from_profile()
    from_assembly()
    from_text_trace()
