#!/usr/bin/env python3
"""Eager (dual-path) execution driven by confidence estimates (§2.2).

Forking both paths of a low-confidence branch makes its misprediction
(nearly) free, at the price of splitting fetch bandwidth while two
paths are live.  Whether a given estimator pays for itself is a pure
function of the paper's metrics:

* every covered misprediction (the SPEC side) earns the recovery
  penalty back;
* every false alarm (1 - PVN) pays the fork tax for nothing.

This example prices the same pipeline run's branch stream under
several estimators and boosting levels.
"""

from repro.confidence import (
    BoostedEstimator,
    JRSEstimator,
    MispredictionDistanceEstimator,
    SaturatingCountersEstimator,
)
from repro.engine import workload_program
from repro.pipeline import PipelineSimulator
from repro.predictors import GsharePredictor
from repro.speculation import evaluate_eager_execution


def main() -> None:
    program = workload_program("go")  # the misprediction-rich workload
    predictor = GsharePredictor()
    estimators = {
        "JRS >=15": JRSEstimator(threshold=15, enhanced=True),
        "JRS >=8": JRSEstimator(threshold=8, enhanced=True),
        "satcnt": SaturatingCountersEstimator.for_predictor(predictor),
        "distance >4": MispredictionDistanceEstimator(4),
        "boost2(satcnt)": BoostedEstimator(
            SaturatingCountersEstimator.for_predictor(predictor), k=2
        ),
    }
    simulator = PipelineSimulator(program, predictor, estimators=estimators)
    records = simulator.run(max_instructions=80_000).branch_records
    committed_mispredictions = sum(
        1 for record in records if record.committed and record.mispredicted
    )
    print(
        f"workload go: {committed_mispredictions:,} committed mispredictions"
        f" in {simulator.stats.committed_branches:,} branches\n"
    )
    print(
        f"{'estimator':16s} {'forks':>7s} {'coverage':>9s} {'precision':>10s}"
        f" {'saved':>8s} {'spent':>8s} {'net cycles':>11s}"
    )
    for name in estimators:
        outcome = evaluate_eager_execution(records, name)
        print(
            f"{name:16s} {outcome.forks:7,d} {outcome.coverage:9.1%}"
            f" {outcome.fork_precision:10.1%} {outcome.cycles_saved:8.0f}"
            f" {outcome.cycles_spent:8.0f} {outcome.net_cycles:11.0f}"
        )
    print(
        "\ncoverage is the estimator's SPEC, precision its PVN --"
        " the paper's point that eager execution wants both high."
    )


def dual_path_pipeline() -> None:
    """The real mechanism: a selective dual-path front end."""
    from repro.speculation import compare_eager_execution

    print("\nfull dual-path pipeline (fork on LC, per-path history):")
    print(f"{'estimator':14s} {'speedup':>8s} {'forks':>7s} {'precision':>10s} {'coverage':>9s}")
    program = workload_program("go")
    for name, factory in (
        ("satcnt", lambda p: SaturatingCountersEstimator.for_predictor(p)),
        ("JRS >=15", lambda p: JRSEstimator(threshold=15, enhanced=True)),
        ("always fork", lambda p: JRSEstimator(threshold=16)),
        ("never fork", lambda p: JRSEstimator(threshold=0)),
    ):
        comparison = compare_eager_execution(
            program, GsharePredictor, factory, max_instructions=60_000
        )
        print(
            f"{name:14s} {comparison.speedup:+8.1%} {comparison.forks:7,d}"
            f" {comparison.fork_precision:10.1%} {comparison.coverage:9.1%}"
        )
    print(
        "selectivity earns the cycles: the estimator beats blind forking,"
        "\nand never-fork is the single-path baseline by construction."
    )


if __name__ == "__main__":
    main()
    dual_path_pipeline()
