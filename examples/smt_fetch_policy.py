#!/usr/bin/env python3
"""SMT fetch control with confidence estimation (paper §2, §2.2).

Two threads share one fetch port.  The baseline rotates the port
round-robin; the confidence policy gives the slot to the thread with
the fewest unresolved low-confidence branches in flight -- if a
thread's next instructions sit behind a probably-mispredicted branch,
the slot would likely be wasted on work that never commits.

A deeper branch-resolution window (resolve_stage) gives wrong paths
more time to monopolise the port, so the policy's win grows with it.
"""

from repro.confidence import JRSEstimator
from repro.engine import workload_program
from repro.pipeline import PipelineConfig
from repro.predictors import GsharePredictor
from repro.speculation import compare_policies


def main() -> None:
    programs = [
        workload_program("go", 150),  # branchy, misprediction-heavy
        workload_program("gcc", 150),  # large, moderately predictable
    ]
    print("two-thread SMT, shared 4-wide fetch port, gshare + enhanced JRS\n")
    print(
        f"{'resolve depth':>13s} {'policy':>12s} {'agg IPC':>8s}"
        f" {'wasted fetch':>13s} {'cycles':>9s}"
    )
    for resolve_stage in (3, 8, 12):
        results = compare_policies(
            programs,
            GsharePredictor,
            lambda p: JRSEstimator(threshold=15, enhanced=True),
            config=PipelineConfig(resolve_stage=resolve_stage),
        )
        for policy in ("round_robin", "confidence"):
            result = results[policy]
            print(
                f"{resolve_stage:13d} {policy:>12s} {result.aggregate_ipc:8.3f}"
                f" {result.wasted_fetch_fraction:13.1%} {result.cycles:9,d}"
            )
        speedup = (
            results["confidence"].aggregate_ipc
            / results["round_robin"].aggregate_ipc
            - 1.0
        )
        print(f"{'':13s} confidence-policy speedup: {speedup:+.1%}\n")


if __name__ == "__main__":
    main()
