#!/usr/bin/env python3
"""Quickstart: measure a confidence estimator the way the paper does.

Runs a synthetic 'gcc' workload, predicts its branches with a 4K-entry
gshare, and concurrently assesses every prediction with the paper's
four estimator families.  Prints the 2x2 quadrant table and the four
diagnostic-test metrics (SENS / SPEC / PVP / PVN) for each.
"""

from repro.confidence import (
    JRSEstimator,
    MispredictionDistanceEstimator,
    PatternHistoryEstimator,
    SaturatingCountersEstimator,
    StaticEstimator,
)
from repro.engine import measure, workload_run
from repro.predictors import GsharePredictor


def main() -> None:
    # 1. a workload's committed branch stream (generated, executed and
    #    traced on the package's own mini-RISC machine)
    run = workload_run("gcc", iterations=300)
    trace = run.trace
    print(
        f"workload gcc: {run.stats.instructions:,} instructions, "
        f"{run.stats.branches:,} conditional branches "
        f"({run.stats.branch_fraction:.0%} of the stream)"
    )

    # 2. the underlying branch predictor
    predictor = GsharePredictor(table_size=4096)

    # 3. the estimators under test -- all share one predictor pass, so
    #    each sees the identical prediction stream
    estimators = {
        "JRS (>=15, enhanced)": JRSEstimator(threshold=15, enhanced=True),
        "saturating counters": SaturatingCountersEstimator.for_predictor(predictor),
        "history pattern": PatternHistoryEstimator.for_predictor(predictor),
        "static (>90%)": StaticEstimator.from_profile(trace, GsharePredictor()),
        "distance (>4)": MispredictionDistanceEstimator(4),
    }

    result = measure(trace, predictor, estimators)
    print(f"\ngshare prediction accuracy: {result.accuracy:.2%}\n")
    print(f"{'estimator':24s} {'sens':>6s} {'spec':>6s} {'pvp':>6s} {'pvn':>6s}")
    for name, quadrant in result.quadrants.items():
        print(
            f"{name:24s} {quadrant.sens:6.1%} {quadrant.spec:6.1%} "
            f"{quadrant.pvp:6.1%} {quadrant.pvn:6.1%}"
        )

    # 4. the quadrant table itself, for one estimator
    quadrant = result.quadrants["JRS (>=15, enhanced)"].normalized()
    print("\nJRS quadrant frequencies (paper §2 presentation):")
    print("              correct   incorrect")
    print(f"  high conf   {quadrant.c_hc:7.1%}   {quadrant.i_hc:9.1%}")
    print(f"  low conf    {quadrant.c_lc:7.1%}   {quadrant.i_lc:9.1%}")


if __name__ == "__main__":
    main()
