#!/usr/bin/env python3
"""Explore the JRS design space and the boosting trick (paper §3-§4).

Sweeps the JRS estimator's two knobs (MDC table size, HC threshold) in
a single pass per table size, shows the enhanced-index gain of
Figure 3, compares the one-counter misprediction-distance estimator of
§4.1, and demonstrates §4.2's PVN boosting against its Bernoulli
closed form.
"""

from repro.analysis import (
    average_sweep_lines,
    distance_value_histogram,
    jrs_value_histogram,
    measure_boosting,
)
from repro.confidence import JRSEstimator, boosted_pvn
from repro.engine import workload_run
from repro.predictors import GsharePredictor

WORKLOADS = ("compress", "gcc", "go", "vortex")
ITERATIONS = 250


def sweep(table_size, enhanced=True):
    lines = []
    for name in WORKLOADS:
        trace = workload_run(name, ITERATIONS).trace
        histogram = jrs_value_histogram(
            trace, GsharePredictor(), table_size=table_size, enhanced=enhanced
        )
        lines.append(histogram.sweep(list(range(17)), name))
    return average_sweep_lines(lines, f"{table_size} MDCs")


def main() -> None:
    print("JRS design space (gshare; suite-average over 4 workloads)\n")
    print(f"{'thr':>4s}", end="")
    sizes = (64, 1024, 4096)
    swept = {size: sweep(size) for size in sizes}
    for size in sizes:
        print(f"  pvp@{size:<5d} pvn@{size:<5d}", end="")
    print()
    for threshold in (1, 4, 8, 12, 15):
        print(f"{threshold:4d}", end="")
        for size in sizes:
            quadrant = swept[size].point(threshold).quadrant
            print(f"  {quadrant.pvp:8.1%} {quadrant.pvn:8.1%}", end="")
        print()

    print("\nenhanced vs original MDC index at threshold 15 (Figure 3):")
    for enhanced in (True, False):
        line = sweep(4096, enhanced=enhanced)
        quadrant = line.point(15).quadrant
        label = "enhanced" if enhanced else "original"
        print(
            f"  {label:9s} sens {quadrant.sens:5.1%}  pvp {quadrant.pvp:6.2%}"
            f"  pvn {quadrant.pvn:5.1%}"
        )

    print("\none global counter: the misprediction-distance estimator (§4.1):")
    lines = []
    for name in WORKLOADS:
        trace = workload_run(name, ITERATIONS).trace
        lines.append(
            distance_value_histogram(trace, GsharePredictor()).sweep(
                [2, 4, 6, 8], name
            )
        )
    averaged = average_sweep_lines(lines, "distance")
    for point in averaged.points:
        quadrant = point.quadrant
        print(
            f"  dist > {point.threshold - 1}: sens {quadrant.sens:5.1%}"
            f"  spec {quadrant.spec:5.1%}  pvp {quadrant.pvp:6.2%}"
            f"  pvn {quadrant.pvn:5.1%}"
        )

    print("\nboosting (§4.2): wait for k consecutive LC estimates")
    trace = workload_run("gcc", ITERATIONS).trace
    results = measure_boosting(
        trace, GsharePredictor(), JRSEstimator(threshold=15), ks=[1, 2, 3]
    )
    for result in results:
        print(
            f"  k={result.k}: empirical PVN {result.empirical_pvn:5.1%}"
            f"  vs 1-(1-pvn)^k = {boosted_pvn(result.base_pvn, result.k):5.1%}"
            f"  ({result.events:,} events)"
        )


if __name__ == "__main__":
    main()
