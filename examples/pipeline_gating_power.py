#!/usr/bin/env python3
"""Speculation control for power: pipeline gating (paper §2.2, ref [11]).

Stops fetching whenever more than N unresolved low-confidence branches
are in flight.  Squashed (wrong-path) instructions burn energy without
ever helping performance; a confidence estimator with a good SPEC
catches most of the wrong-path episodes, so gating trades a small
slowdown for a large cut in wasted work.

The sweep below shows the knob: gate threshold 1 is aggressive (big
power win, visible slowdown), threshold 3 is nearly free but saves
little -- the trade-off the companion pipeline-gating paper explores.
"""

from repro.confidence import JRSEstimator, SaturatingCountersEstimator
from repro.engine import workload_program
from repro.predictors import GsharePredictor
from repro.speculation import compare_gating

WORKLOADS = ("gcc", "go", "compress")
BUDGET = 60_000  # committed instructions per run


def main() -> None:
    print("pipeline gating: cut in squashed work vs slowdown")
    print("(gshare predictor, enhanced JRS estimator, threshold >= 15)\n")
    header = f"{'workload':10s} {'gate':>5s} {'baseline waste':>15s} {'work cut':>9s} {'slowdown':>9s} {'gated cycles':>13s}"
    print(header)
    for workload in WORKLOADS:
        program = workload_program(workload)
        for gate_threshold in (1, 2, 3):
            comparison = compare_gating(
                program,
                GsharePredictor,
                lambda p: JRSEstimator(threshold=15, enhanced=True),
                gate_threshold=gate_threshold,
                max_instructions=BUDGET,
            )
            print(
                f"{workload:10s} {'>' + str(gate_threshold):>5s}"
                f" {comparison.baseline_extra_work:15.1%}"
                f" {comparison.extra_work_reduction:9.1%}"
                f" {comparison.slowdown:9.2%}"
                f" {comparison.gated_cycles:13,d}"
            )
        print()

    print("estimator choice matters: gcc, gate > 2, JRS vs saturating counters")
    for label, factory in (
        ("JRS", lambda p: JRSEstimator(threshold=15, enhanced=True)),
        ("satcnt", lambda p: SaturatingCountersEstimator.for_predictor(p)),
    ):
        comparison = compare_gating(
            workload_program("gcc"),
            GsharePredictor,
            factory,
            gate_threshold=2,
            max_instructions=BUDGET,
        )
        print(
            f"  {label:7s} work cut {comparison.extra_work_reduction:6.1%},"
            f" slowdown {comparison.slowdown:6.2%}"
        )


if __name__ == "__main__":
    main()
