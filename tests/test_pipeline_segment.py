"""Segmented pipeline execution: byte-identity, snapshots, resume.

The tentpole's acceptance bar: a pipeline cell run as a chain of
checkpointable segments must be *indistinguishable* -- stats, every
branch-record column, quadrant counts, final machine and predictor
state -- from the same cell run in one piece.  That must hold in the
fast and the slow run loop, for the gating/eager simulator subclasses,
across pickle round trips at every boundary (what a cross-process
resume actually does), and for arbitrary split points (hypothesis).
The chaos leg SIGKILLs a real ``repro run-all`` mid-segment and proves
``--resume`` restarts mid-cell to a byte-identical report.
"""

import os
import pickle
import signal
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import JRSEstimator, SaturatingCountersEstimator
from repro.engine import cache as artifact_cache
from repro.engine import clear_cache, workload_program
from repro.harness import SMOKE, clear_memoised, render_report, run_all
from repro.harness.shard import (
    build_cell_simulator,
    run_segmented,
    segment_count,
    segment_parts,
    segment_targets,
    segmentation_active,
    warm_segment,
)
from repro.isa.machine import _MISSING
from repro.obs.journal import RunJournal, read_journal
from repro.pipeline import (
    SNAPSHOT_SCHEMA,
    PipelineConfig,
    PipelineSimulator,
    SnapshotError,
    capture_snapshot,
    restore_snapshot,
)
from repro.predictors import make_predictor
from repro.speculation.dualpath import EagerPipelineSimulator
from repro.speculation.gating import GatedPipelineSimulator

#: Committed-instruction budget of the identity matrix: long enough
#: that every workload loops, short enough to keep the matrix cheap.
TOTAL = 5_000
ITERATIONS = 40


def build(cls=PipelineSimulator, workload="compress", predictor="gshare",
          fast=True, with_estimators=False, **kwargs):
    """A fresh simulator wired exactly like the harness builds them."""
    program = workload_program(workload, ITERATIONS)
    predictor_obj = make_predictor(predictor)
    estimators = {}
    if with_estimators:
        estimators = {
            "jrs": JRSEstimator(threshold=15, enhanced=True),
            "satcnt": SaturatingCountersEstimator.for_predictor(predictor_obj),
        }
    return cls(
        program,
        predictor_obj,
        config=PipelineConfig(),
        estimators=estimators,
        fast=fast,
        **kwargs,
    )


def digest(simulator, result):
    """Every observable of a finished cell, as one comparable value.

    Covers the full :class:`BranchRecordStore` column set (all 11
    fields), the stats block, both quadrant maps, the architectural
    machine state, and the predictor's internal tables -- anything that
    could diverge if a segment boundary perturbed the simulation.
    """
    records = result.records
    columns = (
        list(records.sequence),
        list(records.pc),
        list(records.predicted_taken),
        list(records.actual_taken),
        list(records.fetch_cycle),
        list(records.resolve_cycle),
        list(records.committed),
        list(records.precise_distance),
        list(records.perceived_distance),
        list(records.wrong_path),
        list(records.assessments),
    )
    machine = simulator.machine
    return (
        columns,
        vars(result.stats).copy(),
        list(machine.regs),
        dict(machine.memory),
        machine.pc,
        machine.halted,
        machine.instructions_retired,
        {n: vars(q).copy() for n, q in result.quadrants_committed.items()},
        {n: vars(q).copy() for n, q in result.quadrants_all.items()},
        pickle.dumps(simulator.predictor),
    )


def run_whole(**build_kwargs):
    simulator = build(**build_kwargs)
    return digest(simulator, simulator.run(max_instructions=TOTAL))


def run_split(stops, roundtrip=False, **build_kwargs):
    """Run the same cell paused at ``stops``, optionally pickling the
    paused simulator at every boundary (the cross-process resume)."""
    simulator = build(**build_kwargs)
    for stop in stops:
        simulator.run(max_instructions=TOTAL, stop_instructions=stop)
        if roundtrip:
            simulator = pickle.loads(pickle.dumps(simulator))
    return digest(simulator, simulator.run(max_instructions=TOTAL))


STOPS = (700, 1400, 2100, 2800, 3500, 4200)


class TestSegmentedIdentity:
    @pytest.mark.parametrize("workload", ["compress", "gcc"])
    @pytest.mark.parametrize("fast", [True, False])
    @pytest.mark.parametrize("with_estimators", [False, True])
    def test_plain_cell_identical(self, workload, fast, with_estimators):
        kwargs = dict(
            workload=workload, fast=fast, with_estimators=with_estimators
        )
        assert run_whole(**kwargs) == run_split(STOPS, **kwargs)

    def test_other_predictors_identical(self):
        for predictor in ("mcfarling", "sag"):
            kwargs = dict(predictor=predictor, with_estimators=True)
            assert run_whole(**kwargs) == run_split(STOPS, **kwargs)

    @pytest.mark.parametrize("fast", [True, False])
    def test_gating_subclass_identical(self, fast):
        kwargs = dict(
            cls=GatedPipelineSimulator,
            fast=fast,
            with_estimators=True,
            gate_on="jrs",
        )
        assert run_whole(**kwargs) == run_split(
            STOPS, roundtrip=True, **kwargs
        )

    @pytest.mark.parametrize("fast", [True, False])
    def test_eager_subclass_identical(self, fast):
        kwargs = dict(
            cls=EagerPipelineSimulator,
            fast=fast,
            with_estimators=True,
            fork_on="jrs",
        )
        assert run_whole(**kwargs) == run_split(
            STOPS, roundtrip=True, **kwargs
        )

    def test_pickle_roundtrip_at_every_boundary(self):
        kwargs = dict(with_estimators=True)
        assert run_whole(**kwargs) == run_split(
            STOPS, roundtrip=True, **kwargs
        )


#: One whole-run reference per hypothesis session, computed lazily so
#: collection stays fast.
_REFERENCE = {}


class TestRandomSplitPoints:
    @settings(max_examples=15, deadline=None)
    @given(
        stops=st.lists(
            st.integers(min_value=1, max_value=TOTAL - 1),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    def test_any_split_schedule_is_identical(self, stops):
        """Segment boundaries are soft: *any* ascending set of split
        points (boundary collisions, off-by-one from a commit-width
        overshoot, a stop in the first cycle) leaves the run
        untouched."""
        if "whole" not in _REFERENCE:
            _REFERENCE["whole"] = run_whole(with_estimators=True)
        assert (
            run_split(sorted(stops), roundtrip=True, with_estimators=True)
            == _REFERENCE["whole"]
        )


class TestSnapshotFormat:
    def _paused(self):
        simulator = build()
        simulator.run(max_instructions=TOTAL, stop_instructions=1500)
        return simulator

    def test_capture_restore_roundtrip(self):
        simulator = self._paused()
        snapshot = capture_snapshot(simulator)
        assert snapshot.schema == SNAPSHOT_SCHEMA
        assert snapshot.committed_instructions == (
            simulator.stats.committed_instructions
        )
        restored = restore_snapshot(snapshot)
        a = simulator.run(max_instructions=TOTAL)
        b = restored.run(max_instructions=TOTAL)
        assert digest(simulator, a) == digest(restored, b)

    def test_capture_does_not_alias_live_state(self):
        """Running the source simulator on must not mutate the frozen
        snapshot: restoring later still resumes from the boundary."""
        simulator = self._paused()
        snapshot = capture_snapshot(simulator)
        committed_at_capture = snapshot.committed_instructions
        simulator.run(max_instructions=TOTAL)
        restored = restore_snapshot(snapshot)
        assert (
            restored.stats.committed_instructions == committed_at_capture
        )

    def test_schema_mismatch_raises(self):
        snapshot = capture_snapshot(self._paused())
        stale = replace(snapshot, schema="pipeline-snapshot/0")
        with pytest.raises(SnapshotError):
            restore_snapshot(stale)

    def test_garbled_payload_raises(self):
        snapshot = capture_snapshot(self._paused())
        garbled = replace(snapshot, payload=b"\x00not a pickle\x00")
        with pytest.raises(SnapshotError):
            restore_snapshot(garbled)

    def test_committed_count_mismatch_raises(self):
        snapshot = capture_snapshot(self._paused())
        lying = replace(
            snapshot,
            committed_instructions=snapshot.committed_instructions + 1,
        )
        with pytest.raises(SnapshotError):
            restore_snapshot(lying)

    def test_missing_sentinel_survives_pickling(self):
        """The machine's undo-log sentinel is compared by identity;
        a pickled snapshot must resolve back to the module singleton."""
        assert pickle.loads(pickle.dumps(_MISSING)) is _MISSING
        assert (
            pickle.loads(pickle.dumps({"entry": (_MISSING, 3)}))["entry"][0]
            is _MISSING
        )


class TestSegmentPlanning:
    def test_targets_split_with_final_remainder(self):
        assert segment_targets(100, 30) == [30, 60, 90, 100]
        assert segment_targets(90, 30) == [30, 60, 90]
        assert segment_targets(100, 100) == [100]
        assert segment_targets(100, 1000) == [100]

    def test_segment_count(self):
        assert segment_count(100, 30) == 3
        assert segment_count(90, 30) == 2
        assert segment_count(100, None) == 0
        assert segment_count(100, 0) == 0
        assert segment_count(100, 100) == 0

    def test_segmentation_active(self):
        assert segmentation_active(100, 30)
        assert not segmentation_active(100, None)
        assert not segmentation_active(100, 0)
        assert not segmentation_active(100, 100)
        assert not segmentation_active(None, 30)

    def test_segment_parts_cover_the_inputs(self):
        parts = segment_parts("compress", "gshare", 40, 5000, False, 1000, 2)
        assert parts["schema"] == SNAPSHOT_SCHEMA
        assert parts["segment"] == 2
        assert parts["segment_instructions"] == 1000
        # a changed workload profile or pipeline config mints new keys
        assert "profile" in parts and "config" in parts


@pytest.fixture()
def isolated_cache(tmp_path):
    previous_root = artifact_cache.get_cache().root
    previous_enabled = artifact_cache.get_cache().enabled
    artifact_cache.configure(root=tmp_path / "cache", enabled=True)
    clear_memoised()
    clear_cache()
    yield artifact_cache.get_cache()
    artifact_cache.configure(root=previous_root, enabled=previous_enabled)
    clear_memoised()
    clear_cache()


def _segment_files(cache):
    return sorted(Path(cache.root).glob("pipeline-segment-*.pkl"))


class TestRunSegmented:
    CELL = ("compress", "gshare", ITERATIONS, TOTAL, False)

    def test_matches_whole_run_and_stores_chain(self, isolated_cache):
        whole = run_segmented(*self.CELL, None)
        simulator = build()
        reference = digest(simulator, simulator.run(max_instructions=TOTAL))
        segmented = run_segmented(*self.CELL, 1000)
        chain = segment_count(TOTAL, 1000)
        assert chain == 4
        assert len(_segment_files(isolated_cache)) == chain
        # results identical across whole, segmented and direct runs
        assert vars(whole.stats) == vars(segmented.stats)
        columns = (
            "sequence", "pc", "predicted_taken", "actual_taken",
            "fetch_cycle", "resolve_cycle", "committed", "precise_distance",
            "perceived_distance", "wrong_path", "assessments",
        )
        segmented_columns = [
            list(getattr(segmented.records, column)) for column in columns
        ]
        for column, whole_values, segmented_values, direct_values in zip(
            columns,
            (list(getattr(whole.records, column)) for column in columns),
            segmented_columns,
            reference[0],
        ):
            assert whole_values == segmented_values == direct_values, column

    def test_partial_chain_resumes_mid_cell(self, isolated_cache):
        """A killed run leaves segments 0..k: the next run restores the
        furthest snapshot and only simulates the remainder."""
        whole = run_segmented(*self.CELL, None)
        warm_segment(*self.CELL, 1000, 1)  # segments 0 and 1 on disk
        assert len(_segment_files(isolated_cache)) == 2
        before = {
            path: path.stat().st_mtime_ns
            for path in _segment_files(isolated_cache)
        }
        resumed = run_segmented(*self.CELL, 1000)
        after = {
            path: path.stat().st_mtime_ns
            for path in _segment_files(isolated_cache)
        }
        # the pre-kill segments were reused, not recomputed
        for path, stamp in before.items():
            assert after[path] == stamp
        assert len(after) == segment_count(TOTAL, 1000)
        assert vars(whole.stats) == vars(resumed.stats)

    def test_corrupt_snapshot_falls_back_one_boundary(self, isolated_cache):
        whole = run_segmented(*self.CELL, None)
        run_segmented(*self.CELL, 1000)
        # garble the furthest snapshot: an unreadable pickle
        files = _segment_files(isolated_cache)
        files[-1].write_bytes(b"\x00garbage\x00")
        clear_memoised()
        again = run_segmented(*self.CELL, 1000)
        assert vars(whole.stats) == vars(again.stats)

    def test_stale_schema_snapshot_falls_back(self, isolated_cache):
        """A snapshot from a different schema version is skipped, not
        trusted: the chain falls back a boundary and self-heals."""
        whole = run_segmented(*self.CELL, None)
        run_segmented(*self.CELL, 1000)
        cache = isolated_cache
        key = cache.key(
            "pipeline-segment", **segment_parts(*self.CELL, 1000, 3)
        )
        hit, snapshot = cache.load(key)
        assert hit
        cache.store(key, replace(snapshot, schema="pipeline-snapshot/0"))
        clear_memoised()
        again = run_segmented(*self.CELL, 1000)
        assert vars(whole.stats) == vars(again.stats)

    def test_warm_segment_reports_progress(self, isolated_cache):
        summary = warm_segment(*self.CELL, 1000, 0)
        assert summary["segment"] == 0
        assert summary["committed_instructions"] >= 1000
        # soft boundary: overshoot is bounded by the commit width
        assert summary["committed_instructions"] < 1000 + (
            PipelineConfig().commit_width
        )
        assert summary["done"] is False

    def test_build_cell_simulator_matches_direct_build(self):
        simulator = build_cell_simulator("compress", "gshare", ITERATIONS, False)
        result = simulator.run(max_instructions=TOTAL)
        assert digest(simulator, result) == run_whole()


class TestBatteryLevelResume:
    """Mid-cell resume through the full ``run_all`` stack: a journal
    that records nothing finished plus a partial segment chain must
    yield a byte-identical report to a clean unsegmented battery."""

    def test_resumed_segmented_battery_matches_whole(
        self, isolated_cache, tmp_path
    ):
        scale = replace(SMOKE, workloads=("compress",))
        segmented = replace(scale, segment_instructions=2000)
        clock = lambda: "(timestamp stripped)"  # noqa: E731

        clean = run_all(scale, only=["tab1"], jobs=1)
        reference = render_report(clean, scale, clock=clock, performance=False)

        # second cache: the "crashed" machine's disk
        artifact_cache.configure(root=tmp_path / "crashed", enabled=True)
        clear_memoised()
        clear_cache()
        journal_path = tmp_path / "killed.jsonl"
        with RunJournal(journal_path) as journal:
            journal.emit(
                "run_started",
                selection=["tab1"],
                jobs=1,
                mode="serial",
                scale={
                    "iterations": segmented.iterations,
                    "pipeline_instructions": segmented.pipeline_instructions,
                    "segment_instructions": segmented.segment_instructions,
                    "workloads": list(segmented.workloads),
                },
            )
        # the kill landed two segments into tab1's pipeline cell
        warm_segment(
            "compress",
            "gshare",
            segmented.iterations,
            segmented.pipeline_instructions,
            False,
            segmented.segment_instructions,
            1,
        )

        resumed = run_all(
            segmented, only=["tab1"], jobs=1, resume=journal_path
        )
        report = render_report(
            resumed, segmented, clock=clock, performance=False
        )
        assert report == reference


CHILD_TEMPLATE = """
import os, signal
from repro.engine import cache as artifact_cache

original_store = artifact_cache.ArtifactCache.store
state = {{"stores": 0}}

def killing_store(self, key, value):
    original_store(self, key, value)
    if key.startswith("pipeline-segment-"):
        state["stores"] += 1
        if state["stores"] == {kill_after}:
            os.kill(os.getpid(), signal.SIGKILL)

artifact_cache.ArtifactCache.store = killing_store
from repro.cli import main
raise SystemExit(main({argv!r}))
"""


class TestSigkillChaosLeg:
    """The chaos acceptance leg: a real ``repro run-all`` process is
    SIGKILLed mid-segment (immediately after its Nth segment snapshot
    lands on disk), then ``--resume`` reuses the chain and the report
    comes out byte-identical to an unkilled run."""

    ARGS = [
        "run-all",
        "--only",
        "tab1",
        "--scale",
        "smoke",
        "--workloads",
        "compress",
        "--segment-instructions",
        "2000",
        "--deterministic",
    ]

    def _run(self, tmp_path, name, argv, kill_after=None, env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env[artifact_cache.DIR_ENV] = str(tmp_path / f"{name}-cache")
        env.pop("REPRO_FAULTS", None)
        if env_extra:
            env.update(env_extra)
        if kill_after is None:
            code = (
                "from repro.cli import main\n"
                f"raise SystemExit(main({argv!r}))\n"
            )
        else:
            code = CHILD_TEMPLATE.format(kill_after=kill_after, argv=argv)
        return subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        report_clean = tmp_path / "clean.txt"
        proc = self._run(
            tmp_path,
            "clean",
            self.ARGS + ["--out", str(report_clean)],
        )
        assert proc.returncode == 0, proc.stderr

        journal = tmp_path / "killed.jsonl"
        report_resumed = tmp_path / "resumed.txt"
        killed = self._run(
            tmp_path,
            "chaos",
            self.ARGS + ["--journal", str(journal), "--out", "unused.txt"],
            kill_after=2,
        )
        assert killed.returncode == -signal.SIGKILL
        chain = sorted(
            (tmp_path / "chaos-cache").glob("pipeline-segment-*.pkl")
        )
        assert len(chain) == 2  # died right after the second snapshot
        events = read_journal(journal)
        assert events[0]["event"] == "run_started"
        assert not [
            e for e in events if e["event"] == "experiment_finished"
        ]

        stamps = {path: path.stat().st_mtime_ns for path in chain}
        resumed = self._run(
            tmp_path,
            "chaos",  # same cache the killed run left behind
            self.ARGS
            + ["--resume", str(journal), "--out", str(report_resumed)],
        )
        assert resumed.returncode == 0, resumed.stderr
        # the killed run's segments were restored, not recomputed
        for path, stamp in stamps.items():
            assert path.stat().st_mtime_ns == stamp
        assert report_resumed.read_bytes() == report_clean.read_bytes()
