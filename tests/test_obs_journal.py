"""Run journal: schema validation, writer guarantees, battery round-trip."""

import io
import json

import pytest

from repro.engine import cache as artifact_cache
from repro.engine import clear_cache
from repro.harness import SMOKE, clear_memoised, run_all
from repro.obs.journal import (
    SCHEMA_VERSION,
    JournalValidationError,
    NullJournal,
    RunJournal,
    read_journal,
    summarize,
    validate_event,
    validate_journal,
    validate_lines,
)


@pytest.fixture()
def isolated_cache(tmp_path):
    previous_root = artifact_cache.get_cache().root
    previous_enabled = artifact_cache.get_cache().enabled
    artifact_cache.configure(root=tmp_path / "cache", enabled=True)
    clear_memoised()
    clear_cache()
    yield artifact_cache.get_cache()
    artifact_cache.configure(root=previous_root, enabled=previous_enabled)
    clear_memoised()
    clear_cache()


def _valid(event="warning", **fields):
    record = {"event": event, "v": SCHEMA_VERSION, "seq": 0, "ts": 1.0}
    if event == "warning":
        record["message"] = "m"
    record.update(fields)
    return record


class TestValidateEvent:
    def test_valid_warning(self):
        assert validate_event(_valid()) == []

    def test_non_object_rejected(self):
        assert validate_event([1, 2]) != []

    def test_unknown_event_rejected(self):
        errors = validate_event(_valid(event="no_such_event", message="m"))
        assert any("unknown event" in error for error in errors)

    def test_missing_required_field(self):
        record = _valid()
        del record["message"]
        errors = validate_event(record)
        assert any("missing required field" in error for error in errors)

    def test_wrong_type_rejected(self):
        errors = validate_event(_valid(message=42))
        assert any("wrong type" in error for error in errors)

    def test_wrong_schema_version_rejected(self):
        errors = validate_event(_valid(v=999))
        assert any("'v' must be" in error for error in errors)

    def test_extra_fields_allowed(self):
        assert validate_event(_valid(context="anything")) == []

    def test_bool_is_not_an_int(self):
        record = {
            "event": "run_started",
            "v": SCHEMA_VERSION,
            "seq": 0,
            "ts": 1.0,
            "selection": [],
            "jobs": True,  # bool must not satisfy the int contract
            "mode": "serial",
            "scale": {},
        }
        errors = validate_event(record)
        assert any("jobs" in error for error in errors)


class TestValidateLines:
    def test_bad_json_reported_with_line_number(self):
        count, errors = validate_lines(["{not json"])
        assert count == 1
        assert errors and errors[0].startswith("line 1:")

    def test_out_of_order_seq_reported(self):
        lines = [
            json.dumps(_valid(seq=0)),
            json.dumps(_valid(seq=5)),
        ]
        __, errors = validate_lines(lines)
        assert any("out of order" in error for error in errors)

    def test_blank_lines_ignored(self):
        count, errors = validate_lines(["", json.dumps(_valid()), "  "])
        assert count == 1 and errors == []


class TestRunJournalWriter:
    def test_emit_stamps_and_counts(self):
        stream = io.StringIO()
        journal = RunJournal(stream)
        journal.emit("warning", message="one")
        journal.emit("warning", message="two")
        assert journal.events_written == 2
        assert journal.event_counts == {"warning": 2}
        count, errors = validate_lines(stream.getvalue().splitlines())
        assert count == 2 and errors == []

    def test_emit_refuses_invalid_event(self):
        journal = RunJournal(io.StringIO())
        with pytest.raises(JournalValidationError):
            journal.emit("warning")  # missing required 'message'
        with pytest.raises(JournalValidationError):
            journal.emit("not_an_event", message="m")

    def test_path_writer_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.emit("warning", message="hello")
        events = read_journal(path)
        assert [event["event"] for event in events] == ["warning"]
        assert events[0]["seq"] == 0

    def test_read_journal_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "warning", "v": 1, "seq": 0, "ts": 1.0}\n')
        with pytest.raises(JournalValidationError):
            read_journal(path)

    def test_null_journal_is_inert(self):
        journal = NullJournal()
        assert journal.emit("anything", whatever=1) == {}
        journal.close()


class TestDurability:
    def test_terminal_events_are_fsynced(self, tmp_path, monkeypatch):
        """run_aborted / run_finished / session_closed lines must reach
        disk before the process can die; routine events only flush."""
        import os as os_mod

        synced = []
        real_fsync = os_mod.fsync
        monkeypatch.setattr(
            "repro.obs.journal.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("warning", message="routine")
        assert synced == []  # non-terminal: flushed, not fsynced
        journal.emit("run_aborted", reason="signal", finished=[])
        assert len(synced) == 1
        journal.emit(
            "session_closed", session="s1", branches=10, windows=1
        )
        assert len(synced) == 2
        journal.emit("run_finished", experiments=[], duration_s=0.1)
        assert len(synced) == 3
        journal.close()

    def test_stringio_journal_swallows_fsync(self):
        journal = RunJournal(io.StringIO())
        journal.emit("run_aborted", reason="signal", finished=[])


class TestServingEvents:
    """The PR 9 event vocabulary: serving and abort events validate."""

    @pytest.mark.parametrize(
        "event,fields",
        [
            ("run_aborted", {"reason": "signal", "finished": ["tab3"]}),
            ("server_started", {"port": 9000, "workers": 2}),
            ("server_stopped", {"sessions": 3, "duration_s": 1.5}),
            (
                "server_worker_restarted",
                {
                    "worker": 0,
                    "reason": "worker process died",
                    "classification": "crash",
                    "restarts": 1,
                },
            ),
            ("server_degraded", {"reason": "restart budget exceeded"}),
            (
                "server_load_report",
                {
                    "clients": 2,
                    "sessions": 4,
                    "failed": 0,
                    "latency_ms": {"p50": 1.0, "p95": 2.0, "p99": 3.0},
                    "sessions_per_second": 1.5,
                },
            ),
            ("session_opened", {"session": "s1", "worker": 0}),
            (
                "session_recovered",
                {"session": "s1", "worker": 0, "replayed": 2},
            ),
            ("session_shed", {"session": "s1", "reason": "slow_client"}),
            (
                "session_closed",
                {"session": "s1", "branches": 4338, "windows": 16},
            ),
        ],
    )
    def test_event_validates(self, event, fields):
        assert validate_event(_valid(event, **fields)) == []

    def test_missing_field_rejected(self):
        record = _valid("session_recovered", session="s1", worker=0)
        assert validate_event(record)  # replayed missing


class TestBatteryRoundTrip:
    """Serial and parallel smoke runs write schema-valid journals with
    the same experiment vocabulary (acceptance criterion)."""

    SELECTION = ["fig1", "tab3"]

    def _run(self, tmp_path, jobs):
        path = tmp_path / f"run-{jobs}.jsonl"
        with RunJournal(path) as journal:
            results = run_all(SMOKE, only=self.SELECTION, jobs=jobs, journal=journal)
        return results, read_journal(path), path

    def test_serial_journal_schema_valid(self, isolated_cache, tmp_path):
        __, events, path = self._run(tmp_path, jobs=1)
        count, errors = validate_journal(path)
        assert errors == []
        names = [event["event"] for event in events]
        assert names[0] == "run_started"
        assert names[-1] == "run_finished"
        assert names.count("experiment_started") == len(self.SELECTION)
        assert names.count("experiment_finished") == len(self.SELECTION)
        assert all(
            event["mode"] == "serial"
            for event in events
            if event["event"].startswith("experiment_")
        )

    def test_parallel_journal_schema_valid(self, isolated_cache, tmp_path):
        results, events, path = self._run(tmp_path, jobs=2)
        __, errors = validate_journal(path)
        assert errors == []
        modes = {
            event["mode"]
            for event in events
            if event["event"] == "experiment_finished"
        }
        assert modes == {"parallel"}
        assert [e for e in events if e["event"] == "run_started"][0]["jobs"] == 2

    def test_journal_branches_match_registry_delta(self, isolated_cache, tmp_path):
        """The metrics_snapshot event and the report's throughput note
        read the same registry, so the simulated-branch totals agree."""
        from repro.obs.registry import REGISTRY

        baseline = REGISTRY.snapshot()
        __, events, __ = self._run(tmp_path, jobs=1)
        delta = REGISTRY.since(baseline)
        snapshot = [e for e in events if e["event"] == "metrics_snapshot"][0]
        assert snapshot["counters"].get("sim.branches", 0.0) == pytest.approx(
            delta.counters.get("sim.branches", 0.0)
        )

    def test_report_mentions_journal(self, isolated_cache, tmp_path):
        from repro.harness import render_report

        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            results = run_all(SMOKE, only=["fig1"], jobs=1, journal=journal)
            report = render_report(results, SMOKE, journal=journal)
        assert "journal:" in report
        assert str(path) in report

    def test_summarize_valid_journal(self, isolated_cache, tmp_path):
        __, __, path = self._run(tmp_path, jobs=1)
        text = summarize(path)
        assert "schema:  valid" in text
        assert "run_started" in text

    def test_summarize_reports_violations(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "mystery"}\n')
        assert "INVALID" in summarize(path)
