"""Tests for the extended two-level predictor family (GAg/gselect/PAs)."""

import pytest

from repro.confidence import PatternHistoryEstimator
from repro.predictors import (
    GAgPredictor,
    GselectPredictor,
    PAsPredictor,
    make_predictor,
)


def teach(predictor, pc, taken, times=1):
    for __ in range(times):
        prediction = predictor.predict(pc)
        predictor.resolve(pc, taken, prediction)
    return prediction


class TestGAg:
    def test_learns_pure_global_pattern(self):
        """A strict global alternation is GAg's home turf."""
        predictor = GAgPredictor(history_bits=6)
        outcome = False
        correct = 0
        total = 0
        for round_number in range(300):
            outcome = not outcome
            prediction = predictor.predict(17)
            predictor.resolve(17, outcome, prediction)
            if round_number > 150:
                total += 1
                correct += prediction.taken == outcome
        assert correct / total > 0.95

    def test_ignores_pc_entirely(self):
        predictor = GAgPredictor(history_bits=6)
        a = predictor.predict(1)
        predictor.resolve(1, a.taken, a)
        b = predictor.predict(999)
        # same history value -> same index regardless of PC
        assert b.index == ((a.snapshot << 1) | int(a.taken)) & predictor.history.mask

    def test_history_repair(self):
        predictor = GAgPredictor(history_bits=6)
        prediction = predictor.predict(1)
        predictor.predict(2)
        actual = not prediction.taken
        predictor.resolve(1, actual, prediction)
        expected = ((prediction.snapshot << 1) | int(actual)) & predictor.history.mask
        assert predictor.history.value == expected

    def test_reset(self):
        predictor = GAgPredictor(history_bits=4)
        teach(predictor, 3, True, times=8)
        predictor.reset()
        assert predictor.history.value == 0


class TestGselect:
    def test_index_concatenates_pc_and_history(self):
        predictor = GselectPredictor(table_size=256, history_bits=4)
        # 8 index bits: 4 history, 4 pc
        prediction = predictor.predict(0b1010)
        assert prediction.index == 0b1010  # empty history

    def test_learns_correlation_and_separates_sites(self):
        predictor = GselectPredictor(table_size=1024, history_bits=4)
        teach(predictor, 5, True, times=8)
        teach(predictor, 6, False, times=8)
        assert predictor.predict(5).taken
        assert not predictor.predict(6).taken

    def test_history_cannot_consume_whole_index(self):
        with pytest.raises(ValueError):
            GselectPredictor(table_size=64, history_bits=6)

    def test_factory(self):
        assert make_predictor("gselect").name == "gselect"


class TestPAs:
    def test_learns_local_pattern(self):
        predictor = PAsPredictor(history_entries=64, history_bits=6, pht_size=256)
        outcome = False
        correct = 0
        total = 0
        for round_number in range(300):
            outcome = not outcome
            prediction = predictor.predict(10)
            predictor.resolve(10, outcome, prediction)
            if round_number > 150:
                total += 1
                correct += prediction.taken == outcome
        assert correct / total > 0.95

    def test_tags_prevent_history_aliasing(self):
        """Unlike SAg, a colliding branch sees an empty history, not the
        other branch's bits."""
        predictor = PAsPredictor(history_entries=4, history_bits=6, pht_size=64)
        teach(predictor, 1, True, times=5)
        # pc 5 collides with pc 1 (4-entry table)
        prediction = predictor.predict(5)
        assert prediction.history == 0

    def test_eviction_reallocates(self):
        predictor = PAsPredictor(history_entries=4, history_bits=6, pht_size=64)
        teach(predictor, 1, True, times=3)
        teach(predictor, 5, False, times=2)  # evicts pc 1
        assert predictor.evictions == 1
        assert predictor._lookup(1) == 0  # pc 1 lost its history
        assert predictor._lookup(5) == 0b00  # two not-taken bits

    def test_pattern_estimator_wires_to_pas(self):
        estimator = PatternHistoryEstimator.for_predictor(PAsPredictor())
        assert estimator.history_bits == 10

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PAsPredictor(history_entries=3)

    def test_reset(self):
        predictor = PAsPredictor(history_entries=8, history_bits=4, pht_size=64)
        teach(predictor, 1, True, times=3)
        predictor.reset()
        assert predictor._lookup(1) == 0
        assert predictor.evictions == 0


class TestSuiteBehaviour:
    def test_gshare_beats_gag_on_workloads(self):
        """PC bits in the index matter: gshare >= GAg on real streams."""
        from repro.engine import measure_accuracy, workload_run
        from repro.predictors import GsharePredictor

        trace = workload_run("gcc", 120).trace
        gshare = measure_accuracy(trace, GsharePredictor()).accuracy
        gag = measure_accuracy(trace, GAgPredictor()).accuracy
        assert gshare > gag

    def test_pas_close_to_sag(self):
        from repro.engine import measure_accuracy, workload_run
        from repro.predictors import SAgPredictor

        trace = workload_run("m88ksim", 120).trace
        sag = measure_accuracy(trace, SAgPredictor()).accuracy
        pas = measure_accuracy(
            trace, PAsPredictor(history_entries=2048, history_bits=13, pht_size=8192)
        ).accuracy
        assert abs(sag - pas) < 0.05
