"""Supervisor tests: failure taxonomy, retries with backoff, timeouts
and pool recycling, checkpoint/resume, and graceful degradation --
driven end-to-end through injected faults (``REPRO_FAULTS``)."""

import os
import pickle
from dataclasses import replace

import pytest
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.engine import cache as artifact_cache
from repro.engine import clear_cache
from repro.faults import FAULTS_ENV, STATE_ENV, InjectedCrash, reset_active_faults
from repro.harness import (
    SMOKE,
    Scale,
    classify_failure,
    clear_memoised,
    load_checkpoint,
    plan_resume,
    render_report,
    run_all,
    spec_fingerprint,
    store_checkpoint,
)
from repro.harness import parallel as parallel_mod
from repro.obs.journal import RunJournal, read_journal
from repro.obs.registry import REGISTRY


@pytest.fixture()
def isolated_cache(tmp_path):
    previous_root = artifact_cache.get_cache().root
    previous_enabled = artifact_cache.get_cache().enabled
    artifact_cache.configure(root=tmp_path / "cache", enabled=True)
    clear_memoised()
    clear_cache()
    yield artifact_cache.get_cache()
    artifact_cache.configure(root=previous_root, enabled=previous_enabled)
    clear_memoised()
    clear_cache()


@pytest.fixture()
def fault_env(tmp_path, monkeypatch):
    """Arm REPRO_FAULTS per test with an isolated occurrence-state dir."""

    def arm(spec):
        monkeypatch.setenv(FAULTS_ENV, spec)
        monkeypatch.setenv(STATE_ENV, str(tmp_path / "fault-state"))
        reset_active_faults()

    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    reset_active_faults()
    yield arm
    reset_active_faults()


class TestFailureTaxonomy:
    @pytest.mark.parametrize(
        ("error", "expected"),
        [
            (FutureTimeoutError(), "timeout"),
            (MemoryError(), "fatal"),
            (KeyboardInterrupt(), "fatal"),
            (SystemExit(1), "fatal"),
            (BrokenExecutor("pool died"), "crash"),
            (InjectedCrash("injected"), "crash"),
            (pickle.UnpicklingError("bad"), "corrupt_artifact"),
            (EOFError(), "corrupt_artifact"),
            (RuntimeError("anything else"), "retryable"),
            (ValueError("still anything else"), "retryable"),
        ],
    )
    def test_classification(self, error, expected):
        assert classify_failure(error) == expected


class TestSupervisorKnobs:
    def test_task_timeout_env(self, monkeypatch):
        monkeypatch.delenv(parallel_mod.TIMEOUT_ENV, raising=False)
        assert parallel_mod.task_timeout_from_env() is None
        monkeypatch.setenv(parallel_mod.TIMEOUT_ENV, "30")
        assert parallel_mod.task_timeout_from_env() == 30.0
        monkeypatch.setenv(parallel_mod.TIMEOUT_ENV, "0")
        assert parallel_mod.task_timeout_from_env() is None  # <=0 disables
        monkeypatch.setenv(parallel_mod.TIMEOUT_ENV, "nope")
        assert parallel_mod.task_timeout_from_env() is None

    def test_retries_and_backoff_env(self, monkeypatch):
        monkeypatch.delenv(parallel_mod.RETRIES_ENV, raising=False)
        monkeypatch.delenv(parallel_mod.BACKOFF_ENV, raising=False)
        assert parallel_mod.retries_from_env() == parallel_mod.DEFAULT_RETRIES
        assert parallel_mod.backoff_from_env() == parallel_mod.DEFAULT_BACKOFF_S
        monkeypatch.setenv(parallel_mod.RETRIES_ENV, "5")
        monkeypatch.setenv(parallel_mod.BACKOFF_ENV, "0.1")
        assert parallel_mod.retries_from_env() == 5
        assert parallel_mod.backoff_from_env() == 0.1


class TestRetries:
    def test_flaky_worker_recovers_in_pool(
        self, isolated_cache, fault_env, tmp_path
    ):
        """A fail-once worker costs one retry, not a serial fallback."""
        fault_env("flaky:experiment=tab3")
        path = tmp_path / "flaky.jsonl"
        with RunJournal(path) as journal:
            results = run_all(
                SMOKE,
                only=["fig1", "tab3"],
                jobs=2,
                journal=journal,
                backoff_s=0.01,
            )
        events = read_journal(path)
        failed = [e for e in events if e["event"] == "experiment_failed"]
        assert [(e["experiment"], e["classification"]) for e in failed] == [
            ("tab3", "crash")
        ]
        retries = [e for e in events if e["event"] == "experiment_retry"]
        assert [(e["experiment"], e["attempt"]) for e in retries] == [("tab3", 2)]
        finished = {
            e["experiment"]: e["mode"]
            for e in events
            if e["event"] == "experiment_finished"
        }
        assert finished == {"fig1": "parallel", "tab3": "parallel"}
        assert list(results) == ["fig1", "tab3"]

    def test_unbounded_crash_exhausts_retries_then_runs_serially(
        self, isolated_cache, fault_env, tmp_path
    ):
        fault_env("crash:experiment=tab3")
        path = tmp_path / "crash.jsonl"
        with RunJournal(path) as journal:
            results = run_all(
                SMOKE,
                only=["fig1", "tab3"],
                jobs=2,
                journal=journal,
                retries=1,
                backoff_s=0.01,
            )
        events = read_journal(path)
        failed = [
            e["attempt"] for e in events if e["event"] == "experiment_failed"
        ]
        assert failed == [1, 2]  # initial attempt + one retry
        serial_starts = [
            e["experiment"]
            for e in events
            if e["event"] == "experiment_started" and e["mode"] == "serial"
        ]
        assert serial_starts == ["tab3"]
        assert list(results) == ["fig1", "tab3"]

    def test_retries_zero_means_one_attempt(
        self, isolated_cache, fault_env, tmp_path
    ):
        fault_env("crash:experiment=tab3")
        path = tmp_path / "noretry.jsonl"
        with RunJournal(path) as journal:
            run_all(
                SMOKE,
                only=["tab3"],
                jobs=2,
                journal=journal,
                retries=0,
                backoff_s=0.01,
            )
        events = read_journal(path)
        assert len([e for e in events if e["event"] == "experiment_failed"]) == 1
        assert not [e for e in events if e["event"] == "experiment_retry"]

    def test_backoff_schedule_is_deterministic_and_exponential(
        self, isolated_cache, fault_env, tmp_path
    ):
        fault_env("crash:experiment=tab3")
        path = tmp_path / "backoff.jsonl"
        with RunJournal(path) as journal:
            run_all(
                SMOKE,
                only=["tab3"],
                jobs=2,
                journal=journal,
                retries=2,
                backoff_s=0.01,
            )
        delays = [
            e["delay_s"]
            for e in read_journal(path)
            if e["event"] == "experiment_retry"
        ]
        assert delays == [0.01, 0.02]


class TestTimeoutAndRecycle:
    def test_hung_worker_times_out_recycles_pool_and_retries(
        self, isolated_cache, fault_env, tmp_path
    ):
        """The expensive one: a worker that sleeps forever costs one
        task timeout, the pool is recycled (hung process killed), and
        the retry completes in a fresh pool."""
        fault_env("hang:experiment=tab3:times=1")
        path = tmp_path / "hang.jsonl"
        with RunJournal(path) as journal:
            results = run_all(
                SMOKE,
                only=["fig1", "tab3"],
                jobs=2,
                journal=journal,
                task_timeout=10,
                backoff_s=0.01,
            )
        events = read_journal(path)
        failed = [e for e in events if e["event"] == "experiment_failed"]
        assert [(e["experiment"], e["classification"]) for e in failed] == [
            ("tab3", "timeout")
        ]
        assert "task timeout" in failed[0]["error"]
        recycles = [e for e in events if e["event"] == "pool_recycled"]
        assert [e["reason"] for e in recycles] == ["hung_worker"]
        finished = {
            e["experiment"]: e["mode"]
            for e in events
            if e["event"] == "experiment_finished"
        }
        assert finished == {"fig1": "parallel", "tab3": "parallel"}
        assert list(results) == ["fig1", "tab3"]


class TestPoolLevelDegradation:
    def test_unbuildable_pool_degrades_to_full_serial_run(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        """Pool construction failing entirely (no forks allowed, broken
        multiprocessing) must not cost any experiment: the whole
        selection runs serially in the parent."""

        class NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", NoPool)
        path = tmp_path / "nopool.jsonl"
        with RunJournal(path) as journal:
            results = run_all(SMOKE, only=["fig1", "tab3"], jobs=2, journal=journal)
        events = read_journal(path)
        warnings = [e for e in events if e["event"] == "warning"]
        assert any(e["context"] == "pool" for e in warnings)
        finished = {
            e["experiment"]: e["mode"]
            for e in events
            if e["event"] == "experiment_finished"
        }
        assert finished == {"fig1": "serial", "tab3": "serial"}
        assert list(results) == ["fig1", "tab3"]
        assert all(r.duration_s is not None for r in results.values())


class TestFaultedEquivalence:
    def test_faulted_parallel_report_matches_clean_serial(
        self, isolated_cache, fault_env, tmp_path
    ):
        """The acceptance bar: crash + corruption faults under jobs=2
        must not change a byte of the report."""
        fault_env("flaky:experiment=tab3,corrupt:artifact=trace:times=1")
        faulted = run_all(
            SMOKE, only=["fig1", "tab3", "fig3"], jobs=2, backoff_s=0.01
        )
        fault_env("")  # disarm
        clear_memoised()
        clean = run_all(SMOKE, only=["fig1", "tab3", "fig3"], jobs=1)
        clock = lambda: "(timestamp stripped)"  # noqa: E731
        assert render_report(
            faulted, SMOKE, clock=clock, performance=False
        ) == render_report(clean, SMOKE, clock=clock, performance=False)


class TestCheckpoints:
    def test_store_then_load_roundtrip(self, isolated_cache):
        results = run_all(SMOKE, only=["fig1"], jobs=1)
        hit, restored = load_checkpoint("fig1", SMOKE)
        assert hit
        assert restored.to_text() == results["fig1"].to_text()

    def test_scale_mismatch_is_a_miss(self, isolated_cache):
        run_all(SMOKE, only=["fig1"], jobs=1)
        other = Scale(
            iterations=(SMOKE.iterations or 0) + 1,
            pipeline_instructions=SMOKE.pipeline_instructions,
            workloads=SMOKE.workloads,
        )
        hit, __ = load_checkpoint("fig1", other)
        assert not hit

    def test_disabled_cache_disables_checkpoints(self, tmp_path):
        previous_root = artifact_cache.get_cache().root
        previous_enabled = artifact_cache.get_cache().enabled
        artifact_cache.configure(root=tmp_path / "off", enabled=False)
        try:
            store_checkpoint("fig1", SMOKE, object())
            hit, __ = load_checkpoint("fig1", SMOKE)
            assert not hit
        finally:
            artifact_cache.configure(root=previous_root, enabled=previous_enabled)

    def test_poisoned_checkpoint_is_rejected(self, isolated_cache):
        cache = isolated_cache
        from repro.harness.checkpoint import checkpoint_key

        cache.store(checkpoint_key(cache, "fig1", SMOKE), {"not": "a result"})
        hit, value = load_checkpoint("fig1", SMOKE)
        assert not hit and value is None


class TestBudgetInvalidation:
    """Satellite regression: the simulation budgets are folded into
    ``spec_fingerprint``, so ``--resume`` after a budget bump (or a
    changed segment size) re-runs instead of silently reusing a
    checkpoint measured under different budgets."""

    def test_fingerprint_tracks_each_budget(self):
        base = spec_fingerprint("fig1", SMOKE)
        assert spec_fingerprint("fig1", replace(SMOKE)) == base  # stable
        assert (
            spec_fingerprint(
                "fig1", replace(SMOKE, iterations=(SMOKE.iterations or 0) + 1)
            )
            != base
        )
        assert (
            spec_fingerprint(
                "fig1",
                replace(
                    SMOKE,
                    pipeline_instructions=SMOKE.pipeline_instructions + 1,
                ),
            )
            != base
        )
        assert (
            spec_fingerprint("fig1", replace(SMOKE, segment_instructions=1000))
            != base
        )

    def test_stale_segment_size_checkpoint_is_a_miss(self, isolated_cache):
        run_all(SMOKE, only=["fig1"], jobs=1)
        hit, __ = load_checkpoint("fig1", SMOKE)
        assert hit
        hit, __ = load_checkpoint(
            "fig1", replace(SMOKE, segment_instructions=1000)
        )
        assert not hit


class TestFaultStateLifecycle:
    """Satellite regression: the supervisor must release the
    occurrence-state ledger it auto-created.  Before the fix the
    exported ``REPRO_FAULTS_STATE`` tempdir (and its claim markers)
    leaked into the next battery in the same process, so a ``times=1``
    fault could fire twice or never."""

    def test_times_one_fault_fires_once_per_battery(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "flaky:experiment=tab3")
        monkeypatch.delenv(STATE_ENV, raising=False)
        reset_active_faults()
        try:
            for battery in range(2):
                clear_memoised()
                path = tmp_path / f"battery{battery}.jsonl"
                with RunJournal(path) as journal:
                    run_all(
                        SMOKE,
                        only=["tab3"],
                        jobs=2,
                        journal=journal,
                        backoff_s=0.01,
                    )
                events = read_journal(path)
                failed = [
                    (e["experiment"], e["classification"])
                    for e in events
                    if e["event"] == "experiment_failed"
                ]
                assert failed == [("tab3", "crash")], (
                    f"battery {battery}: a times=1 fault must fire exactly"
                    f" once per supervised battery, saw {failed}"
                )
                # the ledger the supervisor created is gone again
                assert STATE_ENV not in os.environ
        finally:
            reset_active_faults()

    def test_inherited_state_dir_is_preserved(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        """An externally exported ledger (CI chaos legs share one across
        a kill/resume pair) must survive the battery untouched."""
        state = tmp_path / "shared-ledger"
        monkeypatch.setenv(FAULTS_ENV, "flaky:experiment=tab3")
        monkeypatch.setenv(STATE_ENV, str(state))
        reset_active_faults()
        try:
            run_all(SMOKE, only=["tab3"], jobs=2, backoff_s=0.01)
        finally:
            reset_active_faults()
        assert os.environ.get(STATE_ENV) == str(state)
        assert state.is_dir()
        # the claimed occurrences persist for the next leg of the pair
        assert list(state.glob("spec*.occ*"))


class TestResume:
    SELECTION = ["fig1", "tab3", "fig3"]

    def _first_run(self, tmp_path):
        path = tmp_path / "first.jsonl"
        with RunJournal(path) as journal:
            results = run_all(SMOKE, only=self.SELECTION, jobs=1, journal=journal)
        return path, results

    def test_plan_resume_reads_selection_scale_and_ledger(
        self, isolated_cache, tmp_path
    ):
        path, __ = self._first_run(tmp_path)
        plan = plan_resume(path)
        assert plan.selection == self.SELECTION
        assert plan.scale == SMOKE
        assert plan.finished == self.SELECTION
        assert plan.problems == []

    def test_plan_resume_tolerates_truncated_tail(self, isolated_cache, tmp_path):
        path, __ = self._first_run(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # kill -9 mid-write
        plan = plan_resume(path)
        assert plan.selection == self.SELECTION
        assert len(plan.problems) == 1

    def test_resume_skips_finished_and_matches_original(
        self, isolated_cache, tmp_path
    ):
        path, first = self._first_run(tmp_path)
        clear_memoised()
        resumed_path = tmp_path / "resumed.jsonl"
        with RunJournal(resumed_path) as journal:
            resumed = run_all(
                SMOKE, only=self.SELECTION, jobs=1, journal=journal, resume=path
            )
        events = read_journal(resumed_path)
        skipped = [
            e["experiment"] for e in events if e["event"] == "experiment_skipped"
        ]
        assert skipped == self.SELECTION
        assert all(e["source"] == "checkpoint" for e in events if e["event"] == "experiment_skipped")
        assert not [e for e in events if e["event"] == "experiment_started"]
        resumed_events = [e for e in events if e["event"] == "run_resumed"]
        assert len(resumed_events) == 1
        assert resumed_events[0]["skipped"] == self.SELECTION
        for experiment_id in self.SELECTION:
            assert (
                resumed[experiment_id].to_text()
                == first[experiment_id].to_text()
            )

    def test_resume_runs_only_the_unfinished_remainder(
        self, isolated_cache, tmp_path
    ):
        """Simulate a battery killed after its first experiment: the
        journal records one finish, resume re-runs only the rest."""
        path, __ = self._first_run(tmp_path)
        events = read_journal(path)
        keep = []
        for event, line in zip(events, path.read_text().splitlines()):
            keep.append(line)
            if event["event"] == "experiment_finished":
                break  # the kill lands right after fig1 completes
        path.write_text("\n".join(keep) + "\n")

        clear_memoised()
        resumed_path = tmp_path / "resumed.jsonl"
        with RunJournal(resumed_path) as journal:
            resumed = run_all(
                SMOKE, only=self.SELECTION, jobs=1, journal=journal, resume=path
            )
        events = read_journal(resumed_path)
        skipped = [
            e["experiment"] for e in events if e["event"] == "experiment_skipped"
        ]
        started = [
            e["experiment"] for e in events if e["event"] == "experiment_started"
        ]
        assert skipped == ["fig1"]
        assert started == ["tab3", "fig3"]
        assert list(resumed) == self.SELECTION

    def test_missing_checkpoint_demotes_to_rerun(self, isolated_cache, tmp_path):
        path, first = self._first_run(tmp_path)
        isolated_cache.clear()  # checkpoints gone; journal still says finished
        clear_memoised()
        resumed_path = tmp_path / "resumed.jsonl"
        with RunJournal(resumed_path) as journal:
            resumed = run_all(
                SMOKE, only=self.SELECTION, jobs=1, journal=journal, resume=path
            )
        events = read_journal(resumed_path)
        assert not [e for e in events if e["event"] == "experiment_skipped"]
        started = [
            e["experiment"] for e in events if e["event"] == "experiment_started"
        ]
        assert started == self.SELECTION
        for experiment_id in self.SELECTION:
            assert (
                resumed[experiment_id].to_text()
                == first[experiment_id].to_text()
            )

    def test_resumed_report_notes_restored_experiments(
        self, isolated_cache, tmp_path
    ):
        path, __ = self._first_run(tmp_path)
        before = REGISTRY.snapshot()
        clear_memoised()
        resumed = run_all(SMOKE, only=self.SELECTION, jobs=1, resume=path)
        assert (
            REGISTRY.since(before).counters.get("supervisor.experiments_resumed")
            == len(self.SELECTION)
        )
        report = render_report(resumed, SMOKE)
        assert "restored from checkpoints" in report
