"""Pipeline-vs-trace skew of the misprediction-distance estimator.

The docstring of :class:`repro.confidence.distance.MispredictionDistanceEstimator`
claims two timing behaviours the paper's Figs 8/9 rest on:

* in the **trace engine** resolution follows prediction immediately, so
  the estimator's counter degenerates to the *precise* distance;
* in the **pipeline engine** the counter advances at fetch (wrong-path
  branches included) and resets only when a misprediction *resolves*,
  so it tracks the *perceived* distance -- which is skewed against the
  precise distance by the resolve latency.

Neither claim was asserted anywhere; these tests pin both down.
"""

import pytest

from repro.confidence import MispredictionDistanceEstimator
from repro.engine import measure, workload_program, workload_run
from repro.pipeline import PipelineConfig, PipelineSimulator
from repro.predictors import GsharePredictor

THRESHOLD = 4

#: Deep resolve stage so perceived and precise distance visibly diverge.
SKEW_CONFIG = PipelineConfig(resolve_stage=8)


def _pipeline_records(workload="compress", iterations=40, config=SKEW_CONFIG):
    program = workload_program(workload, iterations)
    simulator = PipelineSimulator(
        program,
        GsharePredictor(),
        config=config,
        estimators={"dist": MispredictionDistanceEstimator(THRESHOLD)},
    )
    return simulator.run(max_instructions=6000).branch_records


class TestTraceEngineIsPrecise:
    """Trace-driven measurement: the counter is the precise distance."""

    def test_flags_match_precise_distance_replay(self):
        trace = workload_run("compress", 40).trace
        flags_seen = []
        measure(
            trace,
            GsharePredictor(),
            {"dist": MispredictionDistanceEstimator(THRESHOLD)},
            observers=[
                lambda pc, predicted, actual, flags: flags_seen.append(
                    flags["dist"]
                )
            ],
        )
        # replay the precise rule: distance counts branches since the
        # last misprediction, reset as soon as the branch resolves
        replay_predictor = GsharePredictor()
        distance = 0
        expected = []
        for pc, taken in trace:
            prediction = replay_predictor.predict(pc)
            expected.append(distance > THRESHOLD)
            distance = 0 if prediction.taken != taken else distance + 1
            replay_predictor.resolve(pc, taken, prediction)
        assert flags_seen == expected


class TestPipelineEngineIsPerceived:
    """Pipeline measurement: the counter is the perceived distance."""

    def test_flags_match_perceived_distance_exactly(self):
        records = _pipeline_records()
        assert records, "pipeline run produced no branch records"
        for record in records:
            assert record.assessments["dist"] == (
                record.perceived_distance > THRESHOLD
            ), (
                f"branch #{record.sequence}: flag"
                f" {record.assessments['dist']} but perceived distance"
                f" {record.perceived_distance}"
            )

    def test_skew_exists_between_perceived_and_precise(self):
        """With a deep resolve stage the two distances must diverge --
        this is the entire Figs 8 vs 6 story."""
        records = _pipeline_records()
        skewed = [
            r for r in records if r.perceived_distance != r.precise_distance
        ]
        assert skewed, "no perceived/precise skew despite resolve latency"

    def test_estimator_disagrees_with_precise_rule_under_skew(self):
        """The observable consequence of the skew: on some branches the
        hardware estimator (perceived) and an oracle using the precise
        distance reach opposite confidence verdicts."""
        records = _pipeline_records()
        disagreements = [
            record
            for record in records
            if record.assessments["dist"]
            != (record.precise_distance > THRESHOLD)
        ]
        assert disagreements, (
            "perceived-distance estimator never disagreed with the"
            " precise-distance oracle"
        )

    def test_shallow_resolve_reduces_skew(self):
        """The skew is caused by resolve latency: resolving earlier
        strictly shrinks the skewed population."""
        deep = _pipeline_records(config=PipelineConfig(resolve_stage=8))
        shallow = _pipeline_records(config=PipelineConfig(resolve_stage=2))

        def skew_fraction(records):
            skewed = sum(
                1 for r in records if r.perceived_distance != r.precise_distance
            )
            return skewed / len(records)

        assert skew_fraction(shallow) < skew_fraction(deep)

    def test_wrong_path_branches_advance_the_counter(self):
        """Fetch-time accounting includes wrong-path branches: the
        perceived distance keeps growing down the wrong path, which a
        precise (commit-time) account would never see."""
        records = _pipeline_records()
        wrong_path = [r for r in records if r.wrong_path]
        assert wrong_path, "expected wrong-path branch records"
        assert any(r.perceived_distance > 0 for r in wrong_path)


class TestThresholdSemantics:
    def test_threshold_boundary_is_strict(self):
        """HC requires distance strictly greater than the threshold."""
        records = _pipeline_records()
        at_threshold = [
            r for r in records if r.perceived_distance == THRESHOLD
        ]
        if not at_threshold:
            pytest.skip("no branch landed exactly on the threshold")
        assert all(not r.assessments["dist"] for r in at_threshold)
