"""Tests for the trace engine: tracer equivalence and measurement."""

import pytest

from repro.engine import (
    measure,
    measure_accuracy,
    trace_branches,
    workload_program,
    workload_run,
)
from repro.confidence import JRSEstimator, SaturatingCountersEstimator
from repro.isa import Machine, assemble
from repro.predictors import GsharePredictor
from repro.workloads import SUITE, generate_program, get_profile


class TestTracerGoldenEquivalence:
    """The fast tracer must match Machine.step exactly."""

    @pytest.mark.parametrize("name", SUITE)
    def test_tracer_matches_machine(self, name):
        program = generate_program(get_profile(name), iterations=5)
        traced = trace_branches(program)
        machine = Machine(program)
        golden = []
        while not machine.halted:
            result = machine.step()
            if result.taken is not None:
                golden.append((result.pc, result.taken))
        assert list(traced.trace) == golden
        assert traced.stats.instructions == machine.instructions_retired
        assert traced.stats.halted

    def test_tracer_final_stats(self, tiny_loop_program):
        traced = trace_branches(tiny_loop_program)
        assert traced.stats.branches == 10
        assert traced.stats.taken_branches == 9
        assert traced.stats.instructions == 32  # 2 + 10*3

    def test_max_branches_cutoff(self, compress_program):
        traced = trace_branches(compress_program, max_branches=50)
        assert len(traced.trace) == 50
        assert not traced.stats.halted

    def test_max_steps_cutoff(self):
        program = assemble("loop: j loop\nhalt")
        traced = trace_branches(program, max_steps=100)
        assert traced.stats.instructions == 100

    def test_fault_propagates(self):
        program = assemble("li r5, 999\njr r5\nhalt")
        from repro.isa import MachineFault

        with pytest.raises(MachineFault):
            trace_branches(program)


class TestMeasure:
    def test_quadrants_account_for_every_branch(self, compress_trace):
        predictor = GsharePredictor()
        estimators = {
            "jrs": JRSEstimator(threshold=15),
            "satcnt": SaturatingCountersEstimator.for_predictor(predictor),
        }
        result = measure(compress_trace, predictor, estimators)
        assert result.branches == len(compress_trace)
        for quadrant in result.quadrants.values():
            assert quadrant.total == len(compress_trace)
            # predictor-level facts are estimator-independent
            assert quadrant.incorrect == result.mispredictions

    def test_accuracy_definition(self, compress_trace):
        result = measure_accuracy(compress_trace, GsharePredictor())
        assert result.accuracy == pytest.approx(
            1 - result.mispredictions / result.branches
        )

    def test_manual_tiny_trace(self):
        """Hand-checked measurement on a two-site trace."""
        trace = [(1, True)] * 30 + [(2, False)] * 30
        predictor = GsharePredictor(table_size=16, history_bits=4)
        result = measure(trace, predictor, {"jrs": JRSEstimator(threshold=15)})
        assert result.branches == 60
        assert 0 < result.mispredictions < 20

    def test_observers_see_every_branch(self, compress_trace):
        seen = []

        def observer(pc, predicted, actual, flags):
            seen.append((pc, flags["jrs"]))

        predictor = GsharePredictor()
        measure(
            compress_trace,
            predictor,
            {"jrs": JRSEstimator(threshold=15)},
            observers=[observer],
        )
        assert len(seen) == len(compress_trace)

    def test_measure_without_estimators(self, compress_trace):
        result = measure(compress_trace, GsharePredictor(), {})
        assert result.quadrants == {}
        assert result.branches == len(compress_trace)


class TestCorpusCache:
    def test_workload_run_is_cached(self):
        first = workload_run("compress", 10)
        second = workload_run("compress", 10)
        assert first is second

    def test_workload_program_is_cached(self):
        assert workload_program("gcc", 5) is workload_program("gcc", 5)

    def test_different_iterations_differ(self):
        assert workload_run("compress", 10) is not workload_run("compress", 11)
