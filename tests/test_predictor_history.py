"""Tests for global and local branch history registers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import GlobalHistory, LocalHistoryTable


class TestGlobalHistory:
    def test_push_shifts_in_lsb(self):
        history = GlobalHistory(4)
        history.push(True)
        history.push(False)
        history.push(True)
        assert history.value == 0b101

    def test_mask_limits_width(self):
        history = GlobalHistory(3)
        for __ in range(10):
            history.push(True)
        assert history.value == 0b111

    def test_set_masks(self):
        history = GlobalHistory(4)
        history.set(0xFF)
        assert history.value == 0xF

    def test_extend_is_pure_push(self):
        history = GlobalHistory(6)
        history.set(0b10101)
        pure = GlobalHistory.extend(history.value, True, history.mask)
        history.push(True)
        assert history.value == pure

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=24), st.lists(st.booleans(), max_size=64))
    def test_value_always_within_mask(self, bits, pushes):
        history = GlobalHistory(bits)
        for taken in pushes:
            history.push(taken)
            assert 0 <= history.value <= history.mask

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), min_size=8, max_size=8))
    def test_history_records_last_n_outcomes(self, pushes):
        history = GlobalHistory(8)
        for taken in pushes:
            history.push(taken)
        expected = 0
        for taken in pushes:
            expected = (expected << 1) | int(taken)
        assert history.value == expected


class TestLocalHistoryTable:
    def test_independent_entries(self):
        table = LocalHistoryTable(entries=4, bits=4)
        table.push(0, True)
        table.push(1, False)
        table.push(0, True)
        assert table.read(0) == 0b11
        assert table.read(1) == 0b0

    def test_aliasing_by_index_mask(self):
        table = LocalHistoryTable(entries=4, bits=4)
        table.push(1, True)
        assert table.read(5) == 1  # 5 & 3 == 1: tagless aliasing

    def test_history_mask(self):
        table = LocalHistoryTable(entries=2, bits=3)
        for __ in range(10):
            table.push(0, True)
        assert table.read(0) == 0b111

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(entries=3, bits=2)
        with pytest.raises(ValueError):
            LocalHistoryTable(entries=4, bits=0)
