"""End-to-end estimator-server tests: healthy streaming with exact
batch equivalence, worker-kill recovery, degradation, protocol error
paths, and the ``server=`` fault sites."""

import asyncio
import io

import pytest

from repro.faults import (
    FAULTS_ENV,
    LEGACY_CRASH_ENV,
    STATE_ENV,
    reset_active_faults,
)
from repro.obs.journal import RunJournal
from repro.serve import EstimatorServer, LoadConfig, ServeConfig, run_load
from repro.serve.load import _batches, batch_reference, results_equal
from repro.serve.protocol import read_message, send_message

ITERATIONS = 60
FAMILIES = ("jrs", "satcnt")
WORKLOAD = "compress"


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    """No ambient fault configuration leaks into (or out of) a test."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    monkeypatch.delenv(LEGACY_CRASH_ENV, raising=False)
    reset_active_faults()
    yield
    reset_active_faults()


def _config(**overrides):
    base = dict(
        workers=2,
        heartbeat_s=0.1,
        heartbeat_timeout_s=30.0,
        restart_backoff_s=0.01,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _journal():
    return RunJournal(io.StringIO())


def _with_server(config, journal, scenario):
    """Run ``scenario(server)`` against a started server, then stop it."""

    async def body():
        server = EstimatorServer(config, journal)
        await server.start()
        try:
            outcome = await scenario(server)
            # let in-flight connection handlers finish their cleanup
            # (session_closed/session_shed events) before the shutdown
            await asyncio.sleep(0.05)
            return outcome
        finally:
            await server.stop()

    return asyncio.run(body())


async def _connect(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def _say_hello(writer, sid, workload=WORKLOAD, estimators=FAMILIES):
    await send_message(
        writer,
        {
            "type": "hello",
            "session": sid,
            "workload": workload,
            "predictor": "gshare",
            "estimators": list(estimators),
            "iterations": ITERATIONS,
        },
    )


async def _stream_lockstep(reader, writer, batches, kill_after=None, on_kill=None):
    """Stream batch-by-batch, awaiting each credit; returns (result,
    recovered-frame count).  ``on_kill`` fires after ``kill_after``
    batches are acknowledged, so the kill lands mid-stream with the
    tail still unsent."""
    recovered = 0
    for seq, (pcs, taken) in enumerate(batches, start=1):
        await send_message(
            writer,
            {"type": "branches", "seq": seq, "pcs": pcs, "taken": taken},
        )
        while True:
            message = await read_message(reader)
            assert message is not None, "connection died mid-stream"
            assert message["type"] != "error", message
            if message["type"] == "recovered":
                recovered += 1
            if message["type"] == "credit" and message["seq"] >= seq:
                break
        if kill_after is not None and seq == kill_after:
            on_kill()
            kill_after = None
    await send_message(writer, {"type": "end"})
    while True:
        message = await read_message(reader)
        assert message is not None, "connection died awaiting result"
        assert message["type"] != "error", message
        if message["type"] == "recovered":
            recovered += 1
        if message["type"] == "result":
            return message, recovered


class TestHealthyServing:
    def test_load_verify_exact_equivalence(self):
        journal = _journal()
        config = _config()

        async def scenario(server):
            load = LoadConfig(
                port=server.port,
                clients=2,
                sessions=3,
                workloads=(WORKLOAD,),
                estimators=FAMILIES,
                iterations=ITERATIONS,
                batch=512,
                verify=True,
            )
            return await run_load(load, journal)

        report = _with_server(config, journal, scenario)
        assert report.completed == 3
        assert report.failed == 0
        assert report.mismatches == 0
        latency = report.latency_percentiles_ms()
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert report.sessions_per_second > 0
        assert "all equal" in report.render()
        assert journal.event_counts["server_started"] == 1
        assert journal.event_counts["session_opened"] == 3
        assert journal.event_counts["session_closed"] == 3
        assert journal.event_counts["server_load_report"] == 1
        assert "session_shed" not in journal.event_counts
        assert "server_worker_restarted" not in journal.event_counts

    def test_stop_emits_server_stopped(self):
        journal = _journal()

        async def scenario(server):
            return server.port

        _with_server(_config(workers=1), journal, scenario)
        assert journal.event_counts["server_stopped"] == 1


class TestWorkerRecovery:
    def test_sigkill_mid_stream_recovers_exactly(self):
        """The headline robustness property: SIGKILL a worker while a
        session streams through it; the session finishes on the
        recycled worker and the final counts are byte-exact."""
        journal = _journal()
        config = _config(workers=2, snapshot_every=2)
        batches = _batches(WORKLOAD, ITERATIONS, 512)
        assert len(batches) > 5

        async def scenario(server):
            reader, writer = await _connect(server)
            await _say_hello(writer, "kill-me")
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"

            def kill():
                server.slots[server.ring.lookup("kill-me")].process.kill()

            result, recovered = await _stream_lockstep(
                reader, writer, batches, kill_after=3, on_kill=kill
            )
            writer.close()
            return result, recovered

        result, recovered = _with_server(config, journal, scenario)
        assert recovered == 1  # the client saw exactly one recovery
        reference = batch_reference(WORKLOAD, "gshare", FAMILIES, ITERATIONS)
        assert results_equal(result, reference)
        assert journal.event_counts["server_worker_restarted"] == 1
        assert journal.event_counts["session_recovered"] == 1
        assert journal.event_counts["session_closed"] == 1
        assert "session_shed" not in journal.event_counts

    def test_restart_budget_exhaustion_degrades_and_completes(self):
        """A slot past its restart budget degrades the server to the
        in-process serial worker -- the stream still finishes with
        exact results."""
        journal = _journal()
        config = _config(workers=1, max_restarts=0)
        batches = _batches(WORKLOAD, ITERATIONS, 512)

        async def scenario(server):
            reader, writer = await _connect(server)
            await _say_hello(writer, "degrade-me")
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"

            def kill():
                server.slots[0].process.kill()

            result, recovered = await _stream_lockstep(
                reader, writer, batches, kill_after=2, on_kill=kill
            )
            writer.close()
            return result, recovered, server.degraded

        result, recovered, degraded = _with_server(config, journal, scenario)
        assert degraded
        assert recovered == 1
        reference = batch_reference(WORKLOAD, "gshare", FAMILIES, ITERATIONS)
        assert results_equal(result, reference)
        assert journal.event_counts["server_degraded"] == 1
        assert journal.event_counts["session_closed"] == 1


class TestProtocolErrors:
    def test_bad_hello_and_out_of_order(self):
        journal = _journal()

        async def scenario(server):
            # unknown workload is refused at open
            reader, writer = await _connect(server)
            await _say_hello(writer, "bad-workload", workload="nope")
            refusal = await read_message(reader)
            writer.close()

            # unknown estimator family is refused at open
            reader, writer = await _connect(server)
            await _say_hello(writer, "bad-family", estimators=("wat",))
            family_refusal = await read_message(reader)
            writer.close()

            # a seq gap mid-stream kills the session with out_of_order
            reader, writer = await _connect(server)
            await _say_hello(writer, "gappy")
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            pcs, taken = _batches(WORKLOAD, ITERATIONS, 64)[0]
            await send_message(
                writer,
                {"type": "branches", "seq": 2, "pcs": pcs, "taken": taken},
            )
            gap_error = await read_message(reader)
            writer.close()
            return refusal, family_refusal, gap_error

        refusal, family_refusal, gap_error = _with_server(
            _config(workers=1), journal, scenario
        )
        assert refusal["type"] == "error"
        assert refusal["code"] == "bad_config"
        assert family_refusal["type"] == "error"
        assert family_refusal["code"] == "bad_config"
        assert gap_error["type"] == "error"
        assert gap_error["code"] == "out_of_order"
        # every registered-then-refused or errored session sheds once
        assert journal.event_counts["session_shed"] == 3
        assert "session_closed" not in journal.event_counts

    def test_duplicate_session_id_refused(self):
        journal = _journal()

        async def scenario(server):
            reader, writer = await _connect(server)
            await _say_hello(writer, "dup")
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            second_reader, second_writer = await _connect(server)
            await _say_hello(second_writer, "dup")
            refusal = await read_message(second_reader)
            second_writer.close()
            writer.close()
            return refusal

        refusal = _with_server(_config(workers=1), journal, scenario)
        assert refusal["type"] == "error"
        assert refusal["code"] == "bad_config"

    def test_credit_violation_on_stalled_worker(self, monkeypatch):
        """With the worker stalled by a hang fault no credits flow, so
        a client pushing past its grant is shed deterministically."""
        monkeypatch.setenv(
            FAULTS_ENV, "hang:server=worker:times=1:after=1:seconds=60"
        )
        reset_active_faults()
        journal = _journal()
        config = _config(workers=1, credits=2, heartbeat_timeout_s=120.0)
        batches = _batches(WORKLOAD, ITERATIONS, 64)

        async def scenario(server):
            reader, writer = await _connect(server)
            await _say_hello(writer, "pushy")  # open: occurrence 0, skipped
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            assert welcome["credits"] == 2
            # batch 1 stalls the worker; 2 is within credit; 3 is not
            for seq in (1, 2, 3):
                pcs, taken = batches[seq - 1]
                await send_message(
                    writer,
                    {"type": "branches", "seq": seq, "pcs": pcs, "taken": taken},
                )
            violation = await read_message(reader)
            writer.close()
            return violation

        violation = _with_server(config, journal, scenario)
        assert violation["type"] == "error"
        assert violation["code"] == "credit_violation"
        assert journal.event_counts["session_shed"] == 1


class TestServerFaultSites:
    def test_frame_corruption_fault_hits_protocol_error_path(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV, "corrupt:server=frame:times=1:after=1"
        )
        reset_active_faults()
        journal = _journal()
        batches = _batches(WORKLOAD, ITERATIONS, 64)

        async def scenario(server):
            reader, writer = await _connect(server)
            await _say_hello(writer, "garbled")  # frame occurrence 0: clean
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            pcs, taken = batches[0]
            # occurrence 1: the payload is corrupted server-side
            await send_message(
                writer,
                {"type": "branches", "seq": 1, "pcs": pcs, "taken": taken},
            )
            error = await read_message(reader)
            writer.close()
            return error

        error = _with_server(_config(workers=1), journal, scenario)
        assert error["type"] == "error"
        assert error["code"] == "bad_frame"
        assert journal.event_counts["session_shed"] == 1

    def test_connection_drop_fault_sheds_the_session(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV, "crash:server=connection:times=1:after=1"
        )
        reset_active_faults()
        journal = _journal()
        batches = _batches(WORKLOAD, ITERATIONS, 64)

        async def scenario(server):
            reader, writer = await _connect(server)
            await _say_hello(writer, "dropped")
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome"
            pcs, taken = batches[0]
            await send_message(
                writer,
                {"type": "branches", "seq": 1, "pcs": pcs, "taken": taken},
            )
            # the link is aborted server-side; any read outcome other
            # than a frame is correct (EOF, reset, or torn frame)
            try:
                message = await asyncio.wait_for(read_message(reader), 10.0)
            except (ConnectionError, OSError, ValueError):
                message = None
            writer.close()
            await asyncio.sleep(0.05)  # let cleanup record the shed
            return message

        message = _with_server(_config(workers=1), journal, scenario)
        assert message is None or message["type"] != "result"
        assert journal.event_counts["session_shed"] == 1
        assert "session_closed" not in journal.event_counts

    def test_injected_worker_crash_recovers_via_shared_ledger(self, monkeypatch):
        """``crash:server=worker:times=1`` kills the worker process once;
        the respawned worker shares the occurrence ledger (exported
        state dir), so the fault does not re-fire and the stream
        completes with exact results."""
        monkeypatch.setenv(
            FAULTS_ENV, "crash:server=worker:times=1:after=4"
        )
        reset_active_faults()
        journal = _journal()
        config = _config(workers=1)

        async def scenario(server):
            load = LoadConfig(
                port=server.port,
                clients=1,
                sessions=1,
                workloads=(WORKLOAD,),
                estimators=FAMILIES,
                iterations=ITERATIONS,
                batch=512,
                verify=True,
            )
            return await run_load(load, journal)

        report = _with_server(config, journal, scenario)
        assert report.completed == 1
        assert report.mismatches == 0
        assert report.outcomes[0].recovered >= 1
        assert journal.event_counts["server_worker_restarted"] >= 1
        assert journal.event_counts["session_recovered"] >= 1
