"""Tests for the McFarling-structure-aware JRS estimator (§5)."""

import pytest

from repro.confidence import CombiningJRSEstimator, JRSEstimator
from repro.predictors.base import Prediction


def mcf_prediction(taken=True, history=0, meta=3):
    """A McFarling-shaped prediction: counters = (gshare, bimodal, meta)."""
    return Prediction(
        taken=taken, index=0, history=history, counters=(3, 3, meta), snapshot=history
    )


def train(estimator, pc, pred, times, correct=True):
    for __ in range(times):
        assessment = estimator.estimate(pc, pred)
        estimator.resolve(
            pc, pred, pred.taken if correct else not pred.taken, assessment
        )


class TestSelectionLogic:
    def test_meta_follows_chosen_component(self):
        estimator = CombiningJRSEstimator(table_size=64, threshold=2)
        pred_global = mcf_prediction(history=0b1010, meta=3)  # meta -> gshare
        # train: correct predictions at a *different* history context so
        # only the PC-indexed (local) table accumulates for this branch
        other_context = mcf_prediction(history=0b0101, meta=3)
        train(estimator, 4, other_context, times=3)
        # local table for pc 4 is hot (3 >= 2); global table for the
        # 0b1010 context is cold
        meta_global = estimator.estimate(4, pred_global)
        assert not meta_global.high_confidence  # meta chose gshare: cold
        pred_local = mcf_prediction(history=0b1010, meta=0)  # meta -> bimodal
        meta_local = estimator.estimate(4, pred_local)
        assert meta_local.high_confidence  # meta chose bimodal: hot

    def test_both_requires_both_tables(self):
        estimator = CombiningJRSEstimator(
            table_size=64, threshold=2, selection="both"
        )
        pred = mcf_prediction(history=0b1010)
        train(estimator, 4, pred, times=3)
        assert estimator.estimate(4, pred).high_confidence
        # a new history context: global cold, local hot -> not both
        fresh = mcf_prediction(history=0b0001)
        assert not estimator.estimate(4, fresh).high_confidence

    def test_either_accepts_one_table(self):
        estimator = CombiningJRSEstimator(
            table_size=64, threshold=2, selection="either"
        )
        pred = mcf_prediction(history=0b1010)
        train(estimator, 4, pred, times=3)
        fresh = mcf_prediction(history=0b0001)
        assert estimator.estimate(4, fresh).high_confidence  # local carries

    def test_misprediction_resets_both_tables(self):
        estimator = CombiningJRSEstimator(
            table_size=64, threshold=1, selection="either"
        )
        pred = mcf_prediction()
        train(estimator, 4, pred, times=3)
        assessment = estimator.estimate(4, pred)
        estimator.resolve(4, pred, not pred.taken, assessment)  # mispredict
        assert not estimator.estimate(4, pred).high_confidence

    def test_single_component_prediction_defaults_to_global(self):
        estimator = CombiningJRSEstimator(table_size=64, threshold=1)
        single = Prediction(True, 0, 0b1010, (3,), 0b1010)
        train(estimator, 4, single, times=2)
        assert estimator.estimate(4, single).high_confidence

    def test_validation(self):
        with pytest.raises(ValueError):
            CombiningJRSEstimator(selection="magic")
        with pytest.raises(ValueError):
            CombiningJRSEstimator(counter_bits=4, threshold=20)

    def test_reset(self):
        estimator = CombiningJRSEstimator(table_size=64, threshold=1)
        pred = mcf_prediction()
        train(estimator, 4, pred, times=2)
        estimator.reset()
        assert not estimator.estimate(4, pred).high_confidence


class TestOnMcFarling:
    def test_meta_variant_beats_plain_jrs_pvn_on_mcfarling(self):
        """The point of the §5 design: matching both index structures
        of the combining predictor recovers SENS and PVN that a purely
        gshare-shaped JRS leaves behind."""
        from repro.engine import measure, workload_run
        from repro.metrics import average_quadrants
        from repro.predictors import make_predictor

        plain_quadrants = []
        combining_quadrants = []
        for name in ("gcc", "go", "xlisp"):
            trace = workload_run(name, 150).trace
            predictor = make_predictor("mcfarling")
            result = measure(
                trace,
                predictor,
                {
                    "plain": JRSEstimator(threshold=15, enhanced=True),
                    "combining": CombiningJRSEstimator(threshold=15),
                },
            )
            plain_quadrants.append(result.quadrants["plain"])
            combining_quadrants.append(result.quadrants["combining"])
        plain = average_quadrants(plain_quadrants)
        combining = average_quadrants(combining_quadrants)
        assert combining.sens > plain.sens
        assert combining.pvn > plain.pvn
        assert combining.pvp > plain.pvp - 0.02
