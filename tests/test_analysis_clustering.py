"""Tests for mis-estimation clustering and boosting measurement."""

import pytest

from repro.analysis import (
    BoostingObserver,
    MisestimationDistanceObserver,
    measure_boosting,
    misestimation_distance,
)
from repro.confidence import (
    BoostingAccumulator,
    JRSEstimator,
    MispredictionDistanceEstimator,
    boosted_pvn,
)
from repro.engine import measure
from repro.predictors import GsharePredictor


class TestMisestimationDistance:
    def test_curve_covers_all_branches(self, compress_trace):
        curve = misestimation_distance(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15)
        )
        assert curve.total_branches == len(compress_trace)

    def test_misestimation_definition(self):
        """On a perfectly predicted trace with an always-LC estimator,
        every branch is mis-estimated (LC but correct)."""
        trace = [(1, True)] * 64
        # JRS threshold 16 is unreachable: always low confidence
        curve = misestimation_distance(
            trace,
            GsharePredictor(table_size=64, history_bits=4),
            JRSEstimator(table_size=64, threshold=16),
        )
        # once the predictor warms up every branch is correct yet LC
        assert curve.buckets[0].misprediction_rate > 0.9


class TestMultiEstimatorObservers:
    """Regression: the observers used to do ``(high,) = flags.values()``
    and raised ValueError the moment ``measure()`` carried zero or
    several estimators (exactly what the gating sweeps do)."""

    def test_two_estimators_at_once(self, compress_trace):
        """Measuring two estimators concurrently must not crash, and the
        named estimator's curve must match a single-estimator run."""
        observer = MisestimationDistanceObserver("jrs")
        measure(
            compress_trace,
            GsharePredictor(),
            {
                "jrs": JRSEstimator(threshold=15),
                "dist": MispredictionDistanceEstimator(4),
            },
            observers=[observer],
        )
        solo = misestimation_distance(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15)
        )
        from repro.analysis.distance import _curve_from_pairs

        paired = _curve_from_pairs(observer.pairs, "mis-estimation", 12)
        assert paired.buckets == solo.buckets

    def test_boosting_observer_with_two_estimators(self, compress_trace):
        accumulator = BoostingAccumulator([1, 2])
        observer = BoostingObserver(accumulator, "jrs")
        measure(
            compress_trace,
            GsharePredictor(),
            {
                "jrs": JRSEstimator(threshold=15),
                "dist": MispredictionDistanceEstimator(4),
            },
            observers=[observer],
        )
        solo = measure_boosting(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15), ks=[1, 2]
        )
        for mine, theirs in zip(accumulator.results(), solo):
            assert mine.events == theirs.events
            assert mine.events_with_misprediction == theirs.events_with_misprediction

    def test_zero_estimators_do_not_crash(self, compress_trace):
        """An estimator-less measurement simply never feeds the observers."""
        distance_observer = MisestimationDistanceObserver("jrs")
        boosting_observer = BoostingObserver(BoostingAccumulator([1]), "jrs")
        measure(
            compress_trace,
            GsharePredictor(),
            {},
            observers=[distance_observer, boosting_observer],
        )
        assert distance_observer.pairs == []
        assert boosting_observer.accumulator.results()[0].events == 0

    def test_absent_name_is_skipped(self, compress_trace):
        """Flags for other estimators are ignored, not misattributed."""
        observer = MisestimationDistanceObserver("missing")
        measure(
            compress_trace,
            GsharePredictor(),
            {"jrs": JRSEstimator(threshold=15)},
            observers=[observer],
        )
        assert observer.pairs == []


class TestMeasureBoosting:
    def test_results_for_each_k(self, compress_trace):
        results = measure_boosting(
            compress_trace,
            GsharePredictor(),
            JRSEstimator(threshold=15),
            ks=[1, 2, 3],
        )
        assert [result.k for result in results] == [1, 2, 3]
        # larger windows mean fewer qualifying events
        assert results[0].events >= results[1].events >= results[2].events

    def test_k1_empirical_equals_base_pvn(self, compress_trace):
        (result,) = measure_boosting(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15), ks=[1]
        )
        assert result.empirical_pvn == pytest.approx(result.base_pvn)
        assert result.analytic_pvn == pytest.approx(result.base_pvn)

    def test_boosting_raises_pvn(self, compress_trace):
        results = measure_boosting(
            compress_trace,
            GsharePredictor(),
            JRSEstimator(threshold=15),
            ks=[1, 2],
        )
        assert results[1].empirical_pvn > results[0].empirical_pvn

    def test_empirical_tracks_bernoulli_model(self, gcc_trace):
        """The paper's §4.2 argument: because mis-estimations are only
        slightly clustered, 1-(1-pvn)^k approximates the measured value."""
        results = measure_boosting(
            gcc_trace, GsharePredictor(), JRSEstimator(threshold=15), ks=[2]
        )
        (result,) = results
        assert result.empirical_pvn == pytest.approx(
            boosted_pvn(result.base_pvn, 2), abs=0.08
        )
