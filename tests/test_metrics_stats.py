"""Tests for the binomial statistics over quadrant metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import QuadrantCounts
from repro.metrics.stats import (
    format_with_interval,
    metric_interval,
    metrics_differ,
    proportions_differ,
    two_proportion_z,
    wilson_interval,
)


class TestWilsonInterval:
    def test_known_value(self):
        # 8/10 at 95%: classic Wilson example, (0.49, 0.94) to 2dp
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.4902, abs=0.002)
        assert high == pytest.approx(0.9433, abs=0.002)

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_extremes_stay_in_unit_interval(self):
        low, high = wilson_interval(10, 10)
        assert 0.0 <= low <= high <= 1.0
        assert high == pytest.approx(1.0, abs=1e-9)

    def test_narrower_with_more_data(self):
        low_small, high_small = wilson_interval(80, 100)
        low_big, high_big = wilson_interval(8000, 10000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_confidence_levels(self):
        low90, high90 = wilson_interval(50, 100, confidence=0.90)
        low99, high99 = wilson_interval(50, 100, confidence=0.99)
        assert (high99 - low99) > (high90 - low90)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=0.8)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=1000),
    )
    def test_contains_point_estimate(self, successes, extra):
        trials = successes + extra
        low, high = wilson_interval(successes, trials)
        assert low <= successes / trials <= high
        assert 0.0 <= low <= high <= 1.0


class TestMetricInterval:
    quadrant = QuadrantCounts(c_hc=610, i_hc=20, c_lc=190, i_lc=180)

    def test_uses_right_population(self):
        low, high = metric_interval(self.quadrant, "pvn")
        assert low <= self.quadrant.pvn <= high
        # PVN population is only 370 branches: wider than accuracy's 1000
        acc_low, acc_high = metric_interval(self.quadrant, "accuracy")
        assert (high - low) > (acc_high - acc_low)

    def test_every_metric_supported(self):
        for metric in ("sens", "spec", "pvp", "pvn", "accuracy"):
            low, high = metric_interval(self.quadrant, metric)
            assert low <= getattr(self.quadrant, metric) <= high

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            metric_interval(self.quadrant, "coverage2")

    def test_format(self):
        text = format_with_interval(self.quadrant, "pvn")
        assert "±" in text and "%" in text


class TestProportionTests:
    def test_clearly_different(self):
        assert proportions_differ(900, 1000, 500, 1000)

    def test_identical_not_different(self):
        assert not proportions_differ(500, 1000, 500, 1000)
        assert two_proportion_z(500, 1000, 500, 1000) == 0.0

    def test_small_samples_not_significant(self):
        # 6/10 vs 4/10 is indistinguishable
        assert not proportions_differ(6, 10, 4, 10)

    def test_same_rates_large_samples(self):
        # the same 1-point gap: noise at n=400, real at n=40000
        assert not proportions_differ(120, 400, 116, 400)
        assert proportions_differ(12000, 40000, 11600, 40000)

    def test_empty_samples(self):
        assert not proportions_differ(0, 0, 5, 10)

    def test_metrics_differ_wiring(self):
        big_a = QuadrantCounts(c_hc=9000, i_hc=1000, c_lc=0, i_lc=0)  # pvp .9
        big_b = QuadrantCounts(c_hc=8000, i_hc=2000, c_lc=0, i_lc=0)  # pvp .8
        assert metrics_differ(big_a, big_b, "pvp")
        small_a = QuadrantCounts(c_hc=9, i_hc=1, c_lc=0, i_lc=0)
        small_b = QuadrantCounts(c_hc=8, i_hc=2, c_lc=0, i_lc=0)
        assert not metrics_differ(small_a, small_b, "pvp")


class TestOnRealMeasurement:
    def test_intervals_cover_rerun_variation(self, compress_trace):
        """Measured PVN on two disjoint halves of a workload: each
        half's interval should (usually) cover the other's estimate."""
        from repro.confidence import JRSEstimator
        from repro.engine import measure
        from repro.predictors import GsharePredictor

        records = list(compress_trace)
        half = len(records) // 2
        quadrants = []
        for part in (records[:half], records[half:]):
            result = measure(
                part, GsharePredictor(), {"jrs": JRSEstimator(threshold=15)}
            )
            quadrants.append(result.quadrants["jrs"])
        low, high = metric_interval(quadrants[0], "pvn", confidence=0.99)
        assert low - 0.05 <= quadrants[1].pvn <= high + 0.05
