"""Tests for the speculation-control applications."""

import pytest

from repro.confidence import JRSEstimator, SaturatingCountersEstimator
from repro.pipeline import PipelineConfig, PipelineSimulator
from repro.predictors import GsharePredictor
from repro.speculation import (
    GatedPipelineSimulator,
    SMTSimulator,
    compare_gating,
    compare_policies,
    count_low_confidence_inflight,
    evaluate_eager_execution,
)
from repro.workloads import generate_program, get_profile


def program(name="compress", iterations=25):
    return generate_program(get_profile(name), iterations=iterations)


def jrs_factory(predictor):
    return JRSEstimator(threshold=15, enhanced=True)


class TestGating:
    def test_gating_reduces_squashed_work(self):
        comparison = compare_gating(
            program(iterations=60),
            GsharePredictor,
            jrs_factory,
            gate_threshold=1,
        )
        assert comparison.gated.stats.squashed_instructions < (
            comparison.baseline.stats.squashed_instructions
        )
        assert comparison.extra_work_reduction > 0.1
        assert comparison.gated_cycles > 0

    def test_gated_run_still_completes_correctly(self):
        prog = program(iterations=15)
        predictor = GsharePredictor()
        simulator = GatedPipelineSimulator(
            prog,
            predictor,
            estimators={"gate": jrs_factory(predictor)},
            gate_on="gate",
            gate_threshold=1,
        )
        result = simulator.run()
        from repro.isa import Machine

        golden = Machine(prog)
        golden.run()
        assert result.stats.committed_instructions == golden.instructions_retired

    def test_slowdown_is_modest(self):
        comparison = compare_gating(
            program(iterations=60),
            GsharePredictor,
            jrs_factory,
            gate_threshold=2,
        )
        assert comparison.slowdown < 0.35

    def test_gate_must_name_an_estimator(self):
        prog = program(iterations=5)
        predictor = GsharePredictor()
        with pytest.raises(ValueError, match=r"\(gate\).*got 'other'"):
            GatedPipelineSimulator(
                prog,
                predictor,
                estimators={"gate": jrs_factory(predictor)},
                gate_on="other",
            )
        with pytest.raises(ValueError, match=r"gate_threshold.*got 0.*'gate'"):
            GatedPipelineSimulator(
                prog,
                predictor,
                estimators={"gate": jrs_factory(predictor)},
                gate_on="gate",
                gate_threshold=0,
            )

    def test_gate_error_lists_available_estimators(self):
        prog = program(iterations=5)
        predictor = GsharePredictor()
        with pytest.raises(ValueError, match=r"\(dist, jrs\)"):
            GatedPipelineSimulator(
                prog,
                predictor,
                estimators={
                    "jrs": jrs_factory(predictor),
                    "dist": jrs_factory(predictor),
                },
                gate_on=None,
            )
        with pytest.raises(ValueError, match=r"<none attached>"):
            GatedPipelineSimulator(prog, predictor, gate_on="gate")

    def test_count_low_confidence_inflight(self):
        prog = program(iterations=10)
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            prog,
            predictor,
            config=PipelineConfig(resolve_stage=25),
            estimators={"jrs": JRSEstimator(threshold=16)},  # always LC
        )
        for __ in range(15):
            simulator.step_cycle()
        inflight_branches = sum(1 for e in simulator._inflight if e.is_branch)
        assert (
            count_low_confidence_inflight(simulator, "jrs") == inflight_branches
        )


class TestSMT:
    def test_both_policies_complete_all_threads(self):
        programs = [program("compress", 10), program("vortex", 10)]
        results = compare_policies(
            programs,
            GsharePredictor,
            lambda predictor: SaturatingCountersEstimator.for_predictor(predictor),
        )
        for result in results.values():
            assert all(
                thread.stats.committed_instructions > 0
                for thread in result.thread_results
            )

    def test_round_robin_rotates_fairly(self):
        programs = [program("vortex", 8), program("vortex", 8)]
        simulator = SMTSimulator(
            programs,
            GsharePredictor,
            lambda predictor: SaturatingCountersEstimator.for_predictor(predictor),
            policy="round_robin",
        )
        result = simulator.run()
        committed = [
            thread.stats.committed_instructions for thread in result.thread_results
        ]
        assert max(committed) - min(committed) < max(committed) * 0.2

    def test_confidence_policy_raises_throughput(self):
        """With a deep enough resolve window, steering fetch away from
        threads sitting behind low-confidence branches lifts aggregate
        IPC (the paper's SMT motivation)."""
        programs = [program("go", 25), program("go", 25)]
        results = compare_policies(
            programs,
            GsharePredictor,
            jrs_factory,
            config=PipelineConfig(resolve_stage=8),
        )
        assert (
            results["confidence"].aggregate_ipc
            > results["round_robin"].aggregate_ipc
        )

    def test_aggregate_statistics(self):
        programs = [program("compress", 8)]
        result = SMTSimulator(
            programs,
            GsharePredictor,
            jrs_factory,
            policy="round_robin",
        ).run()
        assert result.aggregate_ipc > 0
        assert result.committed_instructions > 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SMTSimulator([program()], GsharePredictor, jrs_factory, policy="magic")
        with pytest.raises(ValueError):
            SMTSimulator([], GsharePredictor, jrs_factory)


class TestEagerExecution:
    def _records(self):
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            program(iterations=50),
            predictor,
            estimators={
                "jrs": JRSEstimator(threshold=15),
                "satcnt": SaturatingCountersEstimator.for_predictor(predictor),
            },
        )
        return simulator.run().branch_records

    def test_accounting_identities(self):
        records = self._records()
        outcome = evaluate_eager_execution(records, "jrs")
        committed = [record for record in records if record.committed]
        lc = [record for record in committed if not record.assessments["jrs"]]
        assert outcome.forks == len(lc)
        assert outcome.covered_mispredictions == sum(
            1 for record in lc if record.mispredicted
        )
        assert outcome.fork_precision == pytest.approx(
            sum(1 for r in lc if r.mispredicted) / len(lc)
        )

    def test_coverage_is_spec(self):
        records = self._records()
        outcome = evaluate_eager_execution(records, "jrs")
        committed = [record for record in records if record.committed]
        mispredicted = [record for record in committed if record.mispredicted]
        covered = sum(1 for r in mispredicted if not r.assessments["jrs"])
        assert outcome.coverage == pytest.approx(covered / len(mispredicted))

    def test_net_cycles_prefers_high_pvn_estimators(self):
        records = self._records()
        jrs = evaluate_eager_execution(records, "jrs")
        satcnt = evaluate_eager_execution(records, "satcnt")
        better = max((jrs, satcnt), key=lambda outcome: outcome.fork_precision)
        # the estimator with the higher fork precision (PVN) wastes less
        assert better.net_cycles >= min(jrs.net_cycles, satcnt.net_cycles)

    def test_unknown_estimator_rejected(self):
        records = self._records()
        with pytest.raises(KeyError):
            evaluate_eager_execution(records, "nope")

    def test_dilution_validation(self):
        with pytest.raises(ValueError):
            evaluate_eager_execution([], "jrs", dilution=2.0)


class TestAdaptivePolicy:
    def test_adaptive_policy_runs_and_completes(self):
        programs = [program("compress", 8), program("go", 8)]
        results = compare_policies(
            programs,
            GsharePredictor,
            jrs_factory,
        )
        assert set(results) == {"round_robin", "confidence", "adaptive"}
        for result in results.values():
            assert all(t.stats.committed_instructions > 0 for t in result.thread_results)

    def test_adaptive_at_least_matches_round_robin(self):
        from repro.pipeline import PipelineConfig

        programs = [program("go", 25), program("gcc", 25)]
        results = compare_policies(
            programs,
            GsharePredictor,
            jrs_factory,
            config=PipelineConfig(resolve_stage=8),
        )
        assert (
            results["adaptive"].aggregate_ipc
            >= results["round_robin"].aggregate_ipc - 0.01
        )

    def test_squash_ewma_decays(self):
        simulator = SMTSimulator(
            [program("go", 6)],
            GsharePredictor,
            jrs_factory,
            policy="adaptive",
        )
        simulator._squash_ewma[0] = 100.0
        simulator._last_squashed[0] = simulator.threads[0].stats.squashed_instructions
        simulator._update_squash_ewma()
        assert simulator._squash_ewma[0] < 100.0
