"""Wire-protocol tests: framing, schema validation, EOF handling."""

import asyncio
import json
import struct

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame_payload,
    read_message,
    validate_message,
)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    """A StreamReader pre-loaded with ``data`` then at EOF.

    Must be called from inside a running loop (StreamReader binds the
    current event loop), hence the async helpers below.
    """
    reader = asyncio.StreamReader()
    if data:
        reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read_payload(data: bytes):
    async def scenario():
        return await read_frame_payload(_reader_with(data))

    return asyncio.run(scenario())


def _read_one(data: bytes):
    async def scenario():
        return await read_message(_reader_with(data))

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        message = {"type": "credit", "seq": 3, "grant": 1}
        frame = encode_frame(message)
        (length,) = struct.unpack("!I", frame[:4])
        payload = frame[4:]
        assert len(payload) == length
        assert payload.endswith(b"\n")  # stripped prefixes form JSONL
        decoded = decode_payload(payload)
        assert decoded["type"] == "credit"
        assert decoded["seq"] == 3
        assert decoded["v"] == PROTOCOL_VERSION

    def test_read_message_round_trip(self):
        message = _read_one(encode_frame({"type": "ping"}))
        assert message["type"] == "ping"

    def test_multiple_frames_stream(self):
        data = encode_frame({"type": "ping"}) + encode_frame({"type": "end"})

        async def scenario():
            reader = _reader_with(data)
            first = await read_message(reader)
            second = await read_message(reader)
            third = await read_message(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first["type"] == "ping"
        assert second["type"] == "end"
        assert third is None  # clean EOF at a frame boundary

    def test_clean_eof_returns_none(self):
        assert _read_payload(b"") is None

    def test_eof_mid_prefix_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="mid-prefix"):
            _read_payload(b"\x00\x00")

    def test_eof_mid_frame_is_protocol_error(self):
        frame = encode_frame({"type": "ping"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_payload(frame[:-2])

    def test_zero_length_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="implausible"):
            _read_payload(struct.pack("!I", 0) + b"x")

    def test_oversized_length_prefix_rejected(self):
        """A garbage prefix must not become a giant allocation."""
        prefix = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="implausible"):
            _read_payload(prefix + b"x")

    def test_undecodable_payload_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(b"\x00repro-injected-corruption\x00")
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(b"not json\n")


class TestValidation:
    def _valid(self, kind):
        samples = {
            "hello": {
                "session": "s1",
                "workload": "compress",
                "predictor": "gshare",
                "estimators": [],
            },
            "branches": {"seq": 1, "pcs": [1], "taken": [1]},
            "welcome": {
                "session": "s1",
                "credits": 8,
                "window": 256,
                "families": [],
            },
            "credit": {"seq": 1, "grant": 1},
            "window": {"start": 0, "branches": 256, "metrics": {}, "gate": {}},
            "result": {
                "branches": 1,
                "mispredictions": 0,
                "windows": 0,
                "quadrants": {},
            },
            "recovered": {"replayed": 0},
            "error": {"code": "bad_frame", "error": "x"},
        }
        message = {"type": kind, "v": PROTOCOL_VERSION}
        message.update(samples.get(kind, {}))
        return message

    @pytest.mark.parametrize("kind", sorted(MESSAGE_TYPES))
    def test_every_message_type_validates(self, kind):
        assert validate_message(self._valid(kind))["type"] == kind

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            validate_message([1, 2, 3])

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            validate_message({"type": "nope", "v": PROTOCOL_VERSION})

    def test_missing_version_rejected(self):
        message = self._valid("ping")
        del message["v"]
        with pytest.raises(ProtocolError, match="'v' must be"):
            validate_message(message)

    def test_wrong_version_rejected(self):
        message = self._valid("ping")
        message["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError):
            validate_message(message)

    def test_missing_required_field_rejected(self):
        message = self._valid("branches")
        del message["pcs"]
        with pytest.raises(ProtocolError, match="missing required field"):
            validate_message(message)

    def test_wrong_field_type_rejected(self):
        message = self._valid("credit")
        message["seq"] = "one"
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_message(message)

    def test_bool_is_not_an_int(self):
        """JSON true must not satisfy an int field via bool subclassing."""
        message = self._valid("credit")
        message["seq"] = True
        with pytest.raises(ProtocolError, match="wrong type"):
            validate_message(message)

    def test_extra_fields_are_ignored(self):
        message = self._valid("ping")
        message["future_field"] = {"anything": 1}
        assert validate_message(message)["future_field"] == {"anything": 1}

    def test_encode_frame_validates(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "credit"})  # missing seq/grant

    def test_payload_is_sorted_json(self):
        """Deterministic encoding: same message, same bytes."""
        frame = encode_frame({"type": "credit", "seq": 1, "grant": 1})
        obj = json.loads(frame[4:].decode("utf-8"))
        assert list(obj) == sorted(obj)
