"""Fault-injection layer tests: spec grammar, deterministic occurrence
accounting (in-process and cross-process via marker files), and the two
injection sites."""

import os

import pytest

from repro.faults import (
    CORRUPTION_BYTES,
    FAULTS_ENV,
    LEGACY_CRASH_ENV,
    STATE_ENV,
    FaultRegistry,
    FaultSpecError,
    InjectedCrash,
    active_faults,
    ensure_state_dir,
    faults_configured,
    parse_spec,
    parse_specs,
    reset_active_faults,
    specs_from_env,
)


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    """No ambient fault configuration leaks into (or out of) a test."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    monkeypatch.delenv(LEGACY_CRASH_ENV, raising=False)
    reset_active_faults()
    yield
    reset_active_faults()


class TestSpecGrammar:
    def test_minimal_spec(self):
        spec = parse_spec("crash", index=0)
        assert spec.kind == "crash"
        assert spec.experiment == "*"
        assert spec.times is None  # unbounded
        assert spec.site == "experiment"

    def test_full_spec(self):
        spec = parse_spec(
            "crash:experiment=tab*:times=2:after=1:p=0.5:seed=7", index=3
        )
        assert spec.experiment == "tab*"
        assert spec.times == 2
        assert spec.after == 1
        assert spec.p == 0.5
        assert spec.seed == 7
        assert spec.index == 3

    def test_flaky_defaults_to_once(self):
        assert parse_spec("flaky", index=0).times == 1

    def test_hang_and_slow_default_seconds(self):
        assert parse_spec("hang", index=0).seconds == 3600.0
        assert parse_spec("slow", index=0).seconds == 0.5

    def test_corrupt_targets_cache_site(self):
        spec = parse_spec("corrupt:artifact=trace", index=0)
        assert spec.site == "cache"
        assert spec.artifact == "trace"

    def test_spec_list_with_whitespace_and_empties(self):
        specs = parse_specs(" crash:experiment=tab3 , , flaky ")
        assert [s.kind for s in specs] == ["crash", "flaky"]
        assert [s.index for s in specs] == [0, 1]

    @pytest.mark.parametrize(
        "bad",
        [
            "explode",  # unknown kind
            "crash:times",  # not key=value
            "crash:wat=1",  # unknown parameter
            "crash:times=many",  # not an integer
            "slow:seconds=-1",  # negative
            "crash:p=1.5",  # probability > 1
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad, index=0)

    def test_describe_is_stable(self):
        spec = parse_spec("flaky:experiment=tab3", index=2)
        assert spec.describe() == "flaky[2]:experiment=tab3:times=1"


class TestOccurrenceAccounting:
    def test_local_counting_fires_times_then_stops(self):
        registry = FaultRegistry(parse_specs("flaky:experiment=tab3"))
        with pytest.raises(InjectedCrash):
            registry.on_experiment("tab3")
        # second occurrence: consumed, no longer fires
        registry.on_experiment("tab3")
        registry.on_experiment("tab3")

    def test_after_skips_leading_occurrences(self):
        registry = FaultRegistry(parse_specs("crash:after=2:times=1"))
        registry.on_experiment("fig1")
        registry.on_experiment("fig1")
        with pytest.raises(InjectedCrash):
            registry.on_experiment("fig1")
        registry.on_experiment("fig1")

    def test_glob_selects_experiments(self):
        registry = FaultRegistry(parse_specs("crash:experiment=tab*"))
        registry.on_experiment("fig1")  # no match, never fires
        with pytest.raises(InjectedCrash):
            registry.on_experiment("tab3")

    def test_marker_files_share_occurrences_across_registries(self, tmp_path):
        """Two registries with the same state dir model two worker
        processes: a flaky fault consumed by one is consumed for all."""
        state = str(tmp_path / "state")
        specs = parse_specs("flaky:experiment=tab3")
        first = FaultRegistry(specs, state_dir=state)
        second = FaultRegistry(specs, state_dir=state)
        with pytest.raises(InjectedCrash):
            first.on_experiment("tab3")
        second.on_experiment("tab3")  # occurrence 1: past the budget
        assert sorted(os.listdir(state)) == ["spec0.occ0", "spec0.occ1"]

    def test_seeded_coin_is_deterministic(self):
        def fire_pattern(seed):
            registry = FaultRegistry(
                parse_specs(f"crash:p=0.5:seed={seed}")
            )
            pattern = []
            for _ in range(20):
                try:
                    registry.on_experiment("fig1")
                    pattern.append(False)
                except InjectedCrash:
                    pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)
        assert any(fire_pattern(7))  # p=0.5 over 20 draws: some fire
        assert not all(fire_pattern(7))  # ... and some do not
        assert fire_pattern(7) != fire_pattern(8)

    def test_raised_crash_is_pickle_safe(self):
        """The exception crosses the worker/parent process boundary."""
        import pickle

        registry = FaultRegistry(parse_specs("crash:experiment=tab3"))
        with pytest.raises(InjectedCrash) as exc_info:
            registry.on_experiment("tab3")
        revived = pickle.loads(pickle.dumps(exc_info.value))
        assert isinstance(revived, InjectedCrash)
        assert "tab3" in str(revived)


class TestSleepingFaults:
    def test_hang_and_slow_sleep_their_seconds(self):
        naps = []
        registry = FaultRegistry(
            parse_specs("hang:experiment=tab3:seconds=9:times=1,slow:seconds=0.1"),
            sleep=naps.append,
        )
        registry.on_experiment("tab3")
        assert naps == [9.0, 0.1]
        registry.on_experiment("fig1")  # hang consumed; slow still fires
        assert naps == [9.0, 0.1, 0.1]


class TestCacheSite:
    def test_corrupt_fault_garbles_stored_entry(self, tmp_path):
        registry = FaultRegistry(parse_specs("corrupt:artifact=trace:times=1"))
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"valid pickle bytes, allegedly")
        assert registry.on_cache_store("trace", path)
        assert path.read_bytes() == CORRUPTION_BYTES
        # budget exhausted: the next store survives
        path.write_bytes(b"fresh")
        assert not registry.on_cache_store("trace", path)
        assert path.read_bytes() == b"fresh"

    def test_corrupt_fault_respects_artifact_glob(self, tmp_path):
        registry = FaultRegistry(parse_specs("corrupt:artifact=trace"))
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"pipeline bytes")
        assert not registry.on_cache_store("pipeline", path)
        assert path.read_bytes() == b"pipeline bytes"

    def test_experiment_faults_ignore_cache_site_and_vice_versa(self, tmp_path):
        registry = FaultRegistry(
            parse_specs("crash:experiment=tab3,corrupt:artifact=trace")
        )
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"x")
        assert registry.on_cache_store("trace", path)  # corrupt fires
        registry.on_experiment("fig1")  # crash does not match fig1


class TestGrammarEdgeCases:
    def test_overlapping_experiment_globs_count_independently(self):
        """Two specs matching the same experiment keep separate
        occurrence ledgers: each consumes its own budget."""
        registry = FaultRegistry(
            parse_specs("flaky:experiment=tab*,flaky:experiment=*3")
        )
        with pytest.raises(InjectedCrash):  # first spec fires
            registry.on_experiment("tab3")
        with pytest.raises(InjectedCrash):  # second spec still armed
            registry.on_experiment("tab3")
        registry.on_experiment("tab3")  # both budgets consumed

    def test_overlapping_artifact_globs_share_one_store(self, tmp_path):
        """Two corrupt specs matching the same artifact both spend
        their budget on the same store; the next store survives."""
        registry = FaultRegistry(
            parse_specs(
                "corrupt:artifact=tr*:times=1,corrupt:artifact=*ace:times=1"
            )
        )
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"first")
        assert registry.on_cache_store("trace", path)
        assert path.read_bytes() == CORRUPTION_BYTES
        path.write_bytes(b"second")
        assert not registry.on_cache_store("trace", path)
        assert path.read_bytes() == b"second"

    def test_p_zero_never_fires(self):
        registry = FaultRegistry(parse_specs("crash:p=0"))
        for _ in range(50):
            registry.on_experiment("tab3")

    def test_p_one_always_fires_within_budget(self):
        registry = FaultRegistry(parse_specs("crash:p=1:times=2"))
        for _ in range(2):
            with pytest.raises(InjectedCrash):
                registry.on_experiment("tab3")
        registry.on_experiment("tab3")  # times=2 exhausted

    def test_after_window_interacts_with_times(self):
        """``after=2:times=2`` fires exactly on occurrences 2 and 3."""
        registry = FaultRegistry(parse_specs("crash:after=2:times=2"))
        pattern = []
        for _ in range(6):
            try:
                registry.on_experiment("fig1")
                pattern.append(False)
            except InjectedCrash:
                pattern.append(True)
        assert pattern == [False, False, True, True, False, False]

    def test_after_equal_to_skipped_budget_with_p(self):
        """``after`` skips occurrences before the coin is even tossed:
        a p=0 spec with after still claims occurrence numbers."""
        registry = FaultRegistry(parse_specs("crash:after=1:p=0"))
        for _ in range(10):
            registry.on_experiment("tab3")

    def test_times_zero_never_fires(self):
        registry = FaultRegistry(parse_specs("crash:times=0"))
        for _ in range(5):
            registry.on_experiment("tab3")

    def test_shared_exported_ledger_survives_registry_reset(
        self, monkeypatch, tmp_path
    ):
        """A kill/resume pair sharing REPRO_FAULTS_STATE: the second
        process (modelled by reset + re-read of the environment) sees
        the first one's claims, so ``times=1`` stays once-per-ledger."""
        state = tmp_path / "ledger"
        monkeypatch.setenv(FAULTS_ENV, "flaky:experiment=tab3")
        monkeypatch.setenv(STATE_ENV, str(state))
        reset_active_faults()
        with pytest.raises(InjectedCrash):
            active_faults().on_experiment("tab3")
        reset_active_faults()  # "new process": same env, fresh registry
        active_faults().on_experiment("tab3")  # already consumed
        assert sorted(os.listdir(state)) == ["spec0.occ0", "spec0.occ1"]


class TestServerSite:
    def test_server_selector_parses_and_routes_site(self):
        spec = parse_spec("crash:server=worker:times=2", index=0)
        assert spec.site == "server"
        assert spec.server == "worker"
        assert spec.describe() == "crash[0]:server=worker:times=2"

    def test_corrupt_with_server_selector_is_server_site(self):
        assert parse_spec("corrupt:server=frame", index=0).site == "server"

    def test_on_server_fires_matching_site_only(self):
        registry = FaultRegistry(parse_specs("crash:server=worker"))
        registry.on_server("connection")  # no match, never fires
        with pytest.raises(InjectedCrash):
            registry.on_server("worker")

    def test_server_specs_never_fire_at_other_sites(self, tmp_path):
        registry = FaultRegistry(
            parse_specs("crash:server=worker,corrupt:server=frame")
        )
        registry.on_experiment("tab3")  # server spec: experiment site inert
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"fresh")
        assert not registry.on_cache_store("trace", path)
        assert path.read_bytes() == b"fresh"

    def test_experiment_specs_never_fire_at_server_sites(self):
        registry = FaultRegistry(parse_specs("crash:experiment=*"))
        registry.on_server("worker")
        registry.on_server("connection")

    def test_corrupt_server_frame_garbles_payload_within_budget(self):
        registry = FaultRegistry(parse_specs("corrupt:server=frame:times=1"))
        assert (
            registry.corrupt_server_frame("frame", b"payload")
            == CORRUPTION_BYTES
        )
        # budget exhausted: the next frame passes through untouched
        assert registry.corrupt_server_frame("frame", b"payload") == b"payload"

    def test_corrupt_server_spec_ignores_on_server(self):
        """corrupt routes through the frame hook, never the raise/sleep
        hook -- and crash never garbles frames."""
        registry = FaultRegistry(
            parse_specs("corrupt:server=frame,crash:server=worker")
        )
        registry.on_server("frame")  # corrupt spec: inert here
        assert registry.corrupt_server_frame("worker", b"x") == b"x"

    def test_server_hang_sleeps_its_seconds(self):
        naps = []
        registry = FaultRegistry(
            parse_specs("hang:server=worker:seconds=7:times=1"),
            sleep=naps.append,
        )
        registry.on_server("worker")
        assert naps == [7.0]
        registry.on_server("worker")  # consumed
        assert naps == [7.0]


class TestEnvironmentWiring:
    def test_specs_from_env_parses_faults(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "flaky:experiment=tab3,slow:seconds=0.1")
        specs = specs_from_env()
        assert [s.kind for s in specs] == ["flaky", "slow"]

    def test_legacy_crash_env_maps_to_crash_specs(self, monkeypatch):
        monkeypatch.setenv(LEGACY_CRASH_ENV, "tab3, fig6")
        specs = specs_from_env()
        assert [(s.kind, s.experiment) for s in specs] == [
            ("crash", "tab3"),
            ("crash", "fig6"),
        ]
        assert faults_configured()

    def test_active_registry_caches_until_reset(self, monkeypatch):
        assert not active_faults()
        monkeypatch.setenv(FAULTS_ENV, "crash")
        assert not active_faults()  # stale: env read once
        reset_active_faults()
        assert active_faults()

    def test_ensure_state_dir_only_when_configured(self, monkeypatch):
        assert ensure_state_dir() is None
        monkeypatch.setenv(FAULTS_ENV, "crash:experiment=tab3")
        state = ensure_state_dir()
        try:
            assert state is not None and os.path.isdir(state)
            assert os.environ[STATE_ENV] == state
            # idempotent: a second call reuses the exported directory
            assert ensure_state_dir() == state
        finally:
            monkeypatch.delenv(STATE_ENV, raising=False)
            import shutil

            shutil.rmtree(state, ignore_errors=True)

    def test_ensure_state_dir_honours_existing_env(self, monkeypatch, tmp_path):
        wanted = tmp_path / "chaos-state"
        monkeypatch.setenv(FAULTS_ENV, "crash")
        monkeypatch.setenv(STATE_ENV, str(wanted))
        assert ensure_state_dir() == str(wanted)
        assert wanted.is_dir()
