"""The pre-decoded pipeline fast path and its accounting contracts.

Three groups of guarantees:

* **byte identity** -- the fast engine (pre-decoded programs, fused
  cycle loop, compact predictor protocol, columnar records) must leave
  *exactly* the state the reference per-instruction engine leaves:
  stats, every branch-record field, architectural machine state, cache
  hit/miss counters, estimator quadrants -- for the base simulator and
  for the gating/eager subclasses (which ride the per-cycle fast fetch
  stage);
* **accounting fixes** -- ``max_instructions`` commits exactly N, and a
  congestion window delays exactly one branch (no double charge across
  a fetch group);
* **supporting structures** -- the columnar
  :class:`~repro.pipeline.records.BranchRecordStore`, the
  ``*_or_none`` stats accessors, the compact predictor protocol and the
  pre-decoded program artifact.
"""

import dataclasses
import pickle

import pytest

from repro.confidence import JRSEstimator
from repro.pipeline import (
    PIPELINE_FAST_ENV,
    BranchRecordStore,
    DecodedProgram,
    PipelineConfig,
    PipelineSimulator,
    PipelineStats,
    decode_program,
    pipeline_fast_enabled,
)
from repro.isa import assemble
from repro.predictors import GsharePredictor, McFarlingPredictor, make_predictor
from repro.speculation import EagerPipelineSimulator, GatedPipelineSimulator
from repro.workloads import generate_program, get_profile

RECORD_FIELDS = (
    "sequence",
    "pc",
    "predicted_taken",
    "actual_taken",
    "fetch_cycle",
    "resolve_cycle",
    "committed",
    "precise_distance",
    "perceived_distance",
    "wrong_path",
    "assessments",
)


def small_program(name="compress", iterations=40):
    return generate_program(get_profile(name), iterations=iterations)


def assert_equivalent(slow_sim, slow_result, fast_sim, fast_result):
    assert dataclasses.asdict(slow_result.stats) == dataclasses.asdict(
        fast_result.stats
    )
    slow_records = slow_result.branch_records
    fast_records = fast_result.branch_records
    assert len(slow_records) == len(fast_records)
    for left, right in zip(slow_records, fast_records):
        for name in RECORD_FIELDS:
            assert getattr(left, name) == getattr(right, name), name
    assert slow_sim.machine.regs == fast_sim.machine.regs
    assert slow_sim.machine.memory == fast_sim.machine.memory
    assert slow_sim.machine.pc == fast_sim.machine.pc
    for side in ("icache", "dcache"):
        slow_cache = getattr(slow_sim, side)
        fast_cache = getattr(fast_sim, side)
        assert (slow_cache.hits, slow_cache.misses) == (
            fast_cache.hits,
            fast_cache.misses,
        ), side
    for table in ("quadrants_committed", "quadrants_all"):
        slow_quadrants = getattr(slow_result, table)
        fast_quadrants = getattr(fast_result, table)
        assert slow_quadrants.keys() == fast_quadrants.keys()
        for name in slow_quadrants:
            assert vars(slow_quadrants[name]) == vars(fast_quadrants[name])


class TestFastSlowIdentity:
    @pytest.mark.parametrize("predictor_name", ("gshare", "mcfarling", "sag"))
    def test_base_simulator_identical(self, predictor_name):
        program = small_program()
        runs = []
        for fast in (False, True):
            simulator = PipelineSimulator(
                program, make_predictor(predictor_name), fast=fast
            )
            runs.append((simulator, simulator.run()))
        assert_equivalent(*runs[0], *runs[1])

    @pytest.mark.parametrize("predictor_name", ("gshare", "mcfarling"))
    def test_with_estimators_identical(self, predictor_name):
        program = small_program()
        runs = []
        for fast in (False, True):
            simulator = PipelineSimulator(
                program,
                make_predictor(predictor_name),
                estimators={"jrs": JRSEstimator(threshold=15, enhanced=True)},
                fast=fast,
            )
            runs.append((simulator, simulator.run(max_instructions=6_000)))
        assert_equivalent(*runs[0], *runs[1])

    def test_gated_simulator_identical(self):
        program = small_program()
        runs = []
        for fast in (False, True):
            predictor = GsharePredictor()
            simulator = GatedPipelineSimulator(
                program,
                predictor,
                estimators={"gate": JRSEstimator(threshold=15)},
                gate_on="gate",
                gate_threshold=1,
                fast=fast,
            )
            runs.append((simulator, simulator.run(max_instructions=6_000)))
        assert_equivalent(*runs[0], *runs[1])

    def test_eager_simulator_identical(self):
        program = small_program()
        runs = []
        for fast in (False, True):
            predictor = GsharePredictor()
            simulator = EagerPipelineSimulator(
                program,
                predictor,
                estimators={"fork": JRSEstimator(threshold=15)},
                fork_on="fork",
                fast=fast,
            )
            runs.append((simulator, simulator.run(max_instructions=6_000)))
        assert_equivalent(*runs[0], *runs[1])
        # the fork counters live on the simulator, not the result; the
        # wasted-slot count in particular depends on _fetch_width()
        # being consulted on exactly the same cycles in both engines
        slow_sim, fast_sim = runs[0][0], runs[1][0]
        assert slow_sim.eager_forks == fast_sim.eager_forks
        assert slow_sim.eager_covered == fast_sim.eager_covered
        assert slow_sim.eager_wasted_slots == fast_sim.eager_wasted_slots

    def test_shared_decoded_instance_identical(self):
        program = small_program()
        decoded = decode_program(program)
        reference = PipelineSimulator(program, GsharePredictor(), fast=False)
        shared = PipelineSimulator(
            program, GsharePredictor(), decoded=decoded, fast=True
        )
        assert_equivalent(reference, reference.run(), shared, shared.run())

    def test_early_stop_then_step_cycle_continues_identically(self):
        # an early-stopped fused run leaves normal _Inflight entries
        # (compact prediction tokens included) that the per-cycle
        # engine can drain to the same final state
        program = small_program()
        fast_sim = PipelineSimulator(program, GsharePredictor(), fast=True)
        fast_sim.run(max_instructions=900)
        while not fast_sim.done:
            fast_sim.step_cycle()
        slow_sim = PipelineSimulator(program, GsharePredictor(), fast=False)
        slow_sim.run()
        assert fast_sim.machine.regs == slow_sim.machine.regs
        assert fast_sim.machine.memory == slow_sim.machine.memory
        assert (
            fast_sim.stats.committed_instructions
            == slow_sim.stats.committed_instructions
        )


CONGESTION_PROGRAM = """
        lw   r1, 0(r0)
        bne  r1, r0, target
        bne  r1, r0, target
        halt
target: halt
"""


class TestCongestionSingleCharge:
    @pytest.mark.parametrize("fast", (False, True))
    def test_one_miss_window_delays_exactly_one_branch(self, fast):
        # fetch_width=2 puts the load + first branch in one fetch
        # group and the second branch in the next cycle's group: the
        # cold-miss congestion window must charge the first branch
        # (and be consumed), leaving the second branch unpenalized
        program = assemble(CONGESTION_PROGRAM)
        config = PipelineConfig(fetch_width=2, commit_width=4, window=16)
        simulator = PipelineSimulator(
            program, GsharePredictor(), config=config, fast=fast
        )
        for __ in range(40):
            simulator.step_cycle()
            branches = [
                entry for entry in simulator._inflight if entry.is_branch
            ]
            if len(branches) == 2:
                break
        else:
            pytest.fail("both branches never in flight together")
        first, second = branches
        store = simulator.records
        assert first.ready_cycle == (
            store.fetch_cycle[0]
            + config.resolve_stage
            + config.dcache.miss_penalty
        )
        assert second.ready_cycle == (
            store.fetch_cycle[1] + config.resolve_stage
        )
        # the charge consumed the window outright
        assert simulator._congestion == 0


class TestBranchRecordStore:
    def build(self):
        store = BranchRecordStore()
        first = store.append(
            sequence=0,
            pc=4,
            predicted_taken=True,
            actual_taken=True,
            fetch_cycle=2,
            precise_distance=0,
            perceived_distance=0,
            wrong_path=False,
            assessments={"jrs": True},
        )
        second = store.append(
            sequence=1,
            pc=9,
            predicted_taken=False,
            actual_taken=True,
            fetch_cycle=3,
            precise_distance=1,
            perceived_distance=1,
            wrong_path=True,
            assessments=None,
        )
        return store, first, second

    def test_append_resolve_squash_materialize(self):
        store, first, second = self.build()
        store.resolve(first, 9)
        store.squash(second)
        records = store.materialize()
        assert len(store) == len(records) == 2
        assert records[0].committed and records[0].resolve_cycle == 9
        assert not records[0].mispredicted
        assert not records[1].committed and records[1].resolve_cycle is None
        assert records[1].mispredicted  # predicted != actual
        assert records[1].assessments == {}

    def test_materialize_is_memoised_until_mutation(self):
        store, first, __ = self.build()
        views = store.materialize()
        assert store.materialize() is views
        store.resolve(first, 5)
        fresh = store.materialize()
        assert fresh is not views
        assert fresh[0].resolve_cycle == 5

    def test_pickle_round_trip(self):
        store, first, __ = self.build()
        store.resolve(first, 7)
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == len(store)
        for left, right in zip(store.materialize(), clone.materialize()):
            for name in RECORD_FIELDS:
                assert getattr(left, name) == getattr(right, name), name


class TestStatsOrNone:
    def test_empty_run_reports_none_not_zero(self):
        stats = PipelineStats()
        assert stats.fetch_to_commit_ratio_or_none() is None
        assert stats.committed_accuracy_or_none() is None
        assert stats.all_accuracy_or_none() is None
        assert stats.ipc_or_none() is None
        # legacy float properties keep their 0.0 default
        assert stats.fetch_to_commit_ratio == 0.0
        assert stats.committed_accuracy == 0.0
        assert stats.all_accuracy == 0.0
        assert stats.ipc == 0.0

    def test_populated_run_agrees_with_properties(self):
        result = PipelineSimulator(small_program(), GsharePredictor()).run()
        stats = result.stats
        assert stats.fetch_to_commit_ratio_or_none() == pytest.approx(
            stats.fetch_to_commit_ratio
        )
        assert stats.committed_accuracy_or_none() == pytest.approx(
            stats.committed_accuracy
        )
        assert stats.ipc_or_none() == pytest.approx(stats.ipc)


class TestCompactPredictorProtocol:
    @pytest.mark.parametrize("cls", (GsharePredictor, McFarlingPredictor))
    def test_compact_resolution_matches_full(self, cls):
        # drive both protocols with the same outcome stream, resolving
        # a few predictions behind fetch the way the pipeline does;
        # tables and history must stay bit-identical
        full, compact = cls(table_size=64), cls(table_size=64)
        pending = []
        seed = 0xACE1
        for step in range(600):
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
            pc = (seed >> 5) % 19
            taken = bool(seed & 0x4000)
            prediction = full.predict(pc)
            fast_taken, token = compact.predict_compact(pc)
            assert fast_taken == prediction.taken
            pending.append((pc, taken, prediction, token))
            if len(pending) >= 3:  # resolve_stage-deep backlog
                pc, taken, prediction, token = pending.pop(0)
                full.resolve(pc, taken, prediction)
                compact.resolve_compact(pc, taken, token)
        for pc, taken, prediction, token in pending:
            full.resolve(pc, taken, prediction)
            compact.resolve_compact(pc, taken, token)
        assert full.history.value == compact.history.value
        if cls is GsharePredictor:
            assert full.table.values == compact.table.values
        else:
            assert full.gshare_table.values == compact.gshare_table.values
            assert full.bimodal_table.values == compact.bimodal_table.values
            assert full.meta_table.values == compact.meta_table.values


class TestDecodedProgram:
    def test_run_lengths_stop_at_control_and_memory(self):
        program = assemble(
            """
            addi r1, r0, 1
            addi r2, r0, 2
            lw   r3, 0(r0)
            addi r4, r0, 4
            bne  r1, r0, 6
            addi r5, r0, 5
            halt
            """
        )
        decoded = decode_program(program)
        assert decoded.run_len[0] == 2  # two ALU ops, then the load
        assert decoded.run_len[1] == 1
        assert decoded.run_len[2] == 0  # load is not a plain run
        assert decoded.run_len[3] == 1  # ALU op, then the branch
        assert decoded.run_len[4] == 0

    def test_pickle_round_trip_rebuilds_closures(self):
        program = small_program(iterations=5)
        decoded = decode_program(program)
        clone = pickle.loads(pickle.dumps(decoded))
        assert clone.kinds == decoded.kinds
        assert clone.run_len == decoded.run_len
        assert clone.imm == decoded.imm
        # closures are process-local: the clone rebuilds them lazily
        # and the rebuilt engine is byte-identical
        simulator = PipelineSimulator(
            program, GsharePredictor(), decoded=clone, fast=True
        )
        reference = PipelineSimulator(program, GsharePredictor(), fast=False)
        assert_equivalent(
            reference, reference.run(), simulator, simulator.run()
        )

    def test_env_gate_disables_fast_path(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_FAST_ENV, "0")
        assert not pipeline_fast_enabled()
        simulator = PipelineSimulator(small_program(iterations=5), GsharePredictor())
        assert simulator._decoded is None
        monkeypatch.setenv(PIPELINE_FAST_ENV, "1")
        assert pipeline_fast_enabled()
        simulator = PipelineSimulator(small_program(iterations=5), GsharePredictor())
        assert isinstance(simulator._decoded, DecodedProgram)
