"""Tests for design-space sweeps, including the crucial consistency
property: one-pass histograms must equal direct estimator measurement."""

import pytest

from repro.analysis import (
    ValueHistogram,
    average_sweep_lines,
    distance_value_histogram,
    jrs_value_histogram,
    render_sweep,
)
from repro.analysis.sweeps import SweepLine, SweepPoint
from repro.confidence import JRSEstimator, MispredictionDistanceEstimator
from repro.engine import measure
from repro.metrics import QuadrantCounts
from repro.predictors import GsharePredictor


class TestValueHistogram:
    def test_quadrant_partial_sums(self):
        histogram = ValueHistogram(max_value=3)
        histogram.record(0, True)
        histogram.record(1, False)
        histogram.record(2, True)
        histogram.record(3, True)
        quadrant = histogram.quadrant(2)
        assert quadrant.c_hc == 2
        assert quadrant.i_hc == 0
        assert quadrant.c_lc == 1
        assert quadrant.i_lc == 1

    def test_values_clamp_to_max(self):
        histogram = ValueHistogram(max_value=2)
        histogram.record(50, True)
        assert histogram.correct[2] == 1

    def test_threshold_above_max_marks_all_low(self):
        histogram = ValueHistogram(max_value=3)
        histogram.record(3, True)
        histogram.record(3, False)
        quadrant = histogram.quadrant(4)
        assert quadrant.high_confidence == 0
        assert quadrant.pvn == pytest.approx(0.5)

    def test_sweep_line(self):
        histogram = ValueHistogram(max_value=3)
        histogram.record(1, True)
        line = histogram.sweep([0, 1, 2], "demo")
        assert [point.threshold for point in line.points] == [0, 1, 2]
        assert line.point(1).quadrant.c_hc == 1
        with pytest.raises(KeyError):
            line.point(9)


class TestSweepMeasureConsistency:
    """The single-pass histogram must reproduce the live estimators."""

    def test_jrs_histogram_matches_estimator(self, compress_trace):
        threshold = 15
        histogram = jrs_value_histogram(
            compress_trace, GsharePredictor(), table_size=4096, enhanced=True
        )
        sweep_quadrant = histogram.quadrant(threshold)
        predictor = GsharePredictor()
        direct = measure(
            compress_trace,
            predictor,
            {"jrs": JRSEstimator(table_size=4096, threshold=threshold, enhanced=True)},
        ).quadrants["jrs"]
        assert sweep_quadrant.c_hc == direct.c_hc
        assert sweep_quadrant.i_hc == direct.i_hc
        assert sweep_quadrant.c_lc == direct.c_lc
        assert sweep_quadrant.i_lc == direct.i_lc

    def test_jrs_histogram_matches_original_variant(self, compress_trace):
        histogram = jrs_value_histogram(
            compress_trace, GsharePredictor(), table_size=1024, enhanced=False
        )
        predictor = GsharePredictor()
        direct = measure(
            compress_trace,
            predictor,
            {"jrs": JRSEstimator(table_size=1024, threshold=8, enhanced=False)},
        ).quadrants["jrs"]
        quadrant = histogram.quadrant(8)
        assert (quadrant.c_hc, quadrant.i_hc, quadrant.c_lc, quadrant.i_lc) == (
            direct.c_hc,
            direct.i_hc,
            direct.c_lc,
            direct.i_lc,
        )

    def test_distance_histogram_matches_estimator(self, compress_trace):
        distance_threshold = 4
        histogram = distance_value_histogram(
            compress_trace, GsharePredictor(), max_distance=16
        )
        predictor = GsharePredictor()
        direct = measure(
            compress_trace,
            predictor,
            {"dist": MispredictionDistanceEstimator(distance_threshold)},
        ).quadrants["dist"]
        quadrant = histogram.quadrant(distance_threshold + 1)
        assert (quadrant.c_hc, quadrant.i_hc, quadrant.c_lc, quadrant.i_lc) == (
            direct.c_hc,
            direct.i_hc,
            direct.c_lc,
            direct.i_lc,
        )


class TestSweepShapes:
    def test_higher_threshold_trades_sens_for_spec(self, compress_trace):
        histogram = jrs_value_histogram(compress_trace, GsharePredictor())
        line = histogram.sweep(list(range(0, 17)), "gshare")
        sens_values = [point.quadrant.sens for point in line.points]
        spec_values = [point.quadrant.spec for point in line.points]
        assert sens_values == sorted(sens_values, reverse=True)
        assert spec_values == sorted(spec_values)

    def test_threshold_zero_marks_everything_high(self, compress_trace):
        histogram = jrs_value_histogram(compress_trace, GsharePredictor())
        quadrant = histogram.quadrant(0)
        assert quadrant.low_confidence == 0

    def test_unreachable_threshold_pvn_equals_misprediction_rate(
        self, compress_trace
    ):
        histogram = jrs_value_histogram(compress_trace, GsharePredictor())
        quadrant = histogram.quadrant(16)
        assert quadrant.high_confidence == 0
        assert quadrant.pvn == pytest.approx(quadrant.misprediction_rate)


class TestAveraging:
    def test_average_sweep_lines(self):
        line_a = SweepLine(
            "a",
            (SweepPoint(1, QuadrantCounts(c_hc=1, i_lc=1)),),
        )
        line_b = SweepLine(
            "b",
            (SweepPoint(1, QuadrantCounts(c_hc=3, i_lc=1)),),
        )
        merged = average_sweep_lines([line_a, line_b], "mean")
        assert merged.points[0].quadrant.c_hc == pytest.approx(
            (0.5 + 0.75) / 2
        )

    def test_mismatched_thresholds_rejected(self):
        line_a = SweepLine("a", (SweepPoint(1, QuadrantCounts(c_hc=1)),))
        line_b = SweepLine("b", (SweepPoint(2, QuadrantCounts(c_hc=1)),))
        with pytest.raises(ValueError):
            average_sweep_lines([line_a, line_b], "mean")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_sweep_lines([], "mean")

    def test_render_sweep(self):
        line = SweepLine("demo", (SweepPoint(1, QuadrantCounts(c_hc=1)),))
        text = render_sweep([line])
        assert "demo" in text and "pvn" in text
