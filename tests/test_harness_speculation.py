"""Tests for the speculation-control battery: experiment registration,
cell caching, parallel equivalence, report section, journal events and
the ``repro speculate`` CLI entry point."""

import json

import pytest

from repro.engine import cache as artifact_cache
from repro.engine import clear_cache
from repro.harness import (
    EXPERIMENTS,
    GATE_THRESHOLDS,
    SPECULATION_BATTERY,
    SPECULATION_ESTIMATORS,
    Scale,
    clear_memoised,
    plan_warm_tasks,
    render_report,
    render_speculation_control,
    run_all,
    run_experiment,
)
from repro.obs.journal import RunJournal, read_journal
from repro.obs.registry import REGISTRY

#: Small enough for unit tests, big enough to gate/fork at least once.
TINY = Scale(iterations=40, pipeline_instructions=4000, workloads=("compress",))


@pytest.fixture()
def isolated_cache(tmp_path):
    """A fresh disk cache + empty in-process memo tier."""
    previous_root = artifact_cache.get_cache().root
    previous_enabled = artifact_cache.get_cache().enabled
    artifact_cache.configure(root=tmp_path / "cache", enabled=True)
    clear_memoised()
    clear_cache()
    yield artifact_cache.get_cache()
    artifact_cache.configure(root=previous_root, enabled=previous_enabled)
    clear_memoised()
    clear_cache()


class TestRegistration:
    def test_battery_registered_in_experiments(self):
        for experiment_id in SPECULATION_BATTERY:
            assert experiment_id in EXPERIMENTS

    def test_direct_import_order_also_registers(self):
        # importing the speculation module first must not break the
        # bottom-of-module self-registration
        from repro.harness.speculation import SPECULATION_EXPERIMENTS

        assert set(SPECULATION_EXPERIMENTS) == set(SPECULATION_BATTERY)


class TestGatingExperiment:
    def test_table_and_cells(self, isolated_cache):
        result = run_experiment("speculation-gating", TINY)
        (table,) = result.tables
        assert "Speculation control" in table.title
        expected_rows = (
            len(TINY.workloads) * len(SPECULATION_ESTIMATORS) * len(GATE_THRESHOLDS)
        )
        assert len(table.rows) == expected_rows
        assert len(result.data["cells"]) == expected_rows

    def test_gating_saves_wrong_path_work(self, isolated_cache):
        result = run_experiment("speculation-gating", TINY)
        # at threshold 1 every estimator should suppress some fetch and
        # save some squashed instructions on this branchy workload
        for cell in result.data["cells"]:
            if cell.threshold == 1:
                assert cell.fetch_gated_cycles > 0
                assert cell.wrong_path_saved > 0

    def test_journal_rows_are_json_safe(self, isolated_cache):
        result = run_experiment("speculation-gating", TINY)
        rows = result.data["journal_rows"]
        assert len(rows) == len(result.data["cells"])
        json.dumps(rows)  # must not raise

    def test_registry_metrics_counted(self, isolated_cache):
        before = REGISTRY.snapshot()
        run_experiment("speculation-gating", TINY)
        delta = REGISTRY.since(before).counters
        assert delta.get("speculation.gated_cycles", 0) > 0
        assert delta.get("speculation.wrong_path_instructions", 0) > 0
        assert delta.get("speculation.recovery_cycles", 0) > 0


class TestEagerAndInversionExperiments:
    def test_eager_cells(self, isolated_cache):
        result = run_experiment("speculation-eager", TINY)
        cells = result.data["cells"]
        assert len(cells) == len(TINY.workloads) * len(SPECULATION_ESTIMATORS)
        for cell in cells:
            assert cell.covered_mispredictions <= cell.forks
        json.dumps(result.data["journal_rows"])

    def test_inversion_negative_result_shape(self, isolated_cache):
        result = run_experiment("speculation-inversion", TINY)
        for cell in result.data["cells"]:
            assert cell.branches > 0
            assert 0.0 <= cell.base_accuracy <= 1.0
            assert cell.flips_helped + cell.flips_hurt <= cell.flips
        json.dumps(result.data["journal_rows"])


class TestWarmPlan:
    def test_speculation_kinds_planned(self):
        __, heavy = plan_warm_tasks(list(SPECULATION_BATTERY), TINY)
        kinds = {}
        for kind, args in heavy:
            kinds.setdefault(kind, []).append(args)
        assert len(kinds["gating"]) == (
            len(TINY.workloads) * len(SPECULATION_ESTIMATORS) * len(GATE_THRESHOLDS)
        )
        assert len(kinds["eager"]) == len(TINY.workloads) * len(
            SPECULATION_ESTIMATORS
        )
        assert len(kinds["inversion"]) == len(TINY.workloads) * len(
            SPECULATION_ESTIMATORS
        )

    def test_trace_still_warmed(self):
        trace_tasks, __ = plan_warm_tasks(["speculation-inversion"], TINY)
        assert {args[0] for __kind, args in trace_tasks} == set(TINY.workloads)


class TestParallelEquivalence:
    def test_gating_jobs2_identical_to_serial(self, isolated_cache):
        serial = run_all(TINY, only=["speculation-gating"], jobs=1)
        clear_memoised()
        parallel = run_all(TINY, only=["speculation-gating"], jobs=2)
        assert (
            serial["speculation-gating"].to_text()
            == parallel["speculation-gating"].to_text()
        )

    def test_warm_rerun_hits_disk(self, isolated_cache):
        run_all(TINY, only=["speculation-gating"], jobs=1)
        assert isolated_cache.stats.writes > 0
        clear_memoised()
        clear_cache()
        before = isolated_cache.stats.snapshot()
        run_all(TINY, only=["speculation-gating"], jobs=1)
        delta = isolated_cache.stats.since(before)
        assert delta.hits > 0
        assert delta.misses == 0


class TestReportSection:
    def test_report_has_speculation_control_section(self, isolated_cache):
        results = run_all(
            TINY, only=["speculation-gating", "speculation-eager"], jobs=1
        )
        report = render_report(results, TINY)
        assert "## Speculation control" in report
        assert "wrong-path saved" in report
        assert "ipc delta" in report

    def test_section_absent_without_speculation_results(self, isolated_cache):
        results = run_all(TINY, only=["fig1"], jobs=1)
        assert render_speculation_control(results) is None
        assert "## Speculation control" not in render_report(results, TINY)


class TestJournalEvents:
    def test_speculation_summary_emitted_and_valid(
        self, isolated_cache, tmp_path
    ):
        path = tmp_path / "spec.jsonl"
        with RunJournal(path) as journal:
            run_all(TINY, only=["speculation-gating"], jobs=1, journal=journal)
        events = read_journal(path)  # validates every line
        summaries = [e for e in events if e["event"] == "speculation_summary"]
        assert [e["experiment"] for e in summaries] == ["speculation-gating"]
        rows = summaries[0]["rows"]
        assert {row["workload"] for row in rows} == set(TINY.workloads)
        assert all("ipc_delta" in row for row in rows)


class TestCli:
    def test_speculate_subcommand(self, isolated_cache, tmp_path, capsys):
        from repro.cli import main

        journal_path = tmp_path / "speculate.jsonl"
        status = main(
            [
                "speculate",
                "--scale",
                "smoke",
                "--workloads",
                "compress",
                "--iterations",
                "40",
                "--pipeline-instructions",
                "4000",
                "--journal",
                str(journal_path),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "## Speculation control" in out
        for experiment_id in SPECULATION_BATTERY:
            assert experiment_id in out
        events = read_journal(journal_path)
        assert sum(e["event"] == "speculation_summary" for e in events) == len(
            SPECULATION_BATTERY
        )

    def test_run_accepts_speculation_ids(self, isolated_cache, capsys):
        from repro.cli import main

        status = main(
            [
                "run",
                "speculation-inversion",
                "--scale",
                "smoke",
                "--workloads",
                "compress",
                "--iterations",
                "40",
            ]
        )
        assert status == 0
        assert "inversion" in capsys.readouterr().out
