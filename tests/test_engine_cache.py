"""Tests for the content-addressed artifact cache."""

import pickle

import pytest

from repro.engine.cache import (
    ArtifactCache,
    CacheStats,
    cache_enabled_by_env,
    configure,
    default_cache_dir,
    get_cache,
    set_warning_sink,
)


@pytest.fixture()
def warnings_sink():
    """Capture ``(context, message)`` cache degradation warnings."""
    captured = []
    previous = set_warning_sink(lambda context, message: captured.append((context, message)))
    yield captured
    set_warning_sink(previous)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "artifacts")


class TestKeying:
    def test_key_is_stable(self, cache):
        a = cache.key("trace", workload="gcc", iterations=50)
        b = cache.key("trace", iterations=50, workload="gcc")
        assert a == b

    def test_key_changes_with_any_part(self, cache):
        base = cache.key("trace", workload="gcc", iterations=50, profile="abc")
        assert base != cache.key("trace", workload="go", iterations=50, profile="abc")
        assert base != cache.key("trace", workload="gcc", iterations=60, profile="abc")
        assert base != cache.key("trace", workload="gcc", iterations=50, profile="xyz")

    def test_key_changes_with_kind_and_salt(self, cache, tmp_path):
        other = ArtifactCache(root=tmp_path, salt="other-salt")
        assert cache.key("trace", w="gcc") != cache.key("pipeline", w="gcc")
        assert cache.key("trace", w="gcc") != other.key("trace", w="gcc")

    def test_key_embeds_kind_prefix(self, cache):
        assert cache.key("pipeline", w="gcc").startswith("pipeline-")


class _ConstantRepr:
    """Two distinct configs whose ``str()`` is identical."""

    def __init__(self, payload):
        self.payload = payload

    def __str__(self):
        return "config"

    __repr__ = __str__


class TestNonJsonParts:
    """``key`` used to fall back to ``json.dumps(..., default=str)``:
    distinct objects with matching reprs silently collided, and objects
    whose repr embeds ``object at 0x...`` never hit the cache again."""

    def test_colliding_reprs_raise_instead_of_colliding(self, cache):
        with pytest.raises(TypeError, match=r"estimator"):
            cache.key("thing", estimator=_ConstantRepr(1))
        # the bug: these two used to produce the SAME key
        with pytest.raises(TypeError):
            cache.key("thing", estimator=_ConstantRepr(2))

    def test_address_bearing_repr_raises_instead_of_missing(self, cache):
        # the bug: repr embeds `object at 0x...`, a fresh key each call
        with pytest.raises(TypeError, match=r"config"):
            cache.key("thing", config=object())

    def test_error_names_every_offending_part(self, cache):
        with pytest.raises(TypeError, match=r"config, estimator"):
            cache.key(
                "thing",
                estimator=object(),
                config=object(),
                workload="gcc",
            )

    def test_error_names_kind(self, cache):
        with pytest.raises(TypeError, match=r"'pipeline'"):
            cache.key("pipeline", config=object())

    def test_cached_propagates_key_error_without_computing(self, cache):
        calls = []
        with pytest.raises(TypeError):
            cache.cached("thing", lambda: calls.append(1), bad=object())
        assert not calls

    def test_json_representable_parts_still_work(self, cache):
        key = cache.key(
            "thing",
            text="gcc",
            number=3,
            ratio=0.5,
            flag=True,
            nothing=None,
            seq=(1, 2, 3),
            mapping={"a": 1},
        )
        assert key.startswith("thing-")


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        first = cache.cached("thing", compute, x=1)
        second = cache.cached("thing", compute, x=1)
        assert first == second == {"value": 42}
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_different_parts_recompute(self, cache):
        calls = []
        cache.cached("thing", lambda: calls.append(1), x=1)
        cache.cached("thing", lambda: calls.append(1), x=2)
        assert len(calls) == 2

    def test_disabled_cache_always_computes(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        calls = []
        cache.cached("thing", lambda: calls.append(1) or 7, x=1)
        value = cache.cached("thing", lambda: calls.append(1) or 7, x=1)
        assert value == 7
        assert len(calls) == 2
        assert not list(tmp_path.glob("*.pkl"))


class TestCorruption:
    def test_corrupt_entry_falls_back_to_recompute(self, cache):
        key = cache.key("thing", x=1)
        cache.store(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle at all")
        value = cache.cached("thing", lambda: [4, 5, 6], x=1)
        assert value == [4, 5, 6]
        assert cache.stats.errors == 1
        assert cache.stats.corrupt == 1
        # the corrupt file was replaced by the recomputed artifact
        hit, reloaded = cache.load(key)
        assert hit and reloaded == [4, 5, 6]

    def test_truncated_pickle_is_a_miss(self, cache):
        key = cache.key("thing", x=1)
        cache.store(key, list(range(1000)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        hit, __ = cache.load(key)
        assert not hit

    def test_unreadable_root_never_raises(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "file-not-dir")
        (tmp_path / "file-not-dir").write_text("i am a file")
        cache.store(cache.key("k", x=1), 1)  # swallowed, counted
        assert cache.stats.errors == 1

    def test_corrupt_entry_warns_with_key_and_unlinks(self, cache, warnings_sink):
        key = cache.key("thing", x=1)
        cache.store(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"garbage")
        hit, __ = cache.load(key)
        assert not hit
        assert [(c, key in m) for c, m in warnings_sink] == [
            ("corrupt_artifact", True)
        ]
        # corrupt entries are dropped so the recompute can replace them
        assert not cache.path_for(key).exists()

    def test_transient_read_error_keeps_entry_and_warns(
        self, cache, warnings_sink, monkeypatch
    ):
        """A flaky disk is not corruption: the entry survives and the
        corrupt counter stays untouched."""
        key = cache.key("thing", x=1)
        cache.store(key, [1, 2, 3])
        path = cache.path_for(key)

        import builtins

        real_open = builtins.open

        def failing_open(file, *args, **kwargs):
            if str(file) == str(path) and "r" in args[0]:
                raise PermissionError("flaky disk")
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", failing_open)
        hit, __ = cache.load(key)
        monkeypatch.undo()

        assert not hit
        assert cache.stats.errors == 1
        assert cache.stats.corrupt == 0
        assert [(c, key in m) for c, m in warnings_sink] == [("cache_read", True)]
        assert path.exists()  # it may be perfectly healthy next time
        hit, value = cache.load(key)
        assert hit and value == [1, 2, 3]

    def test_failed_store_warns_with_key(self, tmp_path, warnings_sink):
        cache = ArtifactCache(root=tmp_path / "file-not-dir")
        (tmp_path / "file-not-dir").write_text("i am a file")
        key = cache.key("k", x=1)
        cache.store(key, 1)
        assert [(c, key in m) for c, m in warnings_sink] == [("cache_store", True)]

    def test_warnings_fall_back_to_stderr_without_sink(self, cache, capsys):
        key = cache.key("thing", x=1)
        cache.store(key, [1])
        cache.path_for(key).write_bytes(b"garbage")
        cache.load(key)
        err = capsys.readouterr().err
        assert "repro:" in err and key in err

    def test_kind_of_inverts_key(self, cache):
        assert ArtifactCache.kind_of(cache.key("pipeline", x=1)) == "pipeline"


class TestVerify:
    def test_verify_classifies_entries(self, cache):
        good = cache.key("thing", x=1)
        bad = cache.key("thing", x=2)
        cache.store(good, [1])
        cache.store(bad, [2])
        cache.path_for(bad).write_bytes(b"garbage")
        report = cache.verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["corrupt"] == [bad]
        assert report["unreadable"] == []
        # verify reports, it does not delete
        assert cache.path_for(bad).exists()

    def test_verify_empty_root(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "never-created")
        assert cache.verify() == {
            "checked": 0,
            "ok": 0,
            "corrupt": [],
            "unreadable": [],
        }


class TestManagement:
    def test_clear_empties_directory(self, cache):
        for x in range(5):
            cache.store(cache.key("thing", x=x), x)
        assert cache.info()["files"] == 5
        assert cache.clear() == 5
        assert cache.info()["files"] == 0
        assert not list(cache.root.glob("*.pkl"))

    def test_info_breakdown_by_kind(self, cache):
        cache.store(cache.key("trace", x=1), b"x" * 100)
        cache.store(cache.key("trace", x=2), b"x" * 100)
        cache.store(cache.key("pipeline", x=1), b"y")
        info = cache.info()
        assert info["kinds"]["trace"]["files"] == 2
        assert info["kinds"]["pipeline"]["files"] == 1
        assert info["bytes"] > 0

    def test_stats_since_and_merge(self):
        stats = CacheStats(hits=5, misses=3, writes=2, errors=1)
        snap = stats.snapshot()
        stats.hits += 2
        delta = stats.since(snap)
        assert delta.hits == 2 and delta.misses == 0
        total = CacheStats()
        total.merge(stats)
        assert total.hits == stats.hits


class TestEnvironment:
    def test_configure_updates_env_and_singleton(self, tmp_path, monkeypatch):
        previous = get_cache()
        configured = configure(root=tmp_path / "c", enabled=True)
        try:
            assert get_cache() is configured
            assert cache_enabled_by_env()
            configure(enabled=False)
            assert not cache_enabled_by_env()
            assert str(default_cache_dir()) == str(tmp_path / "c")
        finally:
            configure(root=previous.root, enabled=previous.enabled)

    def test_store_is_pickle_roundtrip(self, cache):
        from array import array

        payload = {"pcs": array("L", [1, 2, 3]), "outcomes": bytearray(b"\x01\x00")}
        key = cache.key("roundtrip", x=1)
        cache.store(key, payload)
        hit, value = cache.load(key)
        assert hit
        assert value == payload
        assert pickle.dumps(value)
