"""Tests for the content-addressed artifact cache."""

import pickle

import pytest

from repro.engine.cache import (
    ArtifactCache,
    CacheStats,
    cache_enabled_by_env,
    configure,
    default_cache_dir,
    get_cache,
)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "artifacts")


class TestKeying:
    def test_key_is_stable(self, cache):
        a = cache.key("trace", workload="gcc", iterations=50)
        b = cache.key("trace", iterations=50, workload="gcc")
        assert a == b

    def test_key_changes_with_any_part(self, cache):
        base = cache.key("trace", workload="gcc", iterations=50, profile="abc")
        assert base != cache.key("trace", workload="go", iterations=50, profile="abc")
        assert base != cache.key("trace", workload="gcc", iterations=60, profile="abc")
        assert base != cache.key("trace", workload="gcc", iterations=50, profile="xyz")

    def test_key_changes_with_kind_and_salt(self, cache, tmp_path):
        other = ArtifactCache(root=tmp_path, salt="other-salt")
        assert cache.key("trace", w="gcc") != cache.key("pipeline", w="gcc")
        assert cache.key("trace", w="gcc") != other.key("trace", w="gcc")

    def test_key_embeds_kind_prefix(self, cache):
        assert cache.key("pipeline", w="gcc").startswith("pipeline-")


class _ConstantRepr:
    """Two distinct configs whose ``str()`` is identical."""

    def __init__(self, payload):
        self.payload = payload

    def __str__(self):
        return "config"

    __repr__ = __str__


class TestNonJsonParts:
    """``key`` used to fall back to ``json.dumps(..., default=str)``:
    distinct objects with matching reprs silently collided, and objects
    whose repr embeds ``object at 0x...`` never hit the cache again."""

    def test_colliding_reprs_raise_instead_of_colliding(self, cache):
        with pytest.raises(TypeError, match=r"estimator"):
            cache.key("thing", estimator=_ConstantRepr(1))
        # the bug: these two used to produce the SAME key
        with pytest.raises(TypeError):
            cache.key("thing", estimator=_ConstantRepr(2))

    def test_address_bearing_repr_raises_instead_of_missing(self, cache):
        # the bug: repr embeds `object at 0x...`, a fresh key each call
        with pytest.raises(TypeError, match=r"config"):
            cache.key("thing", config=object())

    def test_error_names_every_offending_part(self, cache):
        with pytest.raises(TypeError, match=r"config, estimator"):
            cache.key(
                "thing",
                estimator=object(),
                config=object(),
                workload="gcc",
            )

    def test_error_names_kind(self, cache):
        with pytest.raises(TypeError, match=r"'pipeline'"):
            cache.key("pipeline", config=object())

    def test_cached_propagates_key_error_without_computing(self, cache):
        calls = []
        with pytest.raises(TypeError):
            cache.cached("thing", lambda: calls.append(1), bad=object())
        assert not calls

    def test_json_representable_parts_still_work(self, cache):
        key = cache.key(
            "thing",
            text="gcc",
            number=3,
            ratio=0.5,
            flag=True,
            nothing=None,
            seq=(1, 2, 3),
            mapping={"a": 1},
        )
        assert key.startswith("thing-")


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        first = cache.cached("thing", compute, x=1)
        second = cache.cached("thing", compute, x=1)
        assert first == second == {"value": 42}
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_different_parts_recompute(self, cache):
        calls = []
        cache.cached("thing", lambda: calls.append(1), x=1)
        cache.cached("thing", lambda: calls.append(1), x=2)
        assert len(calls) == 2

    def test_disabled_cache_always_computes(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        calls = []
        cache.cached("thing", lambda: calls.append(1) or 7, x=1)
        value = cache.cached("thing", lambda: calls.append(1) or 7, x=1)
        assert value == 7
        assert len(calls) == 2
        assert not list(tmp_path.glob("*.pkl"))


class TestCorruption:
    def test_corrupt_entry_falls_back_to_recompute(self, cache):
        key = cache.key("thing", x=1)
        cache.store(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle at all")
        value = cache.cached("thing", lambda: [4, 5, 6], x=1)
        assert value == [4, 5, 6]
        assert cache.stats.errors == 1
        # the corrupt file was replaced by the recomputed artifact
        hit, reloaded = cache.load(key)
        assert hit and reloaded == [4, 5, 6]

    def test_truncated_pickle_is_a_miss(self, cache):
        key = cache.key("thing", x=1)
        cache.store(key, list(range(1000)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        hit, __ = cache.load(key)
        assert not hit

    def test_unreadable_root_never_raises(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "file-not-dir")
        (tmp_path / "file-not-dir").write_text("i am a file")
        cache.store(cache.key("k", x=1), 1)  # swallowed, counted
        assert cache.stats.errors == 1


class TestManagement:
    def test_clear_empties_directory(self, cache):
        for x in range(5):
            cache.store(cache.key("thing", x=x), x)
        assert cache.info()["files"] == 5
        assert cache.clear() == 5
        assert cache.info()["files"] == 0
        assert not list(cache.root.glob("*.pkl"))

    def test_info_breakdown_by_kind(self, cache):
        cache.store(cache.key("trace", x=1), b"x" * 100)
        cache.store(cache.key("trace", x=2), b"x" * 100)
        cache.store(cache.key("pipeline", x=1), b"y")
        info = cache.info()
        assert info["kinds"]["trace"]["files"] == 2
        assert info["kinds"]["pipeline"]["files"] == 1
        assert info["bytes"] > 0

    def test_stats_since_and_merge(self):
        stats = CacheStats(hits=5, misses=3, writes=2, errors=1)
        snap = stats.snapshot()
        stats.hits += 2
        delta = stats.since(snap)
        assert delta.hits == 2 and delta.misses == 0
        total = CacheStats()
        total.merge(stats)
        assert total.hits == stats.hits


class TestEnvironment:
    def test_configure_updates_env_and_singleton(self, tmp_path, monkeypatch):
        previous = get_cache()
        configured = configure(root=tmp_path / "c", enabled=True)
        try:
            assert get_cache() is configured
            assert cache_enabled_by_env()
            configure(enabled=False)
            assert not cache_enabled_by_env()
            assert str(default_cache_dir()) == str(tmp_path / "c")
        finally:
            configure(root=previous.root, enabled=previous.enabled)

    def test_store_is_pickle_roundtrip(self, cache):
        from array import array

        payload = {"pcs": array("L", [1, 2, 3]), "outcomes": bytearray(b"\x01\x00")}
        key = cache.key("roundtrip", x=1)
        cache.store(key, payload)
        hit, value = cache.load(key)
        assert hit
        assert value == payload
        assert pickle.dumps(value)
