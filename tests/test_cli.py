"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tab9"])

    def test_workload_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "specfp"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab2" in out and "compress" in out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_run_with_scale_flags(self, capsys):
        code = main(
            [
                "run",
                "tab3",
                "--iterations",
                "40",
                "--workloads",
                "compress,vortex",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compress" in out and "vortex" in out

    def test_workload_summary(self, capsys):
        assert main(["workload", "compress", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "dynamic branches" in out

    def test_workload_source(self, capsys):
        assert main(["workload", "jpeg", "--iterations", "2", "--source"]) == 0
        assert ".text" in capsys.readouterr().out

    def test_trace_writes_file(self, tmp_path, capsys):
        target = str(tmp_path / "out.rbt")
        assert main(["trace", "compress", target, "--iterations", "10"]) == 0
        from repro.workloads import BranchTrace

        trace = BranchTrace.load(target)
        assert len(trace) > 100

    def test_run_all_subset_to_file(self, tmp_path, capsys):
        target = str(tmp_path / "report.txt")
        code = main(
            [
                "run-all",
                "--only",
                "fig1",
                "--out",
                target,
                "--iterations",
                "20",
                "--workloads",
                "compress",
            ]
        )
        assert code == 0
        content = open(target).read()
        assert "fig1" in content


class TestScaleAndJobs:
    def test_scale_preset_smoke(self, capsys):
        assert main(["run", "tab3", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "vortex" in out

    def test_scale_flags_override_preset(self):
        from repro.cli import _scale_from_args, build_parser

        args = build_parser().parse_args(
            ["run", "tab3", "--scale", "smoke", "--iterations", "99"]
        )
        scale = _scale_from_args(args)
        assert scale.iterations == 99
        assert scale.workloads == ("compress", "vortex")

    def test_run_without_experiment_runs_battery(self, capsys):
        code = main(
            ["run", "--scale", "smoke", "--workloads", "compress", "--iterations", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# Experiment report" in out
        assert "tab2" in out and "boost" in out
        assert "Battery performance" in out

    def test_jobs_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["run-all", "--jobs", "2"])
        assert args.jobs == 2


class TestCacheCommand:
    def test_cache_info(self, capsys):
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "cache directory:" in out and "entries:" in out

    def test_cache_clear(self, capsys):
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "0 files" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestNewCommands:
    def test_run_json_output(self, capsys):
        import json

        assert main(["run", "fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig1"
        assert payload["tables"]
        assert payload["tables"][0]["headers"]

    def test_tab2d_detail(self, capsys):
        code = main(
            ["run", "tab2d", "--iterations", "40", "--workloads", "compress"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "95% CI" in out and "±" in out
        assert "(accuracy)" in out

    def test_plot_fig4(self, capsys):
        code = main(
            ["plot", "fig4", "--iterations", "40", "--workloads", "compress"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4096 MDCs" in out


class TestSupervisorFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run-all",
                "--resume",
                "prior.jsonl",
                "--task-timeout",
                "120",
                "--retries",
                "3",
                "--deterministic",
            ]
        )
        assert args.resume == "prior.jsonl"
        assert args.task_timeout == 120.0
        assert args.retries == 3
        assert args.deterministic is True

    def test_deterministic_report_is_reproducible(self, tmp_path, capsys):
        argv = [
            "run-all",
            "--only",
            "fig1",
            "--scale",
            "smoke",
            "--deterministic",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "(timestamp stripped)" in first
        assert "Battery performance" not in first

    def test_resume_via_cli_skips_finished_and_reuses_scale(
        self, tmp_path, capsys
    ):
        journal = str(tmp_path / "first.jsonl")
        assert (
            main(
                [
                    "run-all",
                    "--only",
                    "fig1,tab3",
                    "--scale",
                    "smoke",
                    "--journal",
                    journal,
                    "--deterministic",
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        # no --only, no --scale: both come from the resumed journal
        assert main(["run-all", "--resume", journal, "--deterministic"]) == 0
        second = capsys.readouterr().out
        assert first == second

        from repro.obs.journal import read_journal

        events = read_journal(journal)
        assert [
            e["experiment"]
            for e in events
            if e["event"] == "experiment_finished"
        ] == ["fig1", "tab3"]


class TestCacheVerifyCommand:
    def test_verify_clean_cache_exits_zero(self, capsys):
        assert main(["cache", "verify"]) == 0
        out = capsys.readouterr().out
        assert "checked:" in out and "corrupt:" in out

    def test_verify_flags_corrupt_entry(self, capsys):
        from repro.engine.cache import get_cache

        cache = get_cache()
        key = cache.key("clitest", x=1)
        cache.store(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"garbage")
        try:
            assert main(["cache", "verify"]) == 1
            out = capsys.readouterr().out
            assert f"corrupt: {key}" in out
        finally:
            cache.path_for(key).unlink()

    def test_info_reports_corrupt_stat(self, capsys):
        assert main(["cache", "info"]) == 0
        assert "corrupt" in capsys.readouterr().out
