"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tab9"])

    def test_workload_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "specfp"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab2" in out and "compress" in out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_run_with_scale_flags(self, capsys):
        code = main(
            [
                "run",
                "tab3",
                "--iterations",
                "40",
                "--workloads",
                "compress,vortex",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compress" in out and "vortex" in out

    def test_workload_summary(self, capsys):
        assert main(["workload", "compress", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "dynamic branches" in out

    def test_workload_source(self, capsys):
        assert main(["workload", "jpeg", "--iterations", "2", "--source"]) == 0
        assert ".text" in capsys.readouterr().out

    def test_trace_writes_file(self, tmp_path, capsys):
        target = str(tmp_path / "out.rbt")
        assert main(["trace", "compress", target, "--iterations", "10"]) == 0
        from repro.workloads import BranchTrace

        trace = BranchTrace.load(target)
        assert len(trace) > 100

    def test_run_all_subset_to_file(self, tmp_path, capsys):
        target = str(tmp_path / "report.txt")
        code = main(
            [
                "run-all",
                "--only",
                "fig1",
                "--out",
                target,
                "--iterations",
                "20",
                "--workloads",
                "compress",
            ]
        )
        assert code == 0
        content = open(target).read()
        assert "fig1" in content


class TestNewCommands:
    def test_run_json_output(self, capsys):
        import json

        assert main(["run", "fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig1"
        assert payload["tables"]
        assert payload["tables"][0]["headers"]

    def test_tab2d_detail(self, capsys):
        code = main(
            ["run", "tab2d", "--iterations", "40", "--workloads", "compress"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "95% CI" in out and "±" in out
        assert "(accuracy)" in out

    def test_plot_fig4(self, capsys):
        code = main(
            ["plot", "fig4", "--iterations", "40", "--workloads", "compress"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4096 MDCs" in out
