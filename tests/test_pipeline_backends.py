"""Backend registry + refactor-equivalence property suite.

Two nets, matching the frontend/backend split:

* the refactored **in-order** backend (now one plugin among several)
  must still produce bit-identical results between its fast engines and
  the reference ``machine.step()`` loop -- same stats block, all 11
  branch-record columns, both quadrant maps, and the same final
  architectural machine state -- across Hypothesis-composed random
  programs, predictors and estimator attachments;
* the **out-of-order** backend must be self-consistent: the same cell
  run whole, run segmented (paused at arbitrary instruction stops), and
  pickled/unpickled at every boundary must be indistinguishable, and
  its committed architectural state must equal the golden functional
  machine.

Plus unit coverage for the registry surface itself
(:func:`normalize_backend` / :func:`create_simulator` /
:func:`register_backend`), the OoO rename free-list conservation
invariant, and the window-depth histogram contract behind the report's
figure 8/9 extension.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import JRSEstimator, MispredictionDistanceEstimator
from repro.engine import workload_program
from repro.isa import Machine
from repro.isa.instructions import NUM_REGISTERS
from repro.pipeline import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    DEPTH_HISTOGRAM_KEY,
    OutOfOrderSimulator,
    PipelineConfig,
    PipelineSimulator,
    backend_uses_decoded,
    create_simulator,
    normalize_backend,
    register_backend,
)
from repro.predictors import make_predictor
from repro.speculation import EagerOutOfOrderSimulator, GatedOutOfOrderSimulator
from repro.speculation.dualpath import EAGER_SIMULATORS
from repro.speculation.gating import GATED_SIMULATORS
from repro.workloads.generator import generate_program

# reuse the fuzz suite's program/geometry strategies so both nets see
# the same adversarial workload space
from test_pipeline_fuzz import pipeline_configs, workload_profiles


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------


class TestBackendRegistry:
    def test_names_and_default(self):
        assert DEFAULT_BACKEND == "inorder"
        assert set(BACKEND_NAMES) == {"inorder", "ooo"}

    def test_normalize_accepts_none_and_names(self):
        assert normalize_backend(None) == "inorder"
        assert normalize_backend("") == "inorder"
        assert normalize_backend("inorder") == "inorder"
        assert normalize_backend("ooo") == "ooo"

    def test_normalize_rejects_unknown(self):
        with pytest.raises(ValueError, match="inorder"):
            normalize_backend("tomasulo")

    def test_create_simulator_dispatches(self):
        program = workload_program("compress", 5)
        inorder = create_simulator(program, make_predictor("gshare"))
        assert type(inorder) is PipelineSimulator
        ooo = create_simulator(
            program, make_predictor("gshare"), backend="ooo"
        )
        assert type(ooo) is OutOfOrderSimulator

    def test_register_backend_validates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("inorder", OutOfOrderSimulator)
        # re-registering the same class is a harmless no-op
        register_backend("inorder", PipelineSimulator)
        with pytest.raises(ValueError, match="identifier"):
            register_backend("not a name!", PipelineSimulator)
        with pytest.raises(TypeError, match="PipelineSimulator"):
            register_backend("bogus", object)

    def test_backend_uses_decoded(self):
        assert backend_uses_decoded("inorder")
        assert not backend_uses_decoded("ooo")

    def test_ooo_rejects_degenerate_geometry(self):
        program = workload_program("compress", 5)
        for kwargs in ({"window": 0}, {"issue_width": 0}, {"commit_width": 0}):
            with pytest.raises(ValueError):
                OutOfOrderSimulator(
                    program, make_predictor("gshare"), **kwargs
                )

    def test_speculation_simulator_maps_cover_all_backends(self):
        assert set(GATED_SIMULATORS) == set(BACKEND_NAMES)
        assert set(EAGER_SIMULATORS) == set(BACKEND_NAMES)


# ----------------------------------------------------------------------
# shared digest helpers (the full observable surface of a finished cell)
# ----------------------------------------------------------------------


def _digest(simulator, result):
    """Stats, all 11 record columns, quadrants, machine state."""
    records = result.records
    columns = (
        list(records.sequence),
        list(records.pc),
        list(records.predicted_taken),
        list(records.actual_taken),
        list(records.fetch_cycle),
        list(records.resolve_cycle),
        list(records.committed),
        list(records.precise_distance),
        list(records.perceived_distance),
        list(records.wrong_path),
        list(records.assessments),
    )
    machine = simulator.machine
    return (
        columns,
        dataclasses.asdict(result.stats),
        list(machine.regs),
        dict(machine.memory),
        machine.pc,
        machine.halted,
        machine.instructions_retired,
        {n: vars(q).copy() for n, q in result.quadrants_committed.items()},
        {n: vars(q).copy() for n, q in result.quadrants_all.items()},
    )


def _estimators(with_estimators):
    if not with_estimators:
        return {}
    return {
        "jrs": JRSEstimator(table_size=256, threshold=7),
        "dist": MispredictionDistanceEstimator(3),
    }


# ----------------------------------------------------------------------
# property net 1: the refactored in-order backend is still bit-exact
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    workload_profiles(),
    pipeline_configs(),
    st.sampled_from(("gshare", "mcfarling", "sag", "bimodal")),
    st.booleans(),
)
def test_inorder_fast_and_reference_identical_after_refactor(
    profile, config, predictor_name, with_estimators
):
    """Random program x predictor x estimators: the fast engines and
    the reference loop (the pre-refactor semantics, now carrying the
    backend dispatch/retire hooks) stay indistinguishable, and both
    equal the golden functional machine."""
    program = generate_program(profile)
    digests = []
    for fast in (False, True):
        simulator = create_simulator(
            program,
            make_predictor(predictor_name),
            backend="inorder",
            config=config,
            estimators=_estimators(with_estimators),
            fast=fast,
        )
        digests.append(_digest(simulator, simulator.run()))
    assert digests[0] == digests[1]
    golden = Machine(program)
    golden.run()
    __, stats, regs, memory, *_ = digests[0]
    assert regs == list(golden.regs)
    assert memory == dict(golden.memory)
    assert stats["committed_instructions"] == golden.instructions_retired


# ----------------------------------------------------------------------
# property net 2: out-of-order self-consistency + architectural truth
# ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    workload_profiles(),
    pipeline_configs(),
    st.sampled_from(("gshare", "mcfarling")),
    st.booleans(),
)
def test_ooo_whole_segmented_and_pickled_identical(
    profile, config, predictor_name, with_estimators
):
    """The same OoO cell run whole, paused at instruction boundaries,
    and pickle-round-tripped at every pause produces identical digests
    and matches the golden machine's architectural state."""
    program = generate_program(profile)

    def build():
        return OutOfOrderSimulator(
            program,
            make_predictor(predictor_name),
            config=config,
            estimators=_estimators(with_estimators),
            window=64,
            issue_width=4,
            commit_width=4,
        )

    whole = build()
    whole_digest = _digest(whole, whole.run())
    total = whole.machine.instructions_retired

    stops = [s for s in (total // 3, 2 * total // 3) if 0 < s < total]
    split = build()
    for stop in stops:
        split.run(stop_instructions=stop)
        split = pickle.loads(pickle.dumps(split))
    split_digest = _digest(split, split.run())
    assert split_digest == whole_digest

    golden = Machine(program)
    golden.run()
    assert whole.machine.regs == golden.regs
    assert whole.machine.memory == golden.memory
    assert (
        whole_digest[1]["committed_instructions"]
        == golden.instructions_retired
    )


@settings(max_examples=10, deadline=None)
@given(workload_profiles(), pipeline_configs())
def test_ooo_rename_free_list_conserved(profile, config):
    """After a completed run every physical register is accounted for:
    32 unique map entries + a full free list, no leaked writers."""
    program = generate_program(profile)
    simulator = OutOfOrderSimulator(
        program,
        make_predictor("gshare"),
        config=config,
        window=32,
        issue_width=2,
        commit_width=2,
    )
    simulator.run()
    assert simulator._rename_of == {}  # every writer retired or squashed
    mapped = set(simulator._rename_map)
    free = set(simulator._free_regs)
    assert len(mapped) == NUM_REGISTERS
    assert len(free) == len(simulator._free_regs)  # no duplicates
    assert not (mapped & free)
    assert mapped | free == set(range(NUM_REGISTERS + 32))


# ----------------------------------------------------------------------
# window-depth histogram (figs 8/9 extension) + mixin composition
# ----------------------------------------------------------------------


class TestDepthHistogram:
    def test_ooo_records_one_sample_per_recovery(self):
        program = workload_program("compress", 30)
        simulator = OutOfOrderSimulator(program, make_predictor("gshare"))
        result = simulator.run(max_instructions=4000)
        histogram = result.stats.extra.get(DEPTH_HISTOGRAM_KEY)
        assert histogram, "a mispredicting OoO run must record depths"
        assert sum(histogram.values()) == result.stats.committed_mispredictions
        assert all(depth >= 0 for depth in histogram)
        assert max(histogram) <= simulator.config.window

    def test_inorder_never_writes_the_key(self):
        program = workload_program("compress", 30)
        simulator = create_simulator(program, make_predictor("gshare"))
        result = simulator.run(max_instructions=4000)
        assert result.stats.committed_mispredictions > 0
        assert DEPTH_HISTOGRAM_KEY not in result.stats.extra


class TestSpeculationMixins:
    def _run(self, cls, **kwargs):
        program = workload_program("compress", 30)
        predictor = make_predictor("gshare")
        simulator = cls(
            program,
            predictor,
            estimators={"x": JRSEstimator(table_size=256, threshold=7)},
            **kwargs,
        )
        result = simulator.run(max_instructions=4000)
        golden = Machine(program)
        golden.run(simulator.machine.instructions_retired)
        assert simulator.machine.regs == golden.regs
        return simulator, result

    def test_gated_ooo_composes(self):
        simulator, __ = self._run(
            GatedOutOfOrderSimulator, gate_on="x", gate_threshold=1
        )
        assert isinstance(simulator, OutOfOrderSimulator)
        assert simulator.gated_cycles > 0

    def test_eager_ooo_composes(self):
        simulator, __ = self._run(EagerOutOfOrderSimulator, fork_on="x")
        assert isinstance(simulator, OutOfOrderSimulator)
        assert simulator.eager_forks > 0
