"""Tests for prediction inversion (the §2.2 negative result)."""

import pytest

from repro.confidence import JRSEstimator, MispredictionDistanceEstimator
from repro.engine import measure_accuracy, workload_run
from repro.predictors import GsharePredictor
from repro.speculation import (
    InvertingPredictor,
    evaluate_inversion,
)


class TestInvertingPredictor:
    def test_flips_low_confidence_directions(self):
        base = GsharePredictor(table_size=64)
        # JRS threshold 16 is unreachable: everything low-confidence
        wrapper = InvertingPredictor(base, JRSEstimator(table_size=64, threshold=16))
        reference = GsharePredictor(table_size=64)
        for pc in (1, 2, 3, 4):
            flipped = wrapper.predict(pc)
            plain = reference.predict(pc)
            assert flipped.taken != plain.taken
            wrapper.resolve(pc, plain.taken, flipped)
            reference.resolve(pc, plain.taken, plain)
        assert wrapper.flips == 4

    def test_high_confidence_directions_pass_through(self):
        base = GsharePredictor(table_size=64)
        # threshold 0 marks everything high-confidence
        wrapper = InvertingPredictor(base, JRSEstimator(table_size=64, threshold=0))
        reference = GsharePredictor(table_size=64)
        prediction = wrapper.predict(7)
        assert prediction.taken == reference.predict(7).taken
        assert wrapper.flips == 0

    def test_underlying_predictor_trains_unchanged(self):
        """The wrapper must not perturb the substrate's learning."""
        trace = list(workload_run("compress", 40).trace)
        wrapped_base = GsharePredictor()
        wrapper = InvertingPredictor(
            wrapped_base, MispredictionDistanceEstimator(4)
        )
        for pc, taken in trace:
            prediction = wrapper.predict(pc)
            wrapper.resolve(pc, taken, prediction)
        reference = GsharePredictor()
        for pc, taken in trace:
            prediction = reference.predict(pc)
            reference.resolve(pc, taken, prediction)
        assert wrapped_base.table.values == reference.table.values
        assert wrapped_base.history.value == reference.history.value

    def test_reset(self):
        wrapper = InvertingPredictor(
            GsharePredictor(table_size=64),
            JRSEstimator(table_size=64, threshold=16),
        )
        wrapper.predict(1)
        wrapper.reset()
        assert wrapper.flips == 0


class TestEvaluateInversion:
    def test_ledger_identities(self, compress_trace):
        result = evaluate_inversion(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15)
        )
        assert result.branches == len(compress_trace)
        assert result.flips == result.flips_helped + result.flips_hurt
        assert result.accuracy_delta == pytest.approx(
            (result.flips_helped - result.flips_hurt) / result.branches
        )
        assert result.flip_pvn == pytest.approx(
            result.flips_helped / result.flips
        )

    def test_base_accuracy_matches_measure(self, compress_trace):
        result = evaluate_inversion(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15)
        )
        reference = measure_accuracy(compress_trace, GsharePredictor())
        assert result.base_accuracy == pytest.approx(reference.accuracy)

    def test_break_even_is_pvn_fifty_percent(self, compress_trace):
        result = evaluate_inversion(
            compress_trace, GsharePredictor(), JRSEstimator(threshold=15)
        )
        if result.flip_pvn < 0.5:
            assert result.accuracy_delta < 0
        else:
            assert result.accuracy_delta >= 0

    def test_papers_negative_result_holds_here(self):
        """No standard estimator config turns inversion into a win."""
        for threshold in (8, 15):
            for workload in ("compress", "go"):
                trace = workload_run(workload, 100).trace
                result = evaluate_inversion(
                    trace, GsharePredictor(), JRSEstimator(threshold=threshold)
                )
                assert result.accuracy_delta < 0, (workload, threshold)
