"""Behavioural tests for the four branch predictors."""

import pytest

from repro.predictors import (
    BimodalPredictor,
    GsharePredictor,
    McFarlingPredictor,
    SAgPredictor,
    make_predictor,
)


def teach(predictor, pc, taken, times=1):
    for __ in range(times):
        prediction = predictor.predict(pc)
        predictor.resolve(pc, taken, prediction)
    return prediction


class TestBimodal:
    def test_learns_a_bias(self):
        predictor = BimodalPredictor(table_size=64)
        teach(predictor, 5, True, times=4)
        assert predictor.predict(5).taken

    def test_sites_are_independent(self):
        predictor = BimodalPredictor(table_size=64)
        teach(predictor, 5, True, times=4)
        teach(predictor, 6, False, times=4)
        assert predictor.predict(5).taken
        assert not predictor.predict(6).taken

    def test_prediction_carries_counter(self):
        predictor = BimodalPredictor(table_size=64)
        prediction = predictor.predict(3)
        assert prediction.counters == (1,)  # weak not-taken initial

    def test_reset(self):
        predictor = BimodalPredictor(table_size=64)
        teach(predictor, 5, True, times=4)
        predictor.reset()
        assert not predictor.predict(5).taken


class TestGshare:
    def test_learns_history_correlated_branch(self):
        """Outcome = previous branch's outcome: gshare learns it."""
        predictor = GsharePredictor(table_size=256, history_bits=8)
        import random

        rng = random.Random(3)
        correct = 0
        total = 0
        previous = True
        for round_number in range(600):
            lead = rng.random() < 0.5
            prediction = predictor.predict(100)
            predictor.resolve(100, lead, prediction)
            follower_prediction = predictor.predict(200)
            predictor.resolve(200, lead, follower_prediction)
            if round_number > 300:
                total += 1
                correct += follower_prediction.taken == lead
        assert correct / total > 0.95

    def test_speculative_history_contains_prediction(self):
        predictor = GsharePredictor(table_size=64, history_bits=6)
        prediction = predictor.predict(1)
        assert predictor.history.value & 1 == int(prediction.taken)

    def test_history_repair_on_misprediction(self):
        predictor = GsharePredictor(table_size=64, history_bits=6)
        prediction = predictor.predict(1)
        # wrong-path pollution: more predictions that will be squashed
        predictor.predict(2)
        predictor.predict(3)
        actual = not prediction.taken
        predictor.resolve(1, actual, prediction)
        expected = ((prediction.snapshot << 1) | int(actual)) & predictor.history.mask
        assert predictor.history.value == expected

    def test_correct_resolution_keeps_speculative_bit(self):
        predictor = GsharePredictor(table_size=64, history_bits=6)
        prediction = predictor.predict(1)
        history_after_predict = predictor.history.value
        predictor.resolve(1, prediction.taken, prediction)
        assert predictor.history.value == history_after_predict

    def test_non_speculative_variant_updates_at_resolve(self):
        predictor = GsharePredictor(
            table_size=64, history_bits=6, speculative_history=False
        )
        predictor.predict(1)
        assert predictor.history.value == 0
        prediction = predictor.predict(1)
        predictor.resolve(1, True, prediction)
        assert predictor.history.value == 1

    def test_default_history_bits_match_table(self):
        assert GsharePredictor(table_size=4096).history.bits == 12


class TestMcFarling:
    def test_meta_learns_to_pick_the_better_component(self):
        """A PC-biased branch with noisy history: bimodal side wins."""
        predictor = McFarlingPredictor(table_size=256, history_bits=8)
        import random

        rng = random.Random(9)
        # scramble global history with a random branch, then present a
        # branch that is 100% taken: gshare's contexts stay cold, the
        # bimodal component nails it, and the meta should migrate
        correct = 0
        total = 0
        for round_number in range(800):
            noise_prediction = predictor.predict(7)
            predictor.resolve(7, rng.random() < 0.5, noise_prediction)
            prediction = predictor.predict(300)
            predictor.resolve(300, True, prediction)
            if round_number > 400:
                total += 1
                correct += prediction.taken
        assert correct / total > 0.9

    def test_prediction_carries_three_counters(self):
        predictor = McFarlingPredictor(table_size=64)
        assert len(predictor.predict(3).counters) == 3

    def test_meta_unchanged_when_components_agree(self):
        predictor = McFarlingPredictor(table_size=64)
        prediction = predictor.predict(3)
        meta_before = list(predictor.meta_table.values)
        # both components initialised weak-not-taken: they agree
        predictor.resolve(3, False, prediction)
        assert predictor.meta_table.values == meta_before

    def test_history_repair_on_misprediction(self):
        predictor = McFarlingPredictor(table_size=64, history_bits=6)
        prediction = predictor.predict(1)
        predictor.predict(2)
        actual = not prediction.taken
        predictor.resolve(1, actual, prediction)
        expected = ((prediction.snapshot << 1) | int(actual)) & predictor.history.mask
        assert predictor.history.value == expected


class TestSAg:
    def test_learns_alternating_pattern(self):
        predictor = SAgPredictor(history_entries=64, history_bits=6, pht_size=256)
        outcome = False
        correct = 0
        total = 0
        for round_number in range(200):
            outcome = not outcome
            prediction = predictor.predict(10)
            predictor.resolve(10, outcome, prediction)
            if round_number > 100:
                total += 1
                correct += prediction.taken == outcome
        assert correct / total > 0.95

    def test_prediction_history_is_local(self):
        predictor = SAgPredictor(history_entries=64, history_bits=6, pht_size=256)
        teach(predictor, 10, True, times=3)
        teach(predictor, 11, False, times=3)
        assert predictor.predict(10).history == 0b111
        assert predictor.predict(11).history == 0b000

    def test_no_speculative_snapshot(self):
        predictor = SAgPredictor()
        assert predictor.predict(5).snapshot is None

    def test_paper_default_geometry(self):
        predictor = SAgPredictor()
        assert predictor.bht.entries == 2048
        assert predictor.bht.bits == 13
        assert predictor.pht.size == 8192


class TestFactory:
    def test_make_predictor_names(self):
        for name in ("gshare", "mcfarling", "sag", "bimodal"):
            assert make_predictor(name).name == name

    def test_unknown_predictor(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            make_predictor("tage")

    def test_kwargs_forwarded(self):
        predictor = make_predictor("gshare", table_size=64)
        assert predictor.table.size == 64
