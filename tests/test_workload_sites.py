"""Behavioural tests for the branch-site models.

Each site kind is compiled into a minimal single-site program and
executed; the committed branch stream must show the behaviour the site
documents (patterns repeat exactly, loops run their trip counts,
biases land near their nominal value, correlated followers track their
leaders).
"""

import pytest

from repro.engine import trace_branches
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.sites import (
    AlternatingSite,
    BiasedSite,
    CorrelatedSite,
    LoopSite,
    PatternSite,
    WalkSite,
)


def run_single_site(site, iterations=200, extra_sites=()):
    profile = WorkloadProfile(
        name="single",
        description="one site under test",
        sites=tuple([site, *extra_sites]),
        data_seed=77,
    )
    program = generate_program(profile, iterations=iterations)
    return trace_branches(program), program


def outcomes_for_first_site(trace, program):
    """Outcomes of the first branch belonging to the site under test."""
    # the first conditional branch in program order after the loop header
    # belongs to the site; the loop back-branch has the highest pc
    site_pcs = sorted(set(trace.pcs))
    first_pc = site_pcs[0]
    return [taken for pc, taken in trace if pc == first_pc]


class TestBiasedSite:
    def test_bias_is_respected(self):
        site = BiasedSite(threshold=820, field_shift=15)  # ~80% taken
        traced, program = run_single_site(site, iterations=2000)
        # the biased branch is 'bge' = NOT taken when field < threshold,
        # so the not-taken rate approximates the nominal bias
        outcomes = outcomes_for_first_site(traced.trace, program)
        not_taken_rate = 1.0 - sum(outcomes) / len(outcomes)
        assert 0.74 <= not_taken_rate <= 0.86

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BiasedSite(threshold=2000, field_shift=15)

    def test_shift_validation(self):
        with pytest.raises(ValueError):
            BiasedSite(threshold=512, field_shift=2)  # low-entropy LCG bits


class TestCorrelatedSite:
    def test_exact_follower_repeats_leader(self):
        leader = BiasedSite(threshold=512, field_shift=16)
        follower = CorrelatedSite(threshold=512, field_shift=16)
        traced, program = run_single_site(leader, 500, extra_sites=(follower,))
        pcs = sorted(set(traced.trace.pcs))
        lead_pc, follow_pc = pcs[0], pcs[1]
        lead = [taken for pc, taken in traced.trace if pc == lead_pc]
        follow = [taken for pc, taken in traced.trace if pc == follow_pc]
        assert lead == follow  # same field, same threshold => identical


class TestPatternSite:
    def test_pattern_repeats_exactly(self):
        pattern = (1, 1, 0, 1, 0)
        site = PatternSite(pattern=pattern)
        traced, program = run_single_site(site, iterations=50)
        # the pattern branch is the last branch of the site block
        # (after the cursor-wrap branch); identify it as the branch
        # whose outcome stream matches when offset by the pattern
        by_pc = {}
        for pc, taken in traced.trace:
            by_pc.setdefault(pc, []).append(taken)
        expected = [bool(bit) for bit in pattern] * 10
        matching = [
            pc
            for pc, outcomes in by_pc.items()
            if outcomes[: len(expected)] == expected
        ]
        assert matching, "no branch reproduced the configured pattern"

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            PatternSite(pattern=())

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            PatternSite(pattern=(0, 2))

    def test_data_words(self):
        assert PatternSite(pattern=(1, 0, 1)).data_words() == 4


class TestLoopSite:
    def test_fixed_trip_count(self):
        site = LoopSite(trip_min=5, trip_max=5)
        traced, program = run_single_site(site, iterations=30)
        by_pc = {}
        for pc, taken in traced.trace:
            by_pc.setdefault(pc, []).append(taken)
        # the loop back-branch: taken 4x then not taken, repeating
        expected = ([True] * 4 + [False]) * 6
        matching = [
            pc for pc, seq in by_pc.items() if seq[: len(expected)] == expected
        ]
        assert matching, "no branch showed the 5-trip loop shape"

    def test_variable_trip_bounds(self):
        site = LoopSite(trip_min=2, trip_max=6, field_shift=14)
        traced, program = run_single_site(site, iterations=300)
        by_pc = {}
        for pc, taken in traced.trace:
            by_pc.setdefault(pc, []).append(taken)
        # find the back branch: mostly-taken with interspersed not-takens
        back = max(by_pc.items(), key=lambda item: sum(item[1]))[1]
        trips = []
        run = 0
        for taken in back:
            run += 1
            if not taken:
                trips.append(run)
                run = 0
        assert trips
        assert min(trips) >= 2
        assert max(trips) <= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopSite(trip_min=0, trip_max=3)
        with pytest.raises(ValueError):
            LoopSite(trip_min=5, trip_max=4)


class TestAlternatingSite:
    def test_strict_alternation(self):
        site = AlternatingSite()
        traced, program = run_single_site(site, iterations=100)
        by_pc = {}
        for pc, taken in traced.trace:
            by_pc.setdefault(pc, []).append(taken)
        alternating = [
            seq
            for seq in by_pc.values()
            if len(seq) >= 100
            and all(a != b for a, b in zip(seq, seq[1:]))
            and len(set(seq)) == 2
        ]
        assert alternating, "no branch alternated strictly"


class TestWalkSite:
    def test_walk_executes_and_is_data_dependent(self):
        site = WalkSite(array_words=64, stride=3, threshold=512)
        traced, program = run_single_site(site, iterations=400)
        assert traced.stats.halted
        assert traced.stats.branches > 400  # walk emits >= 2 branches/visit

    def test_validation(self):
        with pytest.raises(ValueError):
            WalkSite(array_words=0, stride=1, threshold=10)
        with pytest.raises(ValueError):
            WalkSite(array_words=8, stride=0, threshold=10)


class TestSwitchSite:
    def test_dispatch_reaches_every_case(self):
        from repro.workloads.sites import SwitchSite

        site = SwitchSite(cases=4, field_shift=14)
        traced, program = run_single_site(site, iterations=300)
        assert traced.stats.halted
        # each case body holds one conditional branch; with 300 visits
        # all four case branches should appear in the trace
        assert len(set(traced.trace.pcs)) >= 5  # 4 case branches + loop

    def test_wrong_path_dispatch_is_survivable(self):
        """A speculative pipeline fetching through the jr with stale
        registers must still commit the exact functional stream."""
        from repro.isa import Machine
        from repro.pipeline import PipelineSimulator
        from repro.predictors import GsharePredictor
        from repro.workloads.sites import BiasedSite, SwitchSite

        profile = WorkloadProfile(
            name="swpipe",
            description="switch after a hard branch",
            sites=(
                BiasedSite(threshold=512, field_shift=13),
                SwitchSite(cases=8, field_shift=16),
            ),
            default_iterations=120,
        )
        program = generate_program(profile)
        result = PipelineSimulator(program, GsharePredictor()).run()
        golden = Machine(program)
        golden.run()
        assert result.stats.committed_instructions == golden.instructions_retired

    def test_validation(self):
        from repro.workloads.sites import SwitchSite

        with pytest.raises(ValueError):
            SwitchSite(cases=3)
        with pytest.raises(ValueError):
            SwitchSite(cases=32)
        with pytest.raises(ValueError):
            SwitchSite(cases=4, field_shift=2)

    def test_data_words(self):
        from repro.workloads.sites import SwitchSite

        assert SwitchSite(cases=8).data_words() == 8
