"""Tests for misprediction-distance curves on synthetic records."""

import pytest

from repro.analysis import (
    perceived_distance_curve,
    precise_distance_curve,
    render_curves,
)
from repro.analysis.distance import _curve_from_pairs
from repro.pipeline.records import BranchRecord


def record(
    sequence,
    mispredicted=False,
    committed=True,
    precise=0,
    perceived=0,
):
    return BranchRecord(
        sequence=sequence,
        pc=sequence,
        predicted_taken=True,
        actual_taken=not mispredicted,
        fetch_cycle=sequence,
        resolve_cycle=sequence + 3 if committed else None,
        committed=committed,
        precise_distance=precise,
        perceived_distance=perceived,
        wrong_path=not committed,
        assessments={},
    )


class TestCurveFromPairs:
    def test_bucketing_and_rates(self):
        pairs = [(0, True), (0, False), (1, False), (5, True)]
        curve = _curve_from_pairs(pairs, "t", max_distance=3)
        assert curve.buckets[0].branches == 2
        assert curve.buckets[0].misprediction_rate == pytest.approx(0.5)
        assert curve.buckets[3].branches == 1  # tail bucket absorbs d=5
        assert curve.total_branches == 4
        assert curve.average_rate == pytest.approx(0.5)

    def test_clustering_ratio(self):
        pairs = [(0, True)] * 6 + [(5, False)] * 54 + [(5, True)] * 6
        curve = _curve_from_pairs(pairs, "t", max_distance=8)
        assert curve.clustering_ratio > 1.0

    def test_rate_at_clamps_to_tail(self):
        curve = _curve_from_pairs([(9, True)], "t", max_distance=3)
        assert curve.rate_at(99) == pytest.approx(1.0)


class TestPreciseCurve:
    def test_all_population_uses_recorded_distances(self):
        records = [
            record(0, mispredicted=True, precise=4),
            record(1, precise=0),
            record(2, precise=1, committed=False),
        ]
        curve = precise_distance_curve(records, population="all", max_distance=5)
        assert curve.total_branches == 3
        assert curve.buckets[4].mispredictions == 1

    def test_committed_population_recounts(self):
        # committed stream: M . . M  -> distances 0(any), 0, 1, 2
        records = [
            record(0, mispredicted=True, precise=7),
            record(1, committed=False, precise=0),  # wrong path, skipped
            record(2, precise=0),
            record(3, precise=1),
            record(4, mispredicted=True, precise=2),
        ]
        curve = precise_distance_curve(records, population="committed", max_distance=5)
        assert curve.total_branches == 4
        # the second misprediction happened at recounted distance 2
        assert curve.buckets[2].mispredictions == 1

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            precise_distance_curve([], population="bogus")


class TestPerceivedCurve:
    def test_filters_committed(self):
        records = [
            record(0, perceived=3),
            record(1, committed=False, perceived=4),
        ]
        all_curve = perceived_distance_curve(records, population="all")
        committed_curve = perceived_distance_curve(records, population="committed")
        assert all_curve.total_branches == 2
        assert committed_curve.total_branches == 1

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            perceived_distance_curve([], population="bogus")


class TestRendering:
    def test_render_curves_output(self):
        curve = _curve_from_pairs([(0, True), (1, False)], "demo", max_distance=2)
        text = render_curves([curve])
        assert "demo" in text
        assert "avg" in text

    def test_render_empty(self):
        assert render_curves([]) == ""


class TestDistancePdf:
    def test_pdf_sums_to_one(self):
        from repro.analysis import distance_pdf

        curve = _curve_from_pairs(
            [(0, True), (1, True), (5, True), (2, False)], "t", max_distance=6
        )
        pdf = distance_pdf(curve)
        assert sum(pdf) == pytest.approx(1.0)
        assert pdf[0] == pytest.approx(1 / 3)

    def test_pdf_empty(self):
        from repro.analysis import distance_pdf

        curve = _curve_from_pairs([(0, False)], "t", max_distance=3)
        assert distance_pdf(curve) == [0.0, 0.0, 0.0, 0.0]

    def test_geometric_reference_sums_to_one(self):
        from repro.analysis import geometric_reference_pdf

        curve = _curve_from_pairs(
            [(d % 7, d % 5 == 0) for d in range(200)], "t", max_distance=10
        )
        reference = geometric_reference_pdf(curve)
        assert sum(reference) == pytest.approx(1.0)
        # geometric: strictly decreasing over the non-tail buckets
        body = reference[:-1]
        assert all(b < a for a, b in zip(body, body[1:]))

    def test_divergence_zero_for_geometric_stream(self):
        """An independent Bernoulli stream shows ~no clustering."""
        import random

        from repro.analysis import clustering_divergence

        rng = random.Random(5)
        pairs = []
        distance = 0
        for __ in range(50_000):
            mispredicted = rng.random() < 0.2
            pairs.append((distance, mispredicted))
            distance = 0 if mispredicted else distance + 1
        curve = _curve_from_pairs(pairs, "iid", max_distance=15)
        assert clustering_divergence(curve) < 0.03

    def test_divergence_positive_for_clustered_stream(self):
        """Back-to-back misprediction bursts diverge from geometric."""
        import random

        from repro.analysis import clustering_divergence

        rng = random.Random(6)
        pairs = []
        distance = 0
        bursting = False
        for __ in range(50_000):
            if bursting:
                mispredicted = rng.random() < 0.6
                bursting = mispredicted
            else:
                mispredicted = rng.random() < 0.05
                bursting = mispredicted
            pairs.append((distance, mispredicted))
            distance = 0 if mispredicted else distance + 1
        curve = _curve_from_pairs(pairs, "bursty", max_distance=15)
        assert clustering_divergence(curve) > 0.15
