"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblyError, Opcode, assemble


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("halt")
        assert len(program) == 1
        assert program.instructions[0].opcode is Opcode.HALT

    def test_alu_rrr(self):
        program = assemble("add r1, r2, r3")
        inst = program.instructions[0]
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 2, 3)

    def test_alu_rri_negative_immediate(self):
        program = assemble("addi r1, r1, -1")
        assert program.instructions[0].imm == -1

    def test_hex_immediate(self):
        program = assemble("li r1, 0xFF")
        assert program.instructions[0].imm == 255

    def test_memory_operands(self):
        program = assemble("lw r1, 8(r2)\nsw r3, -4(r4)")
        load, store = program.instructions
        assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (3, 4, -4)

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            ; leading comment
            add r1, r0, r0   # trailing comment
            halt
            """
        )
        assert len(program) == 2


class TestLabels:
    def test_branch_to_label(self):
        program = assemble(
            """
            start: addi r1, r1, 1
                   bne r1, r0, start
                   halt
            """
        )
        branch = program.instructions[1]
        assert branch.imm == 0
        assert branch.target_label == "start"

    def test_forward_reference(self):
        program = assemble(
            """
            beq r0, r0, done
            addi r1, r1, 1
            done: halt
            """
        )
        assert program.instructions[0].imm == 2

    def test_label_on_own_line(self):
        program = assemble("loop:\n  j loop\n  halt")
        assert program.labels["loop"] == 0

    def test_entry_is_start_label(self):
        program = assemble("nop\nstart: halt")
        assert program.entry == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a: nop\na: halt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("j nowhere")

    def test_numeric_branch_target(self):
        program = assemble("beq r0, r0, 5\nhalt")
        assert program.instructions[0].imm == 5


class TestDataSegment:
    def test_word_directive(self):
        program = assemble(
            """
            .data
            table: .word 1, 2, 3
            .text
            halt
            """
        )
        assert program.data == {0: 1, 1: 2, 2: 3}
        assert program.labels["table"] == 0

    def test_space_directive(self):
        program = assemble(
            """
            .data
            a: .word 7
            b: .space 10
            c: .word 9
            .text
            halt
            """
        )
        assert program.labels["b"] == 1
        assert program.labels["c"] == 11
        assert program.data[11] == 9

    def test_la_pseudo_op(self):
        program = assemble(
            """
            .data
            pad: .space 3
            buf: .word 0
            .text
            start: la r1, buf
            halt
            """
        )
        assert program.instructions[0].opcode is Opcode.ADDI
        assert program.instructions[0].imm == 3

    def test_negative_word_wraps(self):
        program = assemble(".data\nx: .word -1\n.text\nhalt")
        assert program.data[0] == 0xFFFFFFFF

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblyError, match="outside"):
            assemble(".word 1\nhalt")

    def test_code_in_data_segment_rejected(self):
        with pytest.raises(AssemblyError, match="outside .text"):
            assemble(".data\nadd r1, r2, r3")


class TestPseudoOps:
    def test_li(self):
        inst = assemble("li r5, 42").instructions[0]
        assert inst.opcode is Opcode.ADDI
        assert (inst.rd, inst.rs1, inst.imm) == (5, 0, 42)

    def test_mv(self):
        inst = assemble("mv r5, r6").instructions[0]
        assert inst.opcode is Opcode.ADD
        assert (inst.rd, inst.rs1, inst.rs2) == (5, 6, 0)

    def test_jal_writes_link(self):
        inst = assemble("f: jal f").instructions[0]
        assert inst.rd == 31


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects 3"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="register"):
            assemble("add r1, r2, r99")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="offset"):
            assemble("lw r1, r2")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="directive"):
            assemble(".bogus 1")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nbogus r1")

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            assemble("; nothing but a comment")


class TestListing:
    def test_listing_mentions_labels_and_pcs(self):
        program = assemble("start: addi r1, r0, 1\nloop: bne r1, r0, loop\nhalt")
        listing = program.listing()
        assert "start:" in listing
        assert "loop:" in listing
        assert "bne" in listing

    def test_listing_limit(self):
        program = assemble("\n".join(["nop"] * 10 + ["halt"]))
        assert "more" in program.listing(limit=3)
