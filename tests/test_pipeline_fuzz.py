"""Property-based fuzzing of the speculative pipeline.

Hypothesis composes random workload profiles (arbitrary mixes of site
kinds, seeds and layouts) and random pipeline geometries; for every
sample the three executions of the same program must agree:

* pure functional machine (golden),
* fast tracer,
* speculative pipeline's committed stream,

for any predictor, any estimator attachment, and any (valid) pipeline
configuration.  This is the strongest correctness net in the suite: a
bug in squash/rollback, journal handling, history repair or fetch
gating shows up as an architectural-state divergence here.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import JRSEstimator, MispredictionDistanceEstimator
from repro.engine import trace_branches
from repro.isa import Machine
from repro.pipeline import CacheConfig, PipelineConfig, PipelineSimulator
from repro.predictors import make_predictor
from repro.speculation import EagerPipelineSimulator
from repro.workloads.generator import GuardSpec, WorkloadProfile, generate_program
from repro.workloads.sites import (
    AlternatingSite,
    BiasedSite,
    CorrelatedSite,
    LoopSite,
    PatternSite,
    WalkSite,
)


@st.composite
def branch_sites(draw):
    kind = draw(st.integers(min_value=0, max_value=5))
    shift = draw(st.integers(min_value=12, max_value=21))
    threshold = draw(st.integers(min_value=0, max_value=1024))
    if kind == 0:
        return BiasedSite(
            threshold=threshold,
            field_shift=shift,
            advance_lcg=draw(st.booleans()),
        )
    if kind == 1:
        return CorrelatedSite(threshold=threshold, field_shift=shift)
    if kind == 2:
        length = draw(st.integers(min_value=1, max_value=6))
        bits = tuple(draw(st.integers(min_value=0, max_value=1)) for __ in range(length))
        if all(bit == bits[0] for bit in bits):
            bits = bits + (1 - bits[0],)
        return PatternSite(pattern=bits)
    if kind == 3:
        trip_min = draw(st.integers(min_value=1, max_value=5))
        trip_max = trip_min + draw(st.integers(min_value=0, max_value=5))
        return LoopSite(trip_min=trip_min, trip_max=trip_max, field_shift=shift)
    if kind == 4:
        return AlternatingSite()
    return WalkSite(
        array_words=draw(st.integers(min_value=1, max_value=64)),
        stride=draw(st.integers(min_value=1, max_value=7)),
        threshold=threshold,
    )


@st.composite
def workload_profiles(draw):
    sites = tuple(draw(st.lists(branch_sites(), min_size=1, max_size=10)))
    guards = {}
    for index in range(len(sites)):
        if draw(st.booleans()) and draw(st.booleans()):  # ~25% guarded
            guards[index] = GuardSpec(
                field_shift=draw(st.integers(min_value=12, max_value=21)),
                threshold=draw(st.integers(min_value=0, max_value=1024)),
            )
    return WorkloadProfile(
        name="fuzz",
        description="hypothesis-composed profile",
        sites=sites,
        guards=guards,
        subroutine_group=draw(st.sampled_from((0, 0, 3))),
        lcg_seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        data_seed=draw(st.integers(min_value=0, max_value=2**16)),
        default_iterations=draw(st.integers(min_value=1, max_value=25)),
    )


@st.composite
def pipeline_configs(draw):
    fetch_width = draw(st.integers(min_value=1, max_value=8))
    return PipelineConfig(
        fetch_width=fetch_width,
        commit_width=draw(st.integers(min_value=1, max_value=8)),
        window=max(fetch_width, draw(st.sampled_from((8, 16, 64)))),
        resolve_stage=draw(st.integers(min_value=1, max_value=12)),
        mispredict_penalty=draw(st.integers(min_value=0, max_value=8)),
        icache=CacheConfig(size_words=1024, line_words=8, associativity=2),
        dcache=CacheConfig(size_words=512, line_words=4, associativity=2),
    )


@settings(max_examples=25, deadline=None)
@given(workload_profiles())
def test_tracer_equals_machine_on_random_programs(profile):
    program = generate_program(profile)
    machine = Machine(program)
    golden = []
    while not machine.halted:
        result = machine.step()
        if result.taken is not None:
            golden.append((result.pc, result.taken))
    traced = trace_branches(program)
    assert list(traced.trace) == golden
    assert traced.stats.instructions == machine.instructions_retired


@settings(max_examples=20, deadline=None)
@given(
    workload_profiles(),
    pipeline_configs(),
    st.sampled_from(("gshare", "mcfarling", "sag", "bimodal")),
)
def test_pipeline_equals_machine_on_random_programs(profile, config, predictor_name):
    program = generate_program(profile)
    predictor = make_predictor(predictor_name)
    simulator = PipelineSimulator(
        program,
        predictor,
        config=config,
        estimators={
            "jrs": JRSEstimator(table_size=256, threshold=7),
            "dist": MispredictionDistanceEstimator(3),
        },
    )
    result = simulator.run()
    golden = Machine(program)
    golden.run()
    assert simulator.machine.halted
    assert simulator.machine.regs == golden.regs
    assert simulator.machine.memory == golden.memory
    assert result.stats.committed_instructions == golden.instructions_retired
    # every record is consistent
    for record in result.branch_records:
        assert (record.resolve_cycle is not None) == record.committed


@settings(max_examples=20, deadline=None)
@given(
    workload_profiles(),
    pipeline_configs(),
    st.sampled_from(("gshare", "mcfarling", "sag")),
    st.booleans(),
    st.sampled_from((None, 7, 60, 500)),
)
def test_fast_engine_equals_reference_engine(
    profile, config, predictor_name, with_estimators, budget
):
    """Fast/slow byte identity under fuzzed programs and geometries.

    Covers early stops (``budget``), misprediction recovery (random
    predictors on random branch mixes) and cache-miss congestion (the
    tiny fuzz cache geometries miss constantly), with and without
    estimators attached -- the full cross product the golden CI report
    legs only sample.
    """
    program = generate_program(profile)
    runs = []
    for fast in (False, True):
        estimators = (
            {"jrs": JRSEstimator(table_size=256, threshold=7)}
            if with_estimators
            else {}
        )
        simulator = PipelineSimulator(
            program,
            make_predictor(predictor_name),
            config=config,
            estimators=estimators,
            fast=fast,
        )
        runs.append((simulator, simulator.run(max_instructions=budget)))
    (slow_sim, slow), (fast_sim, fast) = runs
    assert dataclasses.asdict(slow.stats) == dataclasses.asdict(fast.stats)
    assert slow_sim.machine.regs == fast_sim.machine.regs
    assert slow_sim.machine.memory == fast_sim.machine.memory
    assert slow_sim.machine.pc == fast_sim.machine.pc
    for side in ("icache", "dcache"):
        slow_cache = getattr(slow_sim, side)
        fast_cache = getattr(fast_sim, side)
        assert (slow_cache.hits, slow_cache.misses) == (
            fast_cache.hits,
            fast_cache.misses,
        )
    slow_records = slow.branch_records
    fast_records = fast.branch_records
    assert len(slow_records) == len(fast_records)
    for left, right in zip(slow_records, fast_records):
        assert (
            left.pc,
            left.predicted_taken,
            left.actual_taken,
            left.fetch_cycle,
            left.resolve_cycle,
            left.committed,
            left.precise_distance,
            left.perceived_distance,
            left.wrong_path,
            left.assessments,
        ) == (
            right.pc,
            right.predicted_taken,
            right.actual_taken,
            right.fetch_cycle,
            right.resolve_cycle,
            right.committed,
            right.precise_distance,
            right.perceived_distance,
            right.wrong_path,
            right.assessments,
        )
    if budget is not None:
        # the commit stage never overshoots the instruction budget
        assert fast.stats.committed_instructions <= budget


@settings(max_examples=15, deadline=None)
@given(workload_profiles(), pipeline_configs())
def test_dualpath_equals_machine_on_random_programs(profile, config):
    program = generate_program(profile)
    predictor = make_predictor("gshare")
    simulator = EagerPipelineSimulator(
        program,
        predictor,
        config=config,
        estimators={"fork": JRSEstimator(table_size=256, threshold=12)},
        fork_on="fork",
    )
    result = simulator.run()
    golden = Machine(program)
    golden.run()
    assert simulator.machine.regs == golden.regs
    assert simulator.machine.memory == golden.memory
    assert result.stats.committed_instructions == golden.instructions_retired
