"""Behavioural tests for every confidence estimator."""

import pytest

from repro.confidence import (
    Assessment,
    JRSEstimator,
    McFarlingVariant,
    MispredictionDistanceEstimator,
    PatternHistoryEstimator,
    SaturatingCountersEstimator,
    StaticEstimator,
    lick_confident_patterns,
    profile_confident_sites,
    profile_site_accuracy,
)
from repro.predictors import GsharePredictor, SAgPredictor
from repro.predictors.base import Prediction


def prediction(taken=True, history=0, counters=(3,), index=0):
    return Prediction(
        taken=taken, index=index, history=history, counters=counters, snapshot=history
    )


class TestJRS:
    def test_counts_up_to_threshold(self):
        estimator = JRSEstimator(table_size=16, threshold=3, enhanced=False)
        pred = prediction(history=0)
        for expected_high, __ in zip((False, False, False, True, True), range(5)):
            assessment = estimator.estimate(4, pred)
            assert assessment.high_confidence == expected_high
            estimator.resolve(4, pred, True, assessment)  # correct

    def test_misprediction_resets(self):
        estimator = JRSEstimator(table_size=16, threshold=2, enhanced=False)
        pred = prediction(taken=True)
        for __ in range(5):
            assessment = estimator.estimate(4, pred)
            estimator.resolve(4, pred, True, assessment)
        assert estimator.estimate(4, pred).high_confidence
        assessment = estimator.estimate(4, pred)
        estimator.resolve(4, pred, False, assessment)  # mispredicted -> reset
        assert not estimator.estimate(4, pred).high_confidence

    def test_counters_saturate(self):
        estimator = JRSEstimator(table_size=16, counter_bits=4, threshold=15)
        pred = prediction()
        for __ in range(30):
            assessment = estimator.estimate(4, pred)
            estimator.resolve(4, pred, True, assessment)
        assert max(estimator.table.values) == 15

    def test_enhanced_index_separates_directions(self):
        estimator = JRSEstimator(table_size=16, threshold=1, enhanced=True)
        taken_pred = prediction(taken=True)
        not_taken_pred = prediction(taken=False)
        assessment = estimator.estimate(4, taken_pred)
        estimator.resolve(4, taken_pred, True, assessment)
        # the taken-direction counter trained; the not-taken one did not
        assert estimator.estimate(4, taken_pred).high_confidence
        assert not estimator.estimate(4, not_taken_pred).high_confidence

    def test_original_index_shares_directions(self):
        estimator = JRSEstimator(table_size=16, threshold=1, enhanced=False)
        taken_pred = prediction(taken=True)
        not_taken_pred = prediction(taken=False)
        assessment = estimator.estimate(4, taken_pred)
        estimator.resolve(4, taken_pred, True, assessment)
        assert estimator.estimate(4, not_taken_pred).high_confidence

    def test_index_uses_history(self):
        estimator = JRSEstimator(table_size=16, threshold=1, enhanced=False)
        pred_a = prediction(history=0b0101)
        pred_b = prediction(history=0b1010)
        assessment = estimator.estimate(0, pred_a)
        estimator.resolve(0, pred_a, True, assessment)
        assert estimator.estimate(0, pred_a).high_confidence
        assert not estimator.estimate(0, pred_b).high_confidence

    def test_unreachable_threshold_marks_everything_low(self):
        estimator = JRSEstimator(table_size=16, counter_bits=4, threshold=16)
        pred = prediction()
        for __ in range(40):
            assessment = estimator.estimate(4, pred)
            assert not assessment.high_confidence
            estimator.resolve(4, pred, True, assessment)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            JRSEstimator(counter_bits=4, threshold=17)

    def test_reset(self):
        estimator = JRSEstimator(table_size=16, threshold=1)
        pred = prediction()
        assessment = estimator.estimate(4, pred)
        estimator.resolve(4, pred, True, assessment)
        estimator.reset()
        assert not estimator.estimate(4, pred).high_confidence


class TestSaturatingCounters:
    def test_single_counter_strong_states(self):
        estimator = SaturatingCountersEstimator(counter_bits=2)
        assert estimator.estimate(0, prediction(counters=(0,))).high_confidence
        assert estimator.estimate(0, prediction(counters=(3,))).high_confidence
        assert not estimator.estimate(0, prediction(counters=(1,))).high_confidence
        assert not estimator.estimate(0, prediction(counters=(2,))).high_confidence

    @pytest.mark.parametrize(
        "variant,counters,expected",
        [
            (McFarlingVariant.BOTH_STRONG, (3, 3, 0), True),
            (McFarlingVariant.BOTH_STRONG, (3, 2, 0), False),
            (McFarlingVariant.BOTH_STRONG, (1, 0, 0), False),
            (McFarlingVariant.EITHER_STRONG, (3, 1, 0), True),
            (McFarlingVariant.EITHER_STRONG, (1, 0, 0), True),
            (McFarlingVariant.EITHER_STRONG, (1, 2, 0), False),
            (McFarlingVariant.SELECTED, (3, 1, 3), True),  # meta -> gshare
            (McFarlingVariant.SELECTED, (3, 1, 0), False),  # meta -> bimodal
        ],
    )
    def test_mcfarling_variants(self, variant, counters, expected):
        estimator = SaturatingCountersEstimator(counter_bits=2, variant=variant)
        assessment = estimator.estimate(0, prediction(counters=counters))
        assert assessment.high_confidence == expected

    def test_for_predictor_matches_counter_bits(self):
        predictor = GsharePredictor(counter_bits=3)
        estimator = SaturatingCountersEstimator.for_predictor(predictor)
        assert estimator.counter_bits == 3


class TestPatternHistory:
    def test_lick_pattern_set_contents(self):
        patterns = lick_confident_patterns(4)
        assert 0b0000 in patterns and 0b1111 in patterns  # always
        assert 0b1110 in patterns and 0b0111 in patterns  # once NT
        assert 0b0001 in patterns and 0b1000 in patterns  # once T
        assert 0b0101 in patterns and 0b1010 in patterns  # alternating
        assert 0b0011 not in patterns

    def test_pattern_count_grows_linearly(self):
        # 2 constants + 2n once-dissenting + 2 alternating (with overlap
        # for tiny widths); for n >= 3 this is exactly 2n + 4
        assert len(lick_confident_patterns(8)) == 20

    def test_estimate_matches_pattern(self):
        estimator = PatternHistoryEstimator(history_bits=4)
        assert estimator.estimate(0, prediction(history=0b1111)).high_confidence
        assert not estimator.estimate(0, prediction(history=0b0011)).high_confidence

    def test_for_predictor_uses_local_history_for_sag(self):
        estimator = PatternHistoryEstimator.for_predictor(SAgPredictor())
        assert estimator.history_bits == 13

    def test_for_predictor_uses_global_history_for_gshare(self):
        estimator = PatternHistoryEstimator.for_predictor(
            GsharePredictor(table_size=1024)
        )
        assert estimator.history_bits == 10

    def test_for_predictor_rejects_historyless(self):
        from repro.predictors import BimodalPredictor

        with pytest.raises(TypeError):
            PatternHistoryEstimator.for_predictor(BimodalPredictor())

    def test_validation(self):
        with pytest.raises(ValueError):
            lick_confident_patterns(0)


class TestStatic:
    def test_profiling_counts(self):
        trace = [(1, True)] * 9 + [(1, False)] + [(2, True), (2, False)]
        counts = profile_site_accuracy(trace, GsharePredictor(table_size=64))
        assert counts[1][1] == 10
        assert counts[2][1] == 2

    def test_threshold_selects_sites(self):
        # site 1 is perfectly biased, site 2 is a coin flip
        import random

        rng = random.Random(11)
        trace = []
        for __ in range(300):
            trace.append((1, True))
            trace.append((2, rng.random() < 0.5))
        sites = profile_confident_sites(trace, GsharePredictor(table_size=64), 0.90)
        assert 1 in sites
        assert 2 not in sites

    def test_estimator_uses_hint_bits(self):
        estimator = StaticEstimator({10, 20}, threshold=0.9)
        assert estimator.estimate(10, prediction()).high_confidence
        assert not estimator.estimate(11, prediction()).high_confidence

    def test_from_profile(self):
        trace = [(1, True)] * 400
        estimator = StaticEstimator.from_profile(
            trace, GsharePredictor(table_size=64)
        )
        assert estimator.estimate(1, prediction()).high_confidence

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            profile_confident_sites([], GsharePredictor(table_size=64), 1.5)


class TestDistance:
    def test_high_confidence_after_enough_distance(self):
        estimator = MispredictionDistanceEstimator(distance_threshold=2)
        pred = prediction(taken=True)
        flags = []
        for __ in range(5):
            assessment = estimator.estimate(0, pred)
            flags.append(assessment.high_confidence)
            estimator.resolve(0, pred, True, assessment)
        assert flags == [False, False, False, True, True]

    def test_reset_on_detected_misprediction(self):
        estimator = MispredictionDistanceEstimator(distance_threshold=1)
        pred = prediction(taken=True)
        for __ in range(4):
            assessment = estimator.estimate(0, pred)
            estimator.resolve(0, pred, True, assessment)
        assert estimator.estimate(0, pred).high_confidence
        assessment = estimator.estimate(0, pred)
        estimator.resolve(0, pred, False, assessment)  # misprediction detected
        assert not estimator.estimate(0, pred).high_confidence

    def test_counter_advances_at_estimate_time(self):
        estimator = MispredictionDistanceEstimator(distance_threshold=0)
        pred = prediction()
        first = estimator.estimate(0, pred)
        second = estimator.estimate(1, pred)
        assert not first.high_confidence  # distance 0 is not > 0
        assert second.high_confidence

    def test_validation(self):
        with pytest.raises(ValueError):
            MispredictionDistanceEstimator(distance_threshold=-1)

    def test_reset(self):
        estimator = MispredictionDistanceEstimator(distance_threshold=0)
        estimator.estimate(0, prediction())
        estimator.reset()
        assert estimator.branches_since_misprediction == 0


class TestAssessment:
    def test_repr(self):
        assert "HC" in repr(Assessment(True))
        assert "LC" in repr(Assessment(False))
