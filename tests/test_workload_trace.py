"""Tests for the branch-trace container and file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import BranchTrace, convert_text_trace


def make_trace(records):
    return BranchTrace.from_records(records, name="t")


class TestBranchTrace:
    def test_from_records_and_iteration(self):
        trace = make_trace([(10, True), (20, False), (10, True)])
        assert len(trace) == 3
        assert list(trace) == [(10, True), (20, False), (10, True)]

    def test_indexing(self):
        trace = make_trace([(5, False), (6, True)])
        assert trace[1] == (6, True)

    def test_taken_statistics(self):
        trace = make_trace([(1, True), (2, False), (3, True), (4, True)])
        assert trace.taken_count == 3
        assert trace.taken_rate == pytest.approx(0.75)

    def test_static_sites(self):
        trace = make_trace([(9, True), (3, False), (9, False)])
        assert trace.static_sites() == [3, 9]

    def test_empty_trace(self):
        trace = BranchTrace.empty()
        assert len(trace) == 0
        assert trace.taken_rate == 0.0

    def test_length_mismatch_rejected(self):
        from array import array

        with pytest.raises(ValueError):
            BranchTrace(pcs=array("L", [1, 2]), outcomes=bytearray([1]))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = make_trace([(100, True), (200, False)] * 50)
        path = str(tmp_path / "trace.rbt")
        trace.save(path)
        loaded = BranchTrace.load(path)
        assert list(loaded) == list(trace)

    def test_gzip_roundtrip(self, tmp_path):
        trace = make_trace([(7, True)] * 10)
        path = str(tmp_path / "trace.rbt.gz")
        trace.save(path)
        assert list(BranchTrace.load(path)) == list(trace)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rbt"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="magic"):
            BranchTrace.load(str(path))

    def test_truncated_file_rejected(self, tmp_path):
        trace = make_trace([(1, True)] * 100)
        path = tmp_path / "trace.rbt"
        trace.save(str(path))
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(ValueError, match="truncated"):
            BranchTrace.load(str(path))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1), st.booleans()
            ),
            max_size=200,
        )
    )
    def test_roundtrip_property(self, records):
        import os
        import tempfile

        trace = make_trace(records)
        fd, path = tempfile.mkstemp(suffix=".rbt")
        os.close(fd)
        try:
            trace.save(path)
            assert list(BranchTrace.load(path)) == records
        finally:
            os.unlink(path)


class TestConversion:
    def test_convert_text_trace(self):
        lines = [
            "# a converted trace",
            "0x10 T",
            "17 N",
            "",
            "18 1  # taken",
            "19 0",
        ]
        trace = convert_text_trace(lines)
        assert list(trace) == [(16, True), (17, False), (18, True), (19, False)]

    def test_bad_outcome_rejected(self):
        with pytest.raises(ValueError, match="outcome"):
            convert_text_trace(["5 X"])

    def test_bad_field_count_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            convert_text_trace(["5 T T"])
