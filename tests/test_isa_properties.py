"""Property-based tests on the ISA layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Machine, Opcode, assemble, branch_taken, evaluate_alu
from repro.isa.instructions import WORD_MASK, to_signed, to_unsigned

words = st.integers(min_value=0, max_value=WORD_MASK)

ALU_OPCODES = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SLL,
    Opcode.SRL,
    Opcode.SRA,
    Opcode.SLT,
    Opcode.SLTU,
]


@given(words)
def test_signed_unsigned_roundtrip(value):
    assert to_unsigned(to_signed(value)) == value


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_unsigned_signed_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


@given(st.sampled_from(ALU_OPCODES), words, words)
def test_alu_results_stay_in_word_range(opcode, a, b):
    result = evaluate_alu(opcode, a, b)
    assert 0 <= result <= WORD_MASK


@given(words, words)
def test_add_sub_are_inverse(a, b):
    total = evaluate_alu(Opcode.ADD, a, b)
    assert evaluate_alu(Opcode.SUB, total, b) == a


@given(words, words)
def test_xor_is_self_inverse(a, b):
    mixed = evaluate_alu(Opcode.XOR, a, b)
    assert evaluate_alu(Opcode.XOR, mixed, b) == a


@given(words, words)
def test_beq_bne_partition(a, b):
    assert branch_taken(Opcode.BEQ, a, b) != branch_taken(Opcode.BNE, a, b)


@given(words, words)
def test_blt_bge_partition(a, b):
    assert branch_taken(Opcode.BLT, a, b) != branch_taken(Opcode.BGE, a, b)


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=6))
@settings(max_examples=30, deadline=None)
def test_snapshot_restore_is_identity(steps_before, steps_after):
    """Running further then restoring always recovers the exact state."""
    source = "\n".join(
        ["start: li r1, 0", "li r2, 1"]
        + ["loop: add r1, r1, r2", "sw r1, 100(r1)", "addi r2, r2, 3", "j loop"]
    )
    machine = Machine(assemble(source))
    for __ in range(steps_before):
        machine.step()
    regs = list(machine.regs)
    memory = dict(machine.memory)
    pc = machine.pc
    snap = machine.snapshot()
    for __ in range(steps_after):
        machine.step()
    machine.restore(snap)
    assert machine.regs == regs
    assert machine.memory == memory
    assert machine.pc == pc


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),
            st.integers(min_value=-1000, max_value=1000),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_assembler_preserves_immediate_sequences(pairs):
    """Assembling a generated li sequence reproduces operands exactly."""
    source = "\n".join(f"li r{reg}, {imm}" for reg, imm in pairs) + "\nhalt"
    program = assemble(source)
    for (reg, imm), inst in zip(pairs, program.instructions):
        assert inst.rd == reg
        assert inst.imm == imm
