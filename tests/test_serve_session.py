"""Incremental estimator sessions: exact batch equivalence, snapshots,
redelivery dedupe, window metrics, and the consistent hash ring."""

import pytest

from repro.serve.load import batch_reference, results_equal
from repro.serve.ring import HashRing
from repro.serve.session import (
    SESSION_SCHEMA,
    EstimatorSession,
    SessionError,
    SessionSnapshotError,
    capture_session,
    restore_session,
    session_families,
)

ITERATIONS = 60
FAMILIES = ("jrs", "satcnt", "static")


def _batches(workload, batch):
    from repro.serve.load import _batches as chunk

    return chunk(workload, ITERATIONS, batch)


def _stream(session, batches, start_seq=1):
    windows = []
    for offset, (pcs, taken) in enumerate(batches):
        windows.extend(session.apply(start_seq + offset, pcs, taken))
    return windows


class TestBatchEquivalence:
    def test_streamed_result_equals_measure_bank(self):
        """The serving correctness contract: any batch split of the
        stream lands on the exact batch-mode quadrant counts."""
        reference = batch_reference("compress", "gshare", FAMILIES, ITERATIONS)
        for batch in (257, 512, 4096):
            session = EstimatorSession(
                f"eq-{batch}", "compress", "gshare", FAMILIES, ITERATIONS
            )
            _stream(session, _batches("compress", batch))
            assert results_equal(session.result(), reference), (
                f"batch split {batch} diverged from measure_bank"
            )

    def test_all_bank_families_supported(self):
        families = list(session_families())
        session = EstimatorSession(
            "all", "compress", "gshare", families, ITERATIONS
        )
        _stream(session, _batches("compress", 1024))
        result = session.result()
        # "accuracy" is predictor-only (no estimator, no quadrants)
        assert sorted(result["quadrants"]) == sorted(
            f for f in families if f != "accuracy"
        )
        reference = batch_reference("compress", "gshare", families, ITERATIONS)
        assert results_equal(result, reference)


class TestStreamDiscipline:
    def _session(self, window=64):
        return EstimatorSession(
            "s", "compress", "gshare", FAMILIES, ITERATIONS, window=window
        )

    def test_redelivered_batch_is_skipped(self):
        session = self._session()
        pcs, taken = _batches("compress", 128)[0]
        session.apply(1, pcs, taken)
        branches = session.branches
        assert session.apply(1, pcs, taken) == []  # dedupe, no re-count
        assert session.branches == branches
        assert session.applied_seq == 1

    def test_seq_gap_is_a_session_error(self):
        session = self._session()
        pcs, taken = _batches("compress", 128)[0]
        session.apply(1, pcs, taken)
        with pytest.raises(SessionError, match="out of order"):
            session.apply(3, pcs, taken)

    def test_length_mismatch_rejected(self):
        with pytest.raises(SessionError, match="length mismatch"):
            self._session().apply(1, [1, 2, 3], [1, 0])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SessionError, match="unknown workload"):
            EstimatorSession("s", "nope", "gshare", FAMILIES)

    def test_unknown_family_rejected(self):
        with pytest.raises(SessionError, match="unknown estimator"):
            EstimatorSession("s", "compress", "gshare", ["jrs", "wat"])

    def test_unknown_predictor_rejected(self):
        with pytest.raises(SessionError):
            EstimatorSession("s", "compress", "oracle-9000", FAMILIES)

    def test_non_positive_window_rejected(self):
        with pytest.raises(SessionError, match="window"):
            EstimatorSession(
                "s", "compress", "gshare", FAMILIES, window=0
            )

    def test_window_messages_shape_and_cadence(self):
        window = 64
        session = self._session(window=window)
        windows = _stream(session, _batches("compress", 256))
        total = session.branches
        assert len(windows) == total // window
        assert session.windows_emitted == len(windows)
        first = windows[0]
        assert first["type"] == "window"
        assert first["start"] == 0
        assert first["branches"] == window
        for family in FAMILIES:
            metrics = first["metrics"][family]
            assert set(metrics) == {"sens", "pvp", "spec", "pvn", "lc_fraction"}
            assert isinstance(first["gate"][family], bool)
        # windows tile the stream with no gaps or overlaps
        starts = [w["start"] for w in windows]
        assert starts == list(range(0, len(windows) * window, window))

    def test_gate_threshold_flips_decision(self):
        """gate = (low-confidence fraction >= threshold); at threshold 0
        every window gates, at threshold > 1 none do."""
        always = EstimatorSession(
            "always", "compress", "gshare", ("jrs",), ITERATIONS,
            window=64, gate_threshold=0.0,
        )
        never = EstimatorSession(
            "never", "compress", "gshare", ("jrs",), ITERATIONS,
            window=64, gate_threshold=1.1,
        )
        batches = _batches("compress", 512)
        for windows, expected in (
            (_stream(always, batches), True),
            (_stream(never, batches), False),
        ):
            assert windows
            assert all(w["gate"]["jrs"] is expected for w in windows)


class TestSnapshots:
    def test_restore_resumes_exactly(self):
        """Snapshot mid-stream, restore in a 'different worker', replay
        the tail: final counts equal the uninterrupted run."""
        batches = _batches("compress", 512)
        split = len(batches) // 2

        original = EstimatorSession(
            "snap", "compress", "gshare", FAMILIES, ITERATIONS
        )
        _stream(original, batches)

        resumed = EstimatorSession(
            "snap", "compress", "gshare", FAMILIES, ITERATIONS
        )
        _stream(resumed, batches[:split])
        snapshot = capture_session(resumed)
        assert snapshot.schema == SESSION_SCHEMA
        assert snapshot.applied_seq == split
        assert snapshot.branches == resumed.branches

        thawed = restore_session(snapshot)
        assert thawed.applied_seq == split
        _stream(thawed, batches[split:], start_seq=split + 1)
        assert results_equal(thawed.result(), original.result())

    def test_restore_then_redelivery_is_deduped(self):
        """Recovery replays conservatively; the restored session must
        skip batches the snapshot already contains."""
        batches = _batches("compress", 512)
        session = EstimatorSession(
            "redo", "compress", "gshare", ("jrs",), ITERATIONS
        )
        _stream(session, batches[:3])
        thawed = restore_session(capture_session(session))
        # replay everything from the start, as a naive recovery would
        _stream(thawed, batches)
        reference = EstimatorSession(
            "ref", "compress", "gshare", ("jrs",), ITERATIONS
        )
        _stream(reference, batches)
        assert results_equal(thawed.result(), reference.result())

    def test_schema_mismatch_refused(self):
        session = EstimatorSession(
            "s", "compress", "gshare", ("jrs",), ITERATIONS
        )
        snapshot = capture_session(session)
        stale = type(snapshot)(
            schema="serve-session/0",
            session_id=snapshot.session_id,
            applied_seq=snapshot.applied_seq,
            branches=snapshot.branches,
            payload=snapshot.payload,
        )
        with pytest.raises(SessionSnapshotError, match="schema"):
            restore_session(stale)

    def test_corrupt_payload_refused(self):
        session = EstimatorSession(
            "s", "compress", "gshare", ("jrs",), ITERATIONS
        )
        snapshot = capture_session(session)
        garbled = type(snapshot)(
            schema=snapshot.schema,
            session_id=snapshot.session_id,
            applied_seq=snapshot.applied_seq,
            branches=snapshot.branches,
            payload=b"\x00not a pickle\x00",
        )
        with pytest.raises(SessionSnapshotError, match="unreadable"):
            restore_session(garbled)

    def test_metadata_payload_disagreement_refused(self):
        session = EstimatorSession(
            "s", "compress", "gshare", ("jrs",), ITERATIONS
        )
        snapshot = capture_session(session)
        lying = type(snapshot)(
            schema=snapshot.schema,
            session_id=snapshot.session_id,
            applied_seq=snapshot.applied_seq + 5,
            branches=snapshot.branches,
            payload=snapshot.payload,
        )
        with pytest.raises(SessionSnapshotError, match="applied_seq"):
            restore_session(lying)


class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        ids = [f"session-{n}" for n in range(50)]
        first = [HashRing(4).lookup(sid) for sid in ids]
        second = [HashRing(4).lookup(sid) for sid in ids]
        assert first == second

    def test_lookup_in_range_and_all_slots_used(self):
        ring = HashRing(4)
        placed = ring.distribution([f"session-{n}" for n in range(200)])
        assert len(placed) == 4
        assert sum(placed) == 200
        assert all(count > 0 for count in placed)

    def test_single_slot_takes_everything(self):
        ring = HashRing(1)
        assert {ring.lookup(f"s{n}") for n in range(20)} == {0}

    def test_resize_moves_only_some_sessions(self):
        """Consistent hashing: growing the ring must not reshuffle the
        whole population."""
        ids = [f"session-{n}" for n in range(300)]
        small = HashRing(4)
        large = HashRing(5)
        moved = sum(
            1 for sid in ids if small.lookup(sid) != large.lookup(sid)
        )
        assert 0 < moved < len(ids) // 2
