"""Tests for tuned static confidence estimation (§5 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import tune_for_pvn, tune_for_spec
from repro.confidence.tuning import _build

#: A hand-auditable profile: pc -> (correct, total).
COUNTS = {
    1: (95, 100),  # 5% mispredict, big site
    2: (40, 100),  # 60% mispredict
    3: (80, 100),  # 20% mispredict
    4: (100, 100),  # perfect
    5: (10, 20),  # 50% mispredict, small site
}
TOTAL_INCORRECT = 5 + 60 + 20 + 0 + 10  # = 95


class TestTuneForSpec:
    def test_meets_target_on_training_data(self):
        for target in (0.2, 0.5, 0.8, 1.0):
            tuned = tune_for_spec(COUNTS, target)
            assert tuned.achieved_spec >= target - 1e-9

    def test_picks_worst_ratio_sites_first(self):
        tuned = tune_for_spec(COUNTS, 0.5)
        # site 2 has by far the best incorrect:correct ratio
        assert 2 in tuned.low_confidence_sites
        # the perfect site is never sacrificed
        assert 4 not in tuned.low_confidence_sites

    def test_zero_target_marks_nothing(self):
        tuned = tune_for_spec(COUNTS, 0.0)
        assert not tuned.low_confidence_sites
        assert tuned.achieved_sens == 1.0

    def test_full_target_covers_all_mispredictions(self):
        tuned = tune_for_spec(COUNTS, 1.0)
        assert tuned.achieved_spec == pytest.approx(1.0)
        # still leaves the perfect site high-confidence
        assert 4 not in tuned.low_confidence_sites

    def test_estimator_reflects_site_set(self):
        tuned = tune_for_spec(COUNTS, 0.5)
        from repro.predictors.base import Prediction

        pred = Prediction(True, 0, 0, (3,))
        for pc in COUNTS:
            expected_high = pc not in tuned.low_confidence_sites
            assert (
                tuned.estimator.estimate(pc, pred).high_confidence
                == expected_high
            )

    def test_target_validation(self):
        with pytest.raises(ValueError):
            tune_for_spec(COUNTS, 1.5)

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            tune_for_spec({1: (10, 5)}, 0.5)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_spec_monotone_in_target(self, target):
        lower = tune_for_spec(COUNTS, target / 2)
        higher = tune_for_spec(COUNTS, target)
        assert higher.achieved_spec >= lower.achieved_spec - 1e-9
        assert higher.achieved_sens <= lower.achieved_sens + 1e-9


class TestTuneForPvn:
    def test_meets_target_on_training_data(self):
        for target in (0.2, 0.4, 0.6):
            tuned = tune_for_pvn(COUNTS, target)
            if tuned.low_confidence_sites:
                assert tuned.achieved_pvn >= target - 1e-9

    def test_maximises_coverage_at_target(self):
        tuned = tune_for_pvn(COUNTS, 0.5)
        # site 2 alone: pvn 0.6; adding site 5 pools to 70/220... check:
        # sites ranked by rate: 2 (0.6), 5 (0.5), 3 (0.2), 1 (0.05), 4 (0)
        # prefix {2}: 60/100 = 0.60 >= 0.5 ok
        # prefix {2,5}: 70/120 = 0.583 >= 0.5 ok
        # prefix {2,5,3}: 90/220 = 0.409 < 0.5 stop
        assert tuned.low_confidence_sites == frozenset({2, 5})
        assert tuned.achieved_pvn == pytest.approx(70 / 120)

    def test_unreachable_target_marks_nothing(self):
        tuned = tune_for_pvn(COUNTS, 0.99)
        assert not tuned.low_confidence_sites

    def test_zero_target_marks_everything_with_branches(self):
        tuned = tune_for_pvn(COUNTS, 0.0)
        assert tuned.low_confidence_sites == frozenset(COUNTS)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            tune_for_pvn(COUNTS, -0.1)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.01, max_value=0.95))
    def test_coverage_monotone_decreasing_in_target(self, target):
        strict = tune_for_pvn(COUNTS, target)
        lax = tune_for_pvn(COUNTS, target / 2)
        assert strict.achieved_spec <= lax.achieved_spec + 1e-9


class TestBuild:
    def test_statistics_identities(self):
        tuned = _build(COUNTS, {2, 5})
        assert tuned.achieved_spec == pytest.approx(70 / 95)
        assert tuned.achieved_pvn == pytest.approx(70 / 120)
        assert tuned.achieved_sens == pytest.approx(
            (95 + 80 + 100) / (95 + 40 + 80 + 100 + 10)
        )
        assert tuned.coverage == tuned.achieved_spec


class TestEndToEnd:
    def test_tuning_on_a_real_workload(self):
        """Tune on gcc's profile and verify the target holds when the
        estimator is then *measured* on the same input (the paper's
        self-profiled best case)."""
        from repro.confidence import profile_site_accuracy
        from repro.engine import measure, workload_run
        from repro.predictors import GsharePredictor

        trace = workload_run("gcc", 120).trace
        counts = profile_site_accuracy(trace, GsharePredictor())
        tuned = tune_for_spec(counts, 0.8)
        result = measure(
            trace, GsharePredictor(), {"tuned": tuned.estimator}
        )
        measured = result.quadrants["tuned"]
        # self-profiled: the measured SPEC lands on the tuned value
        assert measured.spec == pytest.approx(tuned.achieved_spec, abs=0.02)
        assert measured.spec >= 0.78
