"""Tests for the selective dual-path (eager execution) pipeline."""

import pytest

from repro.confidence import JRSEstimator, SaturatingCountersEstimator
from repro.isa import Machine
from repro.predictors import GsharePredictor, SAgPredictor
from repro.speculation import EagerPipelineSimulator, compare_eager_execution
from repro.workloads import generate_program, get_profile


def program(name="go", iterations=30):
    return generate_program(get_profile(name), iterations=iterations)


def always_lc_factory(predictor):
    return JRSEstimator(threshold=16)  # unreachable: everything LC


def jrs_factory(predictor):
    return JRSEstimator(threshold=15, enhanced=True)


class TestCorrectness:
    """Dual path must not change what the program computes."""

    @pytest.mark.parametrize("name", ("compress", "go", "gcc"))
    def test_architectural_state_matches_functional_run(self, name):
        prog = program(name, iterations=10)
        predictor = GsharePredictor()
        simulator = EagerPipelineSimulator(
            prog,
            predictor,
            estimators={"fork": always_lc_factory(predictor)},
            fork_on="fork",
        )
        result = simulator.run()
        golden = Machine(prog)
        golden.run()
        assert simulator.machine.regs == golden.regs
        assert simulator.machine.memory == golden.memory
        assert result.stats.committed_instructions == golden.instructions_retired

    def test_prediction_accuracy_is_preserved(self):
        """Per-path history forking must leave the predictor exactly as
        accurate as in the single-path baseline."""
        prog = program("go", iterations=40)
        comparison = compare_eager_execution(prog, GsharePredictor, jrs_factory)
        assert comparison.eager.stats.committed_accuracy == pytest.approx(
            comparison.baseline.stats.committed_accuracy, abs=0.01
        )

    def test_non_speculative_predictor_also_correct(self):
        prog = program("compress", iterations=10)
        predictor = SAgPredictor()
        simulator = EagerPipelineSimulator(
            prog,
            predictor,
            estimators={"fork": always_lc_factory(predictor)},
            fork_on="fork",
        )
        result = simulator.run()
        golden = Machine(prog)
        golden.run()
        assert result.stats.committed_instructions == golden.instructions_retired


class TestMechanism:
    def test_covered_mispredictions_skip_the_flush(self):
        prog = program("go", iterations=40)
        comparison = compare_eager_execution(
            prog, GsharePredictor, always_lc_factory
        )
        assert comparison.covered_mispredictions > 0
        # covered forks avoid squash work relative to the baseline
        assert (
            comparison.eager.stats.squashed_instructions
            < comparison.baseline.stats.squashed_instructions
        )

    def test_forks_dilute_fetch(self):
        prog = program("go", iterations=40)
        comparison = compare_eager_execution(
            prog, GsharePredictor, always_lc_factory
        )
        assert comparison.wasted_slots > 0

    def test_high_confidence_only_estimator_never_forks(self):
        prog = program("go", iterations=20)
        comparison = compare_eager_execution(
            prog, GsharePredictor, lambda p: JRSEstimator(threshold=0)
        )
        assert comparison.forks == 0
        assert comparison.speedup == pytest.approx(0.0, abs=0.02)

    def test_one_fork_at_a_time(self):
        prog = program("go", iterations=20)
        predictor = GsharePredictor()
        simulator = EagerPipelineSimulator(
            prog,
            predictor,
            estimators={"fork": always_lc_factory(predictor)},
            fork_on="fork",
        )
        # run manually and check the invariant every cycle
        for __ in range(30_000):
            if simulator.done:
                break
            simulator.step_cycle()
            forked = [
                entry
                for entry in simulator._inflight
                if entry is simulator._active_fork
            ]
            assert len(forked) <= 1
        assert simulator.done

    def test_eager_beats_baseline_on_hard_workload(self):
        """The application-level claim: on a misprediction-heavy
        workload with a decent estimator, dual path wins cycles."""
        prog = program("go", iterations=50)
        comparison = compare_eager_execution(
            prog,
            GsharePredictor,
            lambda p: SaturatingCountersEstimator.for_predictor(p),
        )
        assert comparison.speedup > 0.02

    def test_fork_precision_and_coverage_ledger(self):
        prog = program("go", iterations=40)
        comparison = compare_eager_execution(prog, GsharePredictor, jrs_factory)
        assert 0.0 <= comparison.fork_precision <= 1.0
        assert 0.0 <= comparison.coverage <= 1.0
        assert comparison.covered_mispredictions <= comparison.forks


class TestValidation:
    def test_fork_on_must_name_estimator(self):
        prog = program(iterations=5)
        predictor = GsharePredictor()
        with pytest.raises(ValueError, match=r"\(fork\).*got 'nope'"):
            EagerPipelineSimulator(
                prog,
                predictor,
                estimators={"fork": jrs_factory(predictor)},
                fork_on="nope",
            )
        with pytest.raises(ValueError, match=r"<none attached>"):
            EagerPipelineSimulator(prog, predictor, fork_on="fork")

    def test_negative_switch_penalty_rejected(self):
        prog = program(iterations=5)
        predictor = GsharePredictor()
        with pytest.raises(ValueError):
            EagerPipelineSimulator(
                prog,
                predictor,
                estimators={"fork": jrs_factory(predictor)},
                fork_on="fork",
                fork_switch_penalty=-1,
            )
