"""Spec registry, artifact DAG, estimator bank, and bench contract.

The declarative layer's guarantees, each pinned by a test:

* the registry holds the whole battery, refuses duplicate ids, and the
  legacy ``EXPERIMENTS`` surface is a read-only view over it;
* warm-up waves derived from the declared artifact DAG reproduce the
  legacy hardcoded schedule exactly (trace wave + heavy wave);
* one estimator-bank pass yields per-family quadrants and accuracy
  identical to dedicated single-estimator ``measure`` passes for every
  (workload, predictor, family) triple at smoke scale;
* a cold battery records ``session.passes_saved > 0`` in the journal's
  ``metrics_snapshot``;
* ``repro bench --json`` emits the documented schema;
* the README battery table matches ``repro list --markdown``.
"""

import json
from pathlib import Path

import pytest

from repro.cli import battery_table_markdown, main
from repro.engine import cache as artifact_cache
from repro.engine import clear_cache, vector_enabled
from repro.engine.measure import measure, measure_accuracy
from repro.harness import (
    EXPERIMENTS,
    SMOKE,
    SPECS,
    ArtifactDep,
    ArtifactNode,
    ExperimentSpec,
    clear_memoised,
    measurement_cell,
    measurement_plan,
    plan_artifact_nodes,
    plan_warm_tasks,
    run_all,
    spec_fingerprint,
    topological_levels,
)
from repro.harness.experiments import (
    BANK_FAMILIES,
    PREDICTORS,
    STANDARD_FAMILIES,
    _family_estimator,
    _trace,
)
from repro.harness.spec import SECTIONS, SpecRegistry
from repro.harness.speculation import (
    GATE_THRESHOLDS,
    SPECULATION_BATTERY,
    SPECULATION_ESTIMATORS,
)
from repro.obs.journal import RunJournal, read_journal
from repro.predictors import make_predictor


@pytest.fixture()
def isolated_cache(tmp_path):
    """A fresh disk cache + empty in-process memo tier."""
    previous_root = artifact_cache.get_cache().root
    previous_enabled = artifact_cache.get_cache().enabled
    artifact_cache.configure(root=tmp_path / "cache", enabled=True)
    clear_memoised()
    clear_cache()
    yield artifact_cache.get_cache()
    artifact_cache.configure(root=previous_root, enabled=previous_enabled)
    clear_memoised()
    clear_cache()


def _spec(experiment_id="demo", order=1, **kwargs):
    defaults = dict(
        title="demo",
        run=lambda scale: None,
        section="paper",
    )
    defaults.update(kwargs)
    return ExperimentSpec(experiment_id=experiment_id, order=order, **defaults)


class TestSpecRegistry:
    def test_registry_covers_the_whole_battery(self):
        assert len(SPECS) == 17
        assert set(SPECS) == set(EXPERIMENTS)
        assert set(SPECULATION_BATTERY) <= set(SPECS)

    def test_iteration_is_report_order(self):
        orders = [SPECS[eid].order for eid in SPECS]
        assert orders == sorted(orders)
        sections = [SPECS[eid].section for eid in SPECS]
        # paper experiments render before speculation control
        assert sections.index("speculation") == len(
            [s for s in sections if s == "paper"]
        )

    def test_by_section_uses_known_sections(self):
        grouped = SPECS.by_section()
        assert set(grouped) <= set(SECTIONS)
        assert [s.experiment_id for s in grouped["speculation"]] == list(
            SPECULATION_BATTERY
        )

    def test_registrants_recorded(self):
        assert SPECS.registrant("tab2") == "repro.harness.experiments"
        assert (
            SPECS.registrant("speculation-gating")
            == "repro.harness.speculation"
        )

    def test_duplicate_registration_names_both_registrants(self):
        registry = SpecRegistry()
        registry.register(_spec(), registrant="first.module")
        with pytest.raises(ValueError) as excinfo:
            registry.register(_spec(), registrant="second.module")
        message = str(excinfo.value)
        assert "first.module" in message
        assert "second.module" in message
        assert "'demo'" in message

    def test_experiments_view_is_read_only(self):
        assert EXPERIMENTS["tab2"] is SPECS["tab2"].run
        assert not hasattr(EXPERIMENTS, "update")
        with pytest.raises(TypeError):
            EXPERIMENTS["new"] = lambda scale: None

    def test_unknown_dep_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown artifact dependency"):
            ArtifactDep(kind="nope")


class TestTopologicalLevels:
    def _node(self, name, *deps):
        return ArtifactNode(
            key=(name, ()), deps=tuple((dep, ()) for dep in deps)
        )

    def test_diamond_levels(self):
        nodes = [
            self._node("d", "b", "c"),
            self._node("b", "a"),
            self._node("c", "a"),
            self._node("a"),
        ]
        levels = topological_levels(nodes)
        assert [[n.key[0] for n in level] for level in levels] == [
            ["a"],
            ["b", "c"],
            ["d"],
        ]

    def test_input_order_preserved_within_a_level(self):
        nodes = [self._node("z"), self._node("a"), self._node("m")]
        (level,) = topological_levels(nodes)
        assert [n.key[0] for n in level] == ["z", "a", "m"]

    def test_absent_deps_count_as_satisfied(self):
        levels = topological_levels([self._node("only", "not-planned")])
        assert len(levels) == 1

    def test_cycle_raises(self):
        with pytest.raises(ValueError, match="cycle"):
            topological_levels(
                [self._node("a", "b"), self._node("b", "a")]
            )


class TestMeasurementPlan:
    def test_full_battery_unions_per_predictor(self):
        plan = dict(measurement_plan(SPECS[eid] for eid in SPECS))
        standard = tuple(sorted(("accuracy",) + STANDARD_FAMILIES))
        assert plan["gshare"] == standard
        assert plan["sag"] == standard
        assert plan["mcfarling"] == tuple(
            sorted(standard + ("satcnt-either",))
        )

    def test_single_experiment_plan_is_minimal(self):
        plan = dict(measurement_plan([SPECS["tab3"]]))
        assert plan == {"mcfarling": ("satcnt", "satcnt-either")}


class TestWarmPlanLegacyEquivalence:
    """The DAG-derived schedule equals the old hardcoded waves."""

    def _heavy_by_kind(self, selected):
        __, heavy = plan_warm_tasks(selected, SMOKE)
        kinds = {}
        for kind, args in heavy:
            kinds.setdefault(kind, set()).add(args)
        return kinds

    def test_trace_wave_is_the_workload_set(self):
        # the first wave holds the dependency-free shared artifacts:
        # one trace and one pre-decoded program per workload
        trace_tasks, __ = plan_warm_tasks(list(EXPERIMENTS), SMOKE)
        assert set(trace_tasks) == {
            (kind, (workload, SMOKE.iterations))
            for workload in SMOKE.workloads
            for kind in ("trace", "program-decoded")
        }

    def test_full_battery_heavy_wave_matches_legacy_sets(self):
        kinds = self._heavy_by_kind(list(EXPERIMENTS))
        iters = SMOKE.iterations
        instrs = SMOKE.pipeline_instructions
        # figures 6-9 warmed pipeline runs for gshare and mcfarling
        assert kinds["pipeline"] == {
            (workload, predictor, iters, instrs, None, "inorder")
            for workload in SMOKE.workloads
            for predictor in ("gshare", "mcfarling")
        }
        # the measurement grid covers the legacy table2 grid exactly
        assert {
            (args[0], args[1]) for args in kinds["measurement"]
        } == {
            (predictor, workload)
            for predictor in PREDICTORS
            for workload in SMOKE.workloads
        }
        assert kinds["gating"] == {
            (workload, estimator, threshold, iters, instrs, "inorder")
            for workload in SMOKE.workloads
            for estimator in SPECULATION_ESTIMATORS
            for threshold in GATE_THRESHOLDS
        }
        assert kinds["eager"] == {
            (workload, estimator, iters, instrs, "inorder")
            for workload in SMOKE.workloads
            for estimator in SPECULATION_ESTIMATORS
        }
        assert kinds["inversion"] == {
            (workload, estimator, iters)
            for workload in SMOKE.workloads
            for estimator in SPECULATION_ESTIMATORS
        }

    def test_dag_has_exactly_three_levels(self):
        levels = topological_levels(
            plan_artifact_nodes(list(EXPERIMENTS), SMOKE)
        )
        assert len(levels) == 3
        assert all(
            node.kind in ("trace", "program-decoded") for node in levels[0]
        )
        assert all(node.kind != "trace" for node in levels[1])
        # the columnar lowering sits between the trace and everything
        # that replays it
        assert any(node.kind == "trace-columnar" for node in levels[1])
        assert all(node.kind == "measurement" for node in levels[2])

    def test_measurement_tasks_carry_the_battery_plan(self):
        kinds = self._heavy_by_kind(list(EXPERIMENTS))
        plan = dict(measurement_plan(SPECS[eid] for eid in SPECS))
        for predictor, workload, __, families in kinds["measurement"]:
            assert families == plan[predictor]


class TestBankEquivalence:
    """One bank pass == N single-estimator passes, family by family."""

    @pytest.mark.parametrize("predictor_name", PREDICTORS)
    def test_bank_matches_single_measure_passes(
        self, isolated_cache, predictor_name
    ):
        iterations = SMOKE.iterations
        for workload in SMOKE.workloads:
            cell = measurement_cell(
                predictor_name, workload, iterations, BANK_FAMILIES
            )
            trace = _trace(workload, iterations)
            baseline = measure_accuracy(trace, make_predictor(predictor_name))
            assert cell.accuracy == baseline.accuracy
            assert cell.branches == baseline.branches
            assert cell.mispredictions == baseline.mispredictions
            for family in BANK_FAMILIES:
                if family == "accuracy":
                    continue
                predictor = make_predictor(predictor_name)
                estimator = _family_estimator(
                    family, predictor_name, predictor, workload, iterations
                )
                single = measure(trace, predictor, {family: estimator})
                assert (
                    cell.quadrants[family] == single.quadrants[family]
                ), (predictor_name, workload, family)

    def test_unmeasured_family_raises_with_inventory(self, isolated_cache):
        cell = measurement_cell(
            "mcfarling", "compress", SMOKE.iterations, ("jrs",)
        )
        with pytest.raises(KeyError, match="not measured"):
            cell.quadrant("static")


class TestPassesSaved:
    def test_cold_battery_journal_reports_saved_passes(
        self, isolated_cache, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            run_all(
                SMOKE, only=["tab1", "tab2", "tab3"], jobs=1, journal=journal
            )
        snapshots = [
            event
            for event in read_journal(path)
            if event["event"] == "metrics_snapshot"
        ]
        assert snapshots, "battery must journal a metrics snapshot"
        counters = snapshots[-1]["counters"]
        assert counters.get("session.bank_passes", 0) > 0
        assert counters.get("session.passes_saved", 0) > 0


class TestSpecFingerprint:
    def test_stable_and_compact(self):
        one = spec_fingerprint("tab2", SMOKE)
        two = spec_fingerprint("tab2", SMOKE)
        assert one == two
        assert len(one) == 16
        int(one, 16)  # hex

    def test_distinguishes_dependency_sets(self):
        assert spec_fingerprint("fig1", SMOKE) != spec_fingerprint(
            "tab2", SMOKE
        )
        assert spec_fingerprint("tab2", SMOKE) != spec_fingerprint(
            "tab3", SMOKE
        )


class TestBenchCli:
    def test_bench_json_contract(self, isolated_cache, tmp_path, capsys):
        out = tmp_path / "bench.json"
        exit_code = main(
            [
                "bench",
                "--scale",
                "smoke",
                "--only",
                "tab1,tab2,tab3",
                "--jobs",
                "1",
                "--json",
                str(out),
            ]
        )
        assert exit_code == 0
        assert str(out) in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench/4"
        assert payload["jobs"] == 1
        assert payload["scale"]["workloads"] == list(SMOKE.workloads)
        assert payload["scale"]["backend"] == "inorder"
        assert [e["id"] for e in payload["experiments"]] == [
            "tab1",
            "tab2",
            "tab3",
        ]
        assert all(
            e["duration_s"] >= 0 for e in payload["experiments"]
        )
        assert payload["wall_seconds"] > 0
        assert payload["simulation"]["branches"] > 0
        assert payload["simulation"]["branches_per_second"] > 0
        assert payload["simulation"]["scalar_fallback_branches"] >= 0
        if vector_enabled():
            assert payload["simulation"]["vector_branches"] > 0
        # trace generation is accounted separately from replay
        assert payload["trace_generation"]["branches"] > 0
        assert payload["trace_generation"]["seconds"] > 0
        # tab1's fetch-to-commit column runs the cycle-level pipeline,
        # so the repro-bench/3+ pipeline section is populated on a cold run
        assert payload["pipeline"]["backend"] == "inorder"
        assert payload["pipeline"]["branches"] > 0
        assert payload["pipeline"]["branches_per_second"] > 0
        assert 0.0 <= payload["cache"]["hit_rate"] <= 1.0
        assert payload["session"]["bank_passes"] > 0
        # cold run: the bank subsumed tab1/tab2/tab3 single-purpose passes
        assert payload["session"]["passes_saved"] > 0

    def test_warm_bench_reports_no_replay_throughput(
        self, isolated_cache, tmp_path, capsys
    ):
        """Satellite regression: a fully cached battery must report
        ``branches_per_second: null`` -- not a rate inflated by counting
        cached cells' branches against near-zero replay time."""
        argv = [
            "bench",
            "--scale",
            "smoke",
            "--only",
            "tab2",
            "--jobs",
            "1",
        ]
        assert main(argv + ["--json", str(tmp_path / "cold.json")]) == 0
        # drop in-process memos so the warm run exercises the on-disk
        # cache exactly as a fresh CI process would
        clear_memoised()
        warm = tmp_path / "warm.json"
        assert main(argv + ["--json", str(warm)]) == 0
        capsys.readouterr()
        payload = json.loads(warm.read_text())
        assert payload["simulation"]["branches"] == 0
        assert payload["simulation"]["branches_per_second"] is None
        # same null-not-zero discipline for the pipeline section
        assert payload["pipeline"]["branches"] == 0
        assert payload["pipeline"]["branches_per_second"] is None

    def test_compare_gates(self, tmp_path, capsys):
        def snapshot(path, bps, branches):
            payload = {
                "schema": "repro-bench/3",
                "wall_seconds": 1.0,
                "simulation": {
                    "branches": branches,
                    "seconds": branches / bps if bps else 0.0,
                    "branches_per_second": bps,
                },
            }
            path.write_text(json.dumps(payload))
            return str(path)

        slow = snapshot(tmp_path / "slow.json", 100_000.0, 1_000_000)
        fast = snapshot(tmp_path / "fast.json", 1_500_000.0, 1_000_000)
        warm = snapshot(tmp_path / "warm.json", None, 0)

        assert (
            main(["bench", "--compare", slow, fast, "--min-speedup", "10"])
            == 0
        )
        assert (
            main(["bench", "--compare", slow, fast, "--min-speedup", "20"])
            == 1
        )
        assert (
            main(["bench", "--compare", fast, slow, "--max-regression", "0.25"])
            == 1
        )
        assert (
            main(["bench", "--compare", fast, fast, "--max-regression", "0.25"])
            == 0
        )
        # a warm snapshot has no throughput: the row renders "n/a" and
        # the gates are skipped (exit 0) -- an incomparable pair is not
        # a regression (see TestBenchCompareIncomparable)
        assert (
            main(["bench", "--compare", slow, warm, "--min-speedup", "10"])
            == 0
        )
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "skip: candidate has no replay branches/s" in out

    def test_compare_pipeline_metric(self, tmp_path, capsys):
        """``--metric pipeline`` gates on the cycle-level section, and an
        old repro-bench/2 snapshot (no such section) reads as n/a."""

        def snapshot(path, bps, branches, schema="repro-bench/3"):
            payload = {
                "schema": schema,
                "wall_seconds": 1.0,
                "simulation": {
                    "branches": 0,
                    "seconds": 0.0,
                    "branches_per_second": None,
                },
            }
            if schema == "repro-bench/3":
                payload["pipeline"] = {
                    "branches": branches,
                    "seconds": branches / bps if bps else 0.0,
                    "branches_per_second": bps,
                }
            path.write_text(json.dumps(payload))
            return str(path)

        slow = snapshot(tmp_path / "slow.json", 40_000.0, 400_000)
        fast = snapshot(tmp_path / "fast.json", 220_000.0, 400_000)
        old = snapshot(tmp_path / "old.json", None, 0, schema="repro-bench/2")
        argv = ["bench", "--metric", "pipeline", "--compare"]

        assert main(argv + [slow, fast, "--min-speedup", "5"]) == 0
        assert main(argv + [slow, fast, "--min-speedup", "6"]) == 1
        assert main(argv + [fast, fast, "--max-regression", "0.40"]) == 0
        # a pre-repro-bench/3 snapshot has no pipeline section: the
        # gate is skipped rather than failed
        assert main(argv + [slow, old, "--min-speedup", "5"]) == 0
        out = capsys.readouterr().out
        assert "bench compare (pipeline):" in out
        assert "n/a" in out
        assert "skip: candidate has no pipeline branches/s" in out


class TestBenchCompareIncomparable:
    """Satellite regression: ``bench --compare`` against a warm
    snapshot (``branches_per_second: null``) must render ``n/a`` and
    skip the exit gates instead of failing CI.  Before the fix a warm
    *baseline* -- the normal state of a cached CI job -- turned every
    gated comparison into a spurious exit 1."""

    @staticmethod
    def _snapshot(path, bps, branches):
        payload = {
            "schema": "repro-bench/3",
            "wall_seconds": 1.0,
            "simulation": {
                "branches": branches,
                "seconds": branches / bps if bps else 0.0,
                "branches_per_second": bps,
            },
        }
        path.write_text(json.dumps(payload))
        return str(path)

    def test_warm_baseline_skips_gates(self, tmp_path, capsys):
        warm = self._snapshot(tmp_path / "warm.json", None, 0)
        fast = self._snapshot(tmp_path / "fast.json", 1_500_000.0, 1_000_000)

        argv = ["bench", "--compare", warm, fast]
        assert main(argv + ["--min-speedup", "10"]) == 0
        out = capsys.readouterr().out
        assert "skip: baseline has no replay branches/s" in out
        assert "FAIL" not in out
        assert "n/a" in out

        # both gates at once, still skipped exactly once
        assert (
            main(argv + ["--min-speedup", "10", "--max-regression", "0.1"])
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("skip:") == 1
        assert "FAIL" not in out

    def test_both_warm_skips_gates(self, tmp_path, capsys):
        warm_a = self._snapshot(tmp_path / "a.json", None, 0)
        warm_b = self._snapshot(tmp_path / "b.json", None, 0)
        argv = ["bench", "--compare", warm_a, warm_b, "--max-regression", "0.1"]
        assert main(argv) == 0
        assert "skip: baseline has no replay branches/s" in capsys.readouterr().out

    def test_ungated_compare_still_renders(self, tmp_path, capsys):
        warm = self._snapshot(tmp_path / "warm.json", None, 0)
        fast = self._snapshot(tmp_path / "fast.json", 1_500_000.0, 1_000_000)
        assert main(["bench", "--compare", fast, warm]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "skip" not in out  # nothing to gate, nothing to skip


class TestReadmeBatteryTable:
    def test_readme_table_matches_registry(self):
        readme = (
            Path(__file__).resolve().parents[1] / "README.md"
        ).read_text()
        begin = "<!-- BEGIN GENERATED: battery table (repro list --markdown) -->"
        end = "<!-- END GENERATED: battery table -->"
        assert begin in readme and end in readme, (
            "README must keep the generated battery-table markers"
        )
        block = readme.split(begin, 1)[1].split(end, 1)[0].strip()
        assert block == battery_table_markdown(), (
            "README battery table is stale; regenerate with"
            " `repro list --markdown`"
        )
