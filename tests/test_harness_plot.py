"""Tests for the ASCII chart renderer."""

from repro.analysis.distance import _curve_from_pairs
from repro.analysis.sweeps import SweepLine, SweepPoint
from repro.harness.plot import (
    distance_chart,
    figure1_chart,
    line_chart,
    sweep_chart,
)
from repro.metrics import QuadrantCounts, figure1_family


class TestLineChart:
    def test_renders_grid_and_legend(self):
        chart = line_chart(
            {"a": [(0, 0.0), (1, 1.0)], "b": [(0, 1.0), (1, 0.0)]},
            title="demo",
            width=20,
            height=6,
        )
        assert "demo" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "100.0%" in chart

    def test_extremes_land_on_borders(self):
        chart = line_chart({"a": [(0, 0.0), (10, 1.0)]}, width=11, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert rows[-1].split("|")[1][0] == "o"  # min at bottom-left

    def test_empty_series(self):
        assert "(no data)" in line_chart({}, title="nothing")
        assert "(no data)" in line_chart({"a": []}, title="nothing")

    def test_degenerate_single_point(self):
        chart = line_chart({"a": [(3, 0.5)]}, width=10, height=4)
        assert "o" in chart

    def test_non_percent_axis(self):
        chart = line_chart({"a": [(0, 2.0), (1, 4.0)]}, y_percent=False)
        assert "4.00" in chart


class TestDomainCharts:
    def test_distance_chart(self):
        curve = _curve_from_pairs(
            [(0, True), (1, False), (2, False)], "t", max_distance=4
        )
        chart = distance_chart({"all": curve}, "demo distances")
        assert "misprediction rate" in chart
        assert "demo distances" in chart

    def test_sweep_chart(self):
        line = SweepLine(
            "demo",
            (
                SweepPoint(0, QuadrantCounts(c_hc=2, i_hc=1)),
                SweepPoint(1, QuadrantCounts(c_hc=3, i_hc=0, i_lc=1)),
            ),
        )
        chart = sweep_chart({"demo": line}, "sweep", "pvp")
        assert "threshold" in chart

    def test_figure1_chart(self):
        chart = figure1_chart(figure1_family())
        assert "PVP" in chart and "PVN" in chart
        assert "vary sens" in chart


class TestCliPlot:
    def test_plot_fig1(self, capsys):
        from repro.cli import main

        assert main(["plot", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_plot_fig3(self, capsys):
        from repro.cli import main

        code = main(
            ["plot", "fig3", "--iterations", "40", "--workloads", "compress"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pvp" in out and "pvn" in out

    def test_plot_distance_figure(self, capsys):
        from repro.cli import main

        code = main(
            [
                "plot",
                "fig6",
                "--iterations",
                "60",
                "--workloads",
                "compress",
                "--pipeline-instructions",
                "8000",
            ]
        )
        assert code == 0
        assert "committed" in capsys.readouterr().out
