"""Integration tests for the speculative pipeline simulator."""

import pytest

from repro.confidence import JRSEstimator, MispredictionDistanceEstimator
from repro.isa import Machine
from repro.pipeline import PipelineConfig, PipelineSimulator
from repro.predictors import GsharePredictor, SAgPredictor, make_predictor
from repro.workloads import generate_program, get_profile


def small_program(name="compress", iterations=30):
    return generate_program(get_profile(name), iterations=iterations)


class TestGoldenEquivalence:
    """Committed execution must equal pure functional execution."""

    @pytest.mark.parametrize("name", ("compress", "gcc", "go", "vortex"))
    def test_architectural_state_matches_functional_run(self, name):
        program = small_program(name, iterations=8)
        simulator = PipelineSimulator(program, GsharePredictor())
        result = simulator.run()
        golden = Machine(program)
        golden.run()
        assert simulator.machine.halted
        assert simulator.machine.regs == golden.regs
        assert simulator.machine.memory == golden.memory
        assert (
            result.stats.committed_instructions == golden.instructions_retired
        )

    def test_committed_branch_stream_matches_trace(self):
        from repro.engine import trace_branches

        program = small_program(iterations=10)
        result = PipelineSimulator(program, GsharePredictor()).run()
        committed = [
            (record.pc, record.actual_taken) for record in result.committed_records()
        ]
        assert committed == list(trace_branches(program).trace)

    def test_non_speculative_predictor_also_equivalent(self):
        program = small_program(iterations=8)
        simulator = PipelineSimulator(program, SAgPredictor())
        result = simulator.run()
        golden = Machine(program)
        golden.run()
        assert result.stats.committed_instructions == golden.instructions_retired


class TestSpeculationBehaviour:
    def test_fetches_more_than_commits(self):
        program = small_program(iterations=40)
        result = PipelineSimulator(program, GsharePredictor()).run()
        stats = result.stats
        assert stats.fetched_instructions > stats.committed_instructions
        assert stats.fetch_to_commit_ratio > 1.0
        assert stats.squashed_instructions > 0

    def test_wrong_path_branches_are_recorded(self):
        program = small_program(iterations=40)
        result = PipelineSimulator(program, GsharePredictor()).run()
        wrong_path = [r for r in result.branch_records if r.wrong_path]
        assert wrong_path
        assert all(not record.committed for record in wrong_path)

    def test_committed_records_resolved_in_order(self):
        program = small_program(iterations=20)
        result = PipelineSimulator(program, GsharePredictor()).run()
        committed = result.committed_records()
        cycles = [record.resolve_cycle for record in committed]
        assert cycles == sorted(cycles)
        assert all(
            record.resolve_cycle >= record.fetch_cycle for record in committed
        )

    def test_distance_counters_reset_on_mispredictions(self):
        program = small_program(iterations=40)
        result = PipelineSimulator(program, GsharePredictor()).run()
        records = result.branch_records
        # right after a mispredicted fetch, the next branch's precise
        # distance must be 0
        for earlier, later in zip(records, records[1:]):
            if earlier.mispredicted:
                assert later.precise_distance == 0

    def test_perceived_distance_lags_precise(self):
        """Detection happens at resolve: perceived resets later, so on
        average perceived distances right after a misprediction exceed
        precise ones."""
        program = small_program(iterations=60)
        result = PipelineSimulator(program, GsharePredictor()).run()
        records = [r for r in result.branch_records if r.mispredicted]
        mean_precise = sum(r.precise_distance for r in records) / len(records)
        mean_perceived = sum(r.perceived_distance for r in records) / len(records)
        assert mean_perceived >= mean_precise

    def test_mispredict_penalty_slows_completion(self):
        program = small_program(iterations=30)
        fast = PipelineSimulator(
            program, GsharePredictor(), config=PipelineConfig(mispredict_penalty=0)
        ).run()
        slow = PipelineSimulator(
            program, GsharePredictor(), config=PipelineConfig(mispredict_penalty=10)
        ).run()
        assert slow.stats.cycles > fast.stats.cycles

    def test_max_instructions_commits_exactly_n(self):
        # the commit stage caps its width to the remaining budget, so
        # the run never overshoots by up to commit_width-1
        program = small_program(iterations=200)
        result = PipelineSimulator(program, GsharePredictor()).run(
            max_instructions=2000
        )
        assert result.stats.committed_instructions == 2000

    @pytest.mark.parametrize("fast", (False, True))
    def test_max_instructions_exact_with_wide_commit(self, fast):
        # a budget that is not a multiple of commit_width forces a
        # partial final commit group in both engines
        program = small_program(iterations=200)
        config = PipelineConfig(commit_width=4)
        result = PipelineSimulator(
            program, GsharePredictor(), config=config, fast=fast
        ).run(max_instructions=1999)
        assert result.stats.committed_instructions == 1999

    def test_ipc_is_bounded_by_widths(self):
        program = small_program(iterations=30)
        config = PipelineConfig(fetch_width=2, commit_width=2)
        result = PipelineSimulator(program, GsharePredictor(), config=config).run()
        assert 0 < result.stats.ipc <= 2.0


class TestEstimatorsInPipeline:
    def test_quadrants_cover_committed_branches(self):
        program = small_program(iterations=30)
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            program,
            predictor,
            estimators={"jrs": JRSEstimator(threshold=15)},
        )
        result = simulator.run()
        quadrant = result.quadrants_committed["jrs"]
        assert quadrant.total == result.stats.committed_branches
        quadrant_all = result.quadrants_all["jrs"]
        assert quadrant_all.total == result.stats.fetched_branches

    def test_records_carry_assessments(self):
        program = small_program(iterations=20)
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            program,
            predictor,
            estimators={"dist": MispredictionDistanceEstimator(4)},
        )
        result = simulator.run()
        assert all("dist" in record.assessments for record in result.branch_records)

    def test_wrong_path_branches_counted_in_all_only(self):
        program = small_program(iterations=40)
        predictor = GsharePredictor()
        simulator = PipelineSimulator(
            program, predictor, estimators={"jrs": JRSEstimator(threshold=15)}
        )
        result = simulator.run()
        assert (
            result.quadrants_all["jrs"].total
            > result.quadrants_committed["jrs"].total
        )


class TestStepCycleApi:
    def test_manual_stepping_reaches_completion(self):
        program = small_program(iterations=5)
        simulator = PipelineSimulator(program, GsharePredictor())
        for __ in range(200_000):
            if simulator.done:
                break
            simulator.step_cycle()
        assert simulator.done

    def test_fetch_denied_still_commits(self):
        program = small_program(iterations=5)
        simulator = PipelineSimulator(
            program, GsharePredictor(), config=PipelineConfig(resolve_stage=20)
        )
        # fill the pipe (riding out the cold I-cache miss), then deny
        # fetch: in-flight work must drain
        for __ in range(15):
            simulator.step_cycle(fetch_allowed=True)
        inflight = len(simulator._inflight)
        assert inflight > 0
        for __ in range(50):
            simulator.step_cycle(fetch_allowed=False)
        assert len(simulator._inflight) == 0

    def test_wants_fetch_false_when_window_full(self):
        program = small_program(iterations=10)
        config = PipelineConfig(window=4, resolve_stage=30)
        simulator = PipelineSimulator(program, GsharePredictor(), config=config)
        for __ in range(3):
            simulator.step_cycle()
        assert not simulator.wants_fetch()


class TestConfigValidation:
    def test_bad_widths(self):
        with pytest.raises(ValueError):
            PipelineConfig(fetch_width=0)
        with pytest.raises(ValueError):
            PipelineConfig(window=2, fetch_width=4)

    def test_bad_latencies(self):
        with pytest.raises(ValueError):
            PipelineConfig(resolve_stage=0)
        with pytest.raises(ValueError):
            PipelineConfig(mispredict_penalty=-1)


@pytest.mark.parametrize("predictor_name", ("gshare", "mcfarling", "sag"))
def test_every_predictor_survives_a_pipeline_run(predictor_name):
    program = small_program(iterations=10)
    result = PipelineSimulator(program, make_predictor(predictor_name)).run()
    assert result.stats.committed_instructions > 0
