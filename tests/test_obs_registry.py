"""Metrics registry: counters/timers/histograms, snapshot-delta-merge."""

import pickle

import pytest

from repro.obs.registry import MetricsRegistry, TimerStat


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_count_accumulates(self, registry):
        registry.count("a")
        registry.count("a", 2.5)
        assert registry.counter_value("a") == pytest.approx(3.5)

    def test_missing_counter_is_zero(self, registry):
        assert registry.counter_value("nope") == 0.0


class TestTimers:
    def test_observe_seconds(self, registry):
        registry.observe_seconds("t", 0.5)
        registry.observe_seconds("t", 1.5, count=3)
        stat = registry.timer_value("t")
        assert stat.seconds == pytest.approx(2.0)
        assert stat.count == 4
        assert stat.mean_seconds == pytest.approx(0.5)

    def test_timed_context_manager(self, registry):
        with registry.timed("block"):
            pass
        stat = registry.timer_value("block")
        assert stat.count == 1
        assert stat.seconds >= 0.0

    def test_timer_value_is_a_copy(self, registry):
        registry.observe_seconds("t", 1.0)
        registry.timer_value("t").add(100.0)
        assert registry.timer_value("t").seconds == pytest.approx(1.0)


class TestHistograms:
    def test_record_and_top(self, registry):
        for __ in range(3):
            registry.record("h", "x")
        registry.record("h", "y", 5)
        registry.record("h", "z")
        assert registry.top("h", 2) == [("y", 5), ("x", 3)]

    def test_top_breaks_ties_by_key(self, registry):
        registry.record("h", "b")
        registry.record("h", "a")
        assert registry.top("h") == [("a", 1), ("b", 1)]


class TestSnapshotDeltaMerge:
    def test_since_drops_untouched_metrics(self, registry):
        registry.count("old", 7)
        registry.observe_seconds("old.t", 1.0)
        base = registry.snapshot()
        registry.count("new", 1)
        delta = registry.since(base)
        assert delta.counters == {"new": 1}
        assert delta.timers == {}
        assert delta.histograms == {}

    def test_delta_histogram_is_per_key(self, registry):
        registry.record("h", "a", 2)
        base = registry.snapshot()
        registry.record("h", "a")
        registry.record("h", "b")
        delta = registry.since(base)
        assert delta.histograms == {"h": {"a": 1, "b": 1}}

    def test_merge_is_the_inverse_of_since(self, registry):
        registry.count("c", 1)
        registry.observe_seconds("t", 0.25)
        registry.record("h", "k", 4)
        base = registry.snapshot()
        registry.count("c", 2)
        registry.observe_seconds("t", 0.75)
        registry.record("h", "k")
        delta = registry.since(base)

        other = MetricsRegistry()
        other.count("c", 1)
        other.merge(delta)
        assert other.counter_value("c") == pytest.approx(3)
        assert other.timer_value("t").seconds == pytest.approx(0.75)
        assert other.histogram_value("h") == {"k": 1}

    def test_snapshot_is_picklable(self, registry):
        registry.count("c", 1)
        registry.observe_seconds("t", 0.5)
        registry.record("h", "k")
        restored = pickle.loads(pickle.dumps(registry.snapshot()))
        assert restored.counters == {"c": 1}
        assert restored.timers["t"].seconds == pytest.approx(0.5)
        assert restored.histograms == {"h": {"k": 1}}

    def test_as_dict_key_order_is_deterministic(self, registry):
        registry.count("zeta", 1)
        registry.count("alpha", 1)
        registry.record("h", "z")
        registry.record("h", "a")
        rendered = registry.as_dict()
        assert list(rendered["counters"]) == ["alpha", "zeta"]
        assert list(rendered["histograms"]["h"]) == ["a", "z"]

    def test_merge_order_does_not_change_totals(self):
        """Parallel completion order must not matter (determinism)."""
        deltas = []
        for amount in (1, 2, 3):
            worker = MetricsRegistry()
            worker.count("c", amount)
            worker.record("h", "k", amount)
            deltas.append(worker.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            forward.merge(delta)
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward.as_dict() == backward.as_dict()


class TestManagement:
    def test_discard(self, registry):
        registry.count("c", 1)
        registry.discard("c")
        assert registry.counter_value("c") == 0.0

    def test_reset(self, registry):
        registry.count("c", 1)
        registry.observe_seconds("t", 1.0)
        registry.record("h", "k")
        registry.reset()
        assert registry.as_dict() == {
            "counters": {},
            "timers": {},
            "histograms": {},
        }


class TestSimulationCountersRemoval:
    """The legacy facade module is a shim that fails with a pointer."""

    def test_import_raises_with_pointer(self):
        import importlib

        with pytest.raises(ImportError) as excinfo:
            importlib.import_module("repro.engine.counters")
        message = str(excinfo.value)
        assert "SIMULATION_COUNTERS" in message
        assert "repro.obs.registry.REGISTRY" in message

    def test_engine_no_longer_exports_facade(self):
        import repro.engine as engine

        assert not hasattr(engine, "SIMULATION_COUNTERS")

    def test_record_simulation_feeds_global_registry(self):
        from repro.engine import BRANCHES_METRIC, REPLAY_TIMER, record_simulation
        from repro.obs.registry import REGISTRY

        branches_before = REGISTRY.counter_value(BRANCHES_METRIC)
        timer_before = REGISTRY.timer_value(REPLAY_TIMER)
        record_simulation(branches=7, seconds=0.25)
        assert REGISTRY.counter_value(BRANCHES_METRIC) == branches_before + 7
        after = REGISTRY.timer_value(REPLAY_TIMER)
        assert after.seconds == pytest.approx(timer_before.seconds + 0.25)
        assert after.count == timer_before.count + 1


class TestTimerStat:
    def test_copy_is_independent(self):
        stat = TimerStat(seconds=1.0, count=2)
        clone = stat.copy()
        clone.add(1.0)
        assert stat.seconds == pytest.approx(1.0)
        assert stat.count == 2
