"""Profiling hooks: cProfile wiring and the hot-branch census."""

import pytest

from repro.harness import Scale
from repro.obs.profile import (
    HotBranchObserver,
    hot_branches,
    profile_experiment,
)
from repro.obs.registry import MetricsRegistry

SCALE = Scale(iterations=40, pipeline_instructions=5_000, workloads=("compress",))


class TestProfileExperiment:
    def test_profiles_fig1(self):
        result, stats_text = profile_experiment("fig1", SCALE, limit=5)
        assert result.experiment_id == "fig1"
        assert "function calls" in stats_text
        assert "cumulative" in stats_text

    def test_rejects_unknown_sort(self):
        with pytest.raises(ValueError):
            profile_experiment("fig1", SCALE, sort="bogus")

    def test_rejects_unknown_experiment(self):
        with pytest.raises(KeyError):
            profile_experiment("tab9", SCALE)


class TestHotBranchObserver:
    def test_counts_visits_and_misses(self):
        observer = HotBranchObserver()
        observer(0x10, True, True, {})
        observer(0x10, True, False, {})
        observer(0x20, False, True, {})
        assert observer.visits == {0x10: 2, 0x20: 1}
        assert observer.mispredictions == {0x10: 1, 0x20: 1}

    def test_top_orders_by_misses_then_pc(self):
        observer = HotBranchObserver()
        for __ in range(3):
            observer(0x30, True, False, {})
        observer(0x20, True, False, {})
        observer(0x10, True, False, {})
        top = observer.top(2)
        assert top[0] == (0x30, 3, 3)
        assert top[1] == (0x10, 1, 1)

    def test_registry_histogram_recording(self):
        registry = MetricsRegistry()
        observer = HotBranchObserver(tag="w.p", registry=registry)
        observer(0x40, True, False, {})
        observer(0x40, False, True, {})
        assert registry.histogram_value("hot_branches.w.p") == {"0x40": 2}


class TestHotBranches:
    def test_census_renders_table(self):
        observer, table = hot_branches(
            "compress", "gshare", SCALE, top=3, record_metrics=False
        )
        text = table.to_text()
        assert "Hot branches: compress on gshare" in text
        assert "mispredicts" in text
        assert observer.mispredictions  # something actually mispredicted
        assert len(table.rows) <= 3

    def test_census_feeds_registry(self):
        from repro.obs.registry import REGISTRY

        REGISTRY.discard("hot_branches.compress.gshare")
        hot_branches("compress", "gshare", SCALE, top=2)
        assert REGISTRY.histogram_value("hot_branches.compress.gshare")
