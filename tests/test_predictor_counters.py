"""Unit and property tests for saturating counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import (
    CounterTable,
    SaturatingCounter,
    counter_is_strong,
    counter_predicts_taken,
)


class TestSaturatingCounter:
    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2, value=3)
        counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2, value=0)
        counter.decrement()
        assert counter.value == 0

    def test_standard_two_bit_walk(self):
        counter = SaturatingCounter(bits=2, value=0)
        directions = []
        for taken in (True, True, True, False, False, False):
            counter.update(taken)
            directions.append(counter.predict_taken)
        assert directions == [False, True, True, True, False, False]

    def test_strong_states(self):
        assert SaturatingCounter(bits=2, value=0).is_strong
        assert SaturatingCounter(bits=2, value=3).is_strong
        assert not SaturatingCounter(bits=2, value=1).is_strong
        assert not SaturatingCounter(bits=2, value=2).is_strong

    def test_midpoint_prediction(self):
        assert not SaturatingCounter(bits=4, value=7).predict_taken
        assert SaturatingCounter(bits=4, value=8).predict_taken

    def test_reset(self):
        counter = SaturatingCounter(bits=4, value=9)
        counter.reset()
        assert counter.value == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=4)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.lists(st.booleans(), max_size=100))
    def test_value_always_in_range(self, bits, updates):
        counter = SaturatingCounter(bits=bits)
        for taken in updates:
            counter.update(taken)
            assert 0 <= counter.value <= counter.max_value


class TestCounterTable:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CounterTable(100)

    def test_default_initial_is_weak_not_taken(self):
        table = CounterTable(8, bits=2)
        assert table.read(0) == 1
        assert not table.predict_taken(0)

    def test_update_matches_single_counter(self):
        table = CounterTable(4, bits=2, initial=0)
        reference = SaturatingCounter(bits=2, value=0)
        for taken in (True, True, False, True, False, False, False):
            table.update(2, taken)
            reference.update(taken)
            assert table.read(2) == reference.value

    def test_index_wraps_with_mask(self):
        table = CounterTable(4, bits=2, initial=0)
        table.update(5, True)  # 5 & 3 == 1
        assert table.read(1) == 1

    def test_increment_and_reset(self):
        table = CounterTable(4, bits=4, initial=0)
        for __ in range(20):
            table.increment(3)
        assert table.read(3) == 15
        table.reset(3)
        assert table.read(3) == 0

    def test_is_strong(self):
        table = CounterTable(4, bits=2, initial=0)
        assert table.is_strong(0)
        table.update(0, True)
        assert not table.is_strong(0)

    def test_len(self):
        assert len(CounterTable(64)) == 64

    def test_raw_helpers(self):
        assert counter_is_strong(0, 2)
        assert counter_is_strong(3, 2)
        assert not counter_is_strong(2, 2)
        assert counter_predicts_taken(2, 2)
        assert not counter_predicts_taken(1, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1023), st.booleans()),
            max_size=200,
        ),
    )
    def test_all_values_stay_in_range(self, bits, operations):
        table = CounterTable(64, bits=bits)
        for index, taken in operations:
            table.update(index, taken)
        assert all(0 <= value <= table.max_value for value in table.values)
