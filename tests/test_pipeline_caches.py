"""Tests for the set-associative LRU caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import Cache, CacheConfig


def direct_mapped(lines=4, line_words=4):
    return Cache(
        CacheConfig(
            size_words=lines * line_words, line_words=line_words, associativity=1
        )
    )


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = direct_mapped()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(3)  # same line

    def test_line_granularity(self):
        cache = direct_mapped(line_words=8)
        cache.access(0)
        assert cache.access(7)
        assert not cache.access(8)

    def test_direct_mapped_conflict(self):
        cache = direct_mapped(lines=4, line_words=4)
        cache.access(0)  # set 0
        cache.access(16)  # also set 0 (4 sets * 4 words)
        assert not cache.access(0)  # evicted

    def test_two_way_keeps_both(self):
        cache = Cache(CacheConfig(size_words=32, line_words=4, associativity=2))
        cache.access(0)
        cache.access(16)  # same set, second way
        assert cache.access(0)
        assert cache.access(16)

    def test_lru_evicts_least_recent(self):
        cache = Cache(CacheConfig(size_words=32, line_words=4, associativity=2))
        cache.access(0)
        cache.access(16)
        cache.access(0)  # 16 is now LRU
        cache.access(32)  # same set: evicts 16
        assert cache.access(0)
        assert not cache.access(16)

    def test_statistics(self):
        cache = direct_mapped()
        cache.access(0)
        cache.access(0)
        cache.access(100)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.miss_rate == pytest.approx(2 / 3)
        cache.reset_statistics()
        assert cache.accesses == 0

    def test_contains_has_no_side_effects(self):
        cache = Cache(CacheConfig(size_words=32, line_words=4, associativity=2))
        cache.access(0)
        cache.access(16)
        assert cache.contains(0)
        before = [list(ways) for ways in cache._sets]
        cache.contains(0)
        assert [list(ways) for ways in cache._sets] == before


class TestConfigValidation:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=100)

    def test_cache_must_hold_a_set(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=8, line_words=8, associativity=2)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=64, miss_penalty=-1)

    def test_geometry_properties(self):
        config = CacheConfig(size_words=64, line_words=8, associativity=2)
        assert config.num_lines == 8
        assert config.num_sets == 4


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300)
)
def test_sets_never_exceed_associativity(addresses):
    cache = Cache(CacheConfig(size_words=128, line_words=4, associativity=2))
    for address in addresses:
        cache.access(address)
        assert all(len(ways) <= 2 for ways in cache._sets)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300)
)
def test_repeated_access_is_always_a_hit(addresses):
    cache = Cache(CacheConfig(size_words=128, line_words=4, associativity=2))
    for address in addresses:
        cache.access(address)
        assert cache.access(address)  # immediately re-touching must hit
