"""Tests for the workload generator and the benchmark profiles."""

import pytest

from repro.engine import trace_branches
from repro.isa import Machine
from repro.workloads import (
    SUITE,
    all_profiles,
    generate_program,
    generate_source,
    get_profile,
)
from repro.workloads.generator import GuardSpec, WorkloadProfile
from repro.workloads.sites import BiasedSite


class TestGenerator:
    def test_source_is_assemblable_for_every_profile(self):
        for profile in all_profiles():
            program = generate_program(profile, iterations=2)
            assert len(program) > 10

    def test_every_profile_runs_to_halt(self):
        for name in SUITE:
            program = generate_program(get_profile(name), iterations=3)
            machine = Machine(program)
            machine.run(max_steps=500_000)
            assert machine.halted, f"{name} did not halt"

    def test_generation_is_deterministic(self):
        first = generate_source(get_profile("gcc"), iterations=5)
        second = generate_source(get_profile("gcc"), iterations=5)
        assert first == second

    def test_trace_is_deterministic(self):
        one = trace_branches(generate_program(get_profile("perl"), iterations=20))
        two = trace_branches(generate_program(get_profile("perl"), iterations=20))
        assert list(one.trace) == list(two.trace)

    def test_iterations_scale_instruction_count(self):
        profile = get_profile("compress")
        small = trace_branches(generate_program(profile, iterations=10))
        large = trace_branches(generate_program(profile, iterations=40))
        assert large.stats.instructions > 3 * small.stats.instructions

    def test_iterations_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_source(get_profile("gcc"), iterations=0)

    def test_guarded_block_is_sometimes_skipped(self):
        site = BiasedSite(threshold=512, field_shift=15)
        guarded = WorkloadProfile(
            name="guarded",
            description="one guarded site",
            sites=(site,),
            guards={0: GuardSpec(field_shift=17, threshold=512)},
        )
        traced = trace_branches(generate_program(guarded, iterations=400))
        by_pc = {}
        for pc, taken in traced.trace:
            by_pc.setdefault(pc, []).append(taken)
        counts = sorted(len(seq) for seq in by_pc.values())
        # the guard runs every iteration, the site only ~half the time
        assert counts[0] < 300
        assert counts[-1] >= 400

    def test_subroutine_profiles_use_calls(self):
        source = generate_source(get_profile("gcc"), iterations=1)
        assert "jal sub_0" in source
        assert "jr r31" in source

    def test_guard_index_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad",
                description="guard out of range",
                sites=(BiasedSite(threshold=10, field_shift=15),),
                guards={5: GuardSpec(field_shift=15, threshold=10)},
            )

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="empty", description="", sites=())


class TestProfiles:
    def test_suite_has_eight_benchmarks(self):
        assert len(SUITE) == 8

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_profile("specfp")

    def test_profiles_have_distinct_site_populations(self):
        gcc = get_profile("gcc")
        compress = get_profile("compress")
        assert len(gcc.sites) > 2 * len(compress.sites)

    def test_branch_fraction_is_realistic(self):
        """SPECint-like: roughly a branch every 4-7 instructions."""
        for name in SUITE:
            traced = trace_branches(
                generate_program(get_profile(name), iterations=30)
            )
            assert 0.12 <= traced.stats.branch_fraction <= 0.35, name

    def test_predictability_ordering_matches_paper(self):
        """go must be the hardest workload, vortex among the easiest."""
        from repro.engine import measure_accuracy
        from repro.predictors import GsharePredictor

        accuracy = {}
        for name in ("go", "vortex", "gcc"):
            traced = trace_branches(
                generate_program(get_profile(name), iterations=150)
            )
            accuracy[name] = measure_accuracy(
                traced.trace, GsharePredictor()
            ).accuracy
        assert accuracy["go"] < accuracy["gcc"] < accuracy["vortex"]
