"""Tests for the diagnostic-test metrics (paper §1.1, §2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    QuadrantCounts,
    average_quadrants,
    figure1_curve,
    figure1_family,
    geometric_mean,
    metric_means,
    pvn_from,
    pvp_from,
    quadrant_from_rates,
)


class TestPaperWorkedExample:
    """§2.1: 100 branches, 20 mispredicted, HC for 61 C and 2 I."""

    quadrant = QuadrantCounts(c_hc=61, i_hc=2, c_lc=19, i_lc=18)

    def test_sens(self):
        assert self.quadrant.sens == pytest.approx(61 / 80)  # "76%"

    def test_pvp(self):
        assert self.quadrant.pvp == pytest.approx(61 / 63)  # "97%"

    def test_spec(self):
        assert self.quadrant.spec == pytest.approx(18 / 20)  # "90%"

    def test_pvn(self):
        assert self.quadrant.pvn == pytest.approx(18 / 37)  # "49%"

    def test_accuracy(self):
        assert self.quadrant.accuracy == pytest.approx(0.80)

    def test_coverage(self):
        assert self.quadrant.coverage == pytest.approx(37 / 100)

    def test_jacobsen_confidence_misprediction_rate(self):
        assert self.quadrant.confidence_misprediction_rate == pytest.approx(
            21 / 100
        )


class TestQuadrantBasics:
    def test_record(self):
        quadrant = QuadrantCounts()
        quadrant.record(correct=True, high_confidence=True)
        quadrant.record(correct=True, high_confidence=False)
        quadrant.record(correct=False, high_confidence=True)
        quadrant.record(correct=False, high_confidence=False, weight=2.0)
        assert (quadrant.c_hc, quadrant.c_lc, quadrant.i_hc, quadrant.i_lc) == (
            1,
            1,
            1,
            2,
        )

    def test_normalized_sums_to_one(self):
        quadrant = QuadrantCounts(c_hc=10, i_hc=5, c_lc=3, i_lc=2).normalized()
        assert quadrant.total == pytest.approx(1.0)

    def test_normalized_preserves_metrics(self):
        quadrant = QuadrantCounts(c_hc=61, i_hc=2, c_lc=19, i_lc=18)
        normalized = quadrant.normalized()
        assert normalized.pvn == pytest.approx(quadrant.pvn)
        assert normalized.sens == pytest.approx(quadrant.sens)

    def test_empty_quadrant_is_all_zero(self):
        quadrant = QuadrantCounts()
        assert quadrant.sens == 0.0
        assert quadrant.pvn == 0.0
        assert quadrant.accuracy == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            QuadrantCounts(c_hc=-1)

    def test_addition(self):
        total = QuadrantCounts(c_hc=1) + QuadrantCounts(i_lc=2)
        assert total.c_hc == 1 and total.i_lc == 2

    def test_summary_renders(self):
        text = QuadrantCounts(c_hc=61, i_hc=2, c_lc=19, i_lc=18).summary()
        assert "pvn" in text and "sens" in text

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_metric_identities(self, c_hc, i_hc, c_lc, i_lc):
        quadrant = QuadrantCounts(c_hc=c_hc, i_hc=i_hc, c_lc=c_lc, i_lc=i_lc)
        for value in (quadrant.sens, quadrant.spec, quadrant.pvp, quadrant.pvn):
            assert 0.0 <= value <= 1.0
        # SENS is a property of correct branches only; SPEC of incorrect
        scaled = QuadrantCounts(c_hc=c_hc, i_hc=3 * i_hc, c_lc=c_lc, i_lc=3 * i_lc)
        assert scaled.sens == pytest.approx(quadrant.sens)
        if i_hc or i_lc:
            assert scaled.spec == pytest.approx(quadrant.spec)


class TestUndefinedMetrics:
    """Undefined ratios (empty denominator populations) are not zero:
    an estimator that never emits LC has no PVN at all."""

    all_hc = QuadrantCounts(c_hc=90, i_hc=10)  # no LC tags ever

    def test_metric_or_none_on_empty_population(self):
        assert self.all_hc.metric_or_none("pvn") is None
        assert self.all_hc.metric_or_none("pvp") == pytest.approx(0.9)
        empty = QuadrantCounts()
        for name in ("sens", "spec", "pvp", "pvn", "accuracy"):
            assert empty.metric_or_none(name) is None

    def test_true_zero_stays_a_number(self):
        # LC tags exist but every one is wrong: PVN is genuinely 0.0
        quadrant = QuadrantCounts(c_hc=5, c_lc=3)
        assert quadrant.metric_or_none("pvn") == 0.0
        assert quadrant.defined("pvn")

    def test_defined(self):
        assert not self.all_hc.defined("pvn")
        assert self.all_hc.defined("sens")

    def test_metric_takes_explicit_default(self):
        assert self.all_hc.metric("pvn") == 0.0  # backward-compatible
        assert self.all_hc.metric("pvn", default=float("nan")) != 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            self.all_hc.metric_or_none("frobnication")

    def test_properties_keep_zero_for_compatibility(self):
        assert self.all_hc.pvn == 0.0

    def test_summary_renders_na_not_zero_percent(self):
        text = self.all_hc.summary()
        assert "pvn=   n/a" in text
        assert "pvn= 0.0%" not in text

    def test_table_formatters_map_none_to_na(self):
        from repro.harness.tables import pct, pct1

        assert pct(None) == "n/a"
        assert pct1(None) == "n/a"
        assert pct(0.0) != "n/a"

    def test_interval_formatting_maps_undefined_to_na(self):
        from repro.metrics.stats import format_with_interval

        assert format_with_interval(self.all_hc, "pvn") == "n/a"


class TestAveraging:
    def test_paper_style_average_uses_quadrants(self):
        heavy = QuadrantCounts(c_hc=90, i_hc=0, c_lc=0, i_lc=10)
        light = QuadrantCounts(c_hc=10, i_hc=10, c_lc=40, i_lc=40)
        average = average_quadrants([heavy, light])
        # mean of normalised quadrants, then ratios
        assert average.c_hc == pytest.approx((0.9 + 0.1) / 2)
        assert average.pvn == pytest.approx(
            ((0.10 + 0.40) / 2) / ((0.10 + 0.40) / 2 + (0 + 0.40) / 2)
        )

    def test_metric_means_differ_from_quadrant_average(self):
        one = QuadrantCounts(c_hc=99, i_hc=1, c_lc=0, i_lc=0)
        two = QuadrantCounts(c_hc=1, i_hc=99, c_lc=0, i_lc=0)
        quadrant_style = average_quadrants([one, two]).pvp
        metric_style = metric_means([one, two])["pvp"]
        assert quadrant_style == pytest.approx(0.5)
        assert metric_style == pytest.approx(0.5)
        # with unbalanced populations the two averaging styles diverge
        three = QuadrantCounts(c_hc=20, i_hc=0, c_lc=0, i_lc=80)  # sens 1.0
        four = QuadrantCounts(c_hc=50, i_hc=0, c_lc=50, i_lc=0)  # sens 0.5
        quadrant_sens = average_quadrants([three, four]).sens
        metric_sens = metric_means([three, four])["sens"]
        assert quadrant_sens == pytest.approx(0.35 / 0.60)
        assert metric_sens == pytest.approx(0.75)

    def test_empty_average_rejected(self):
        with pytest.raises(ValueError):
            average_quadrants([])
        with pytest.raises(ValueError):
            metric_means([])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([0.5, 0.5]) == pytest.approx(0.5)
        assert geometric_mean([0, 5]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestParametric:
    def test_elisa_example_from_paper(self):
        """SENS 0.977, SPEC 0.926, disease prevalence 0.0001 -> PVP of a
        positive test for the *disease* is ~0.13%.  In our orientation
        the "disease" is a misprediction, so swap roles: PVN with
        accuracy 0.9999."""
        pvn = pvn_from(sens=0.926, spec=0.977, accuracy=0.9999)
        assert pvn == pytest.approx(0.001319, rel=0.01)

    def test_perfect_estimator(self):
        assert pvp_from(1.0, 1.0, 0.9) == pytest.approx(1.0)
        assert pvn_from(1.0, 1.0, 0.9) == pytest.approx(1.0)

    def test_quadrant_from_rates_consistency(self):
        c_hc, i_hc, c_lc, i_lc = quadrant_from_rates(0.7, 0.8, 0.9)
        quadrant = QuadrantCounts(c_hc=c_hc, i_hc=i_hc, c_lc=c_lc, i_lc=i_lc)
        assert quadrant.pvp == pytest.approx(pvp_from(0.7, 0.8, 0.9))
        assert quadrant.pvn == pytest.approx(pvn_from(0.7, 0.8, 0.9))
        assert quadrant.accuracy == pytest.approx(0.9)

    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_closed_forms_match_quadrant_properties(self, sens, spec, accuracy):
        c_hc, i_hc, c_lc, i_lc = quadrant_from_rates(sens, spec, accuracy)
        quadrant = QuadrantCounts(c_hc=c_hc, i_hc=i_hc, c_lc=c_lc, i_lc=i_lc)
        assert quadrant.sens == pytest.approx(sens)
        assert quadrant.spec == pytest.approx(spec)
        assert quadrant.pvp == pytest.approx(pvp_from(sens, spec, accuracy))
        assert quadrant.pvn == pytest.approx(pvn_from(sens, spec, accuracy))

    def test_pvn_decreases_with_accuracy(self):
        """The paper's core observation: better predictors depress PVN."""
        low = pvn_from(0.6, 0.9, 0.85)
        high = pvn_from(0.6, 0.9, 0.95)
        assert high < low

    def test_curve_construction(self):
        curve = figure1_curve("sens", spec=0.7, accuracy=0.9, steps=10)
        assert len(curve.points) == 11
        assert len(curve.decile_markers()) == 11

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            figure1_curve("pvp", spec=0.7, accuracy=0.9)
        with pytest.raises(ValueError):
            figure1_curve("sens", sens=0.5, spec=0.7, accuracy=0.9)
        with pytest.raises(ValueError):
            figure1_curve("sens", accuracy=0.9)
        with pytest.raises(ValueError):
            figure1_curve("sens", spec=0.7)

    def test_family_has_five_curves(self):
        assert len(figure1_family()) == 5

    def test_range_validation(self):
        with pytest.raises(ValueError):
            pvp_from(1.5, 0.5, 0.5)
