"""Graceful-interrupt tests: the abort flag, ``run_aborted`` journal
event, SIGINT delivered to a real ``repro run-all`` process, and
``--resume`` continuing a drained run."""

import io
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness import (
    SMOKE,
    RunAborted,
    abort_requested,
    clear_abort,
    request_abort,
    run_all,
)
from repro.obs.journal import RunJournal, validate_journal


@pytest.fixture(autouse=True)
def clean_abort_flag():
    clear_abort()
    yield
    clear_abort()


class TestAbortFlag:
    def test_flag_round_trip(self):
        assert not abort_requested()
        request_abort()
        assert abort_requested()
        clear_abort()
        assert not abort_requested()

    def test_preset_abort_raises_before_any_experiment(self):
        journal = RunJournal(io.StringIO())
        request_abort()
        with pytest.raises(RunAborted) as info:
            run_all(SMOKE, only=["tab3"], jobs=1, journal=journal)
        assert info.value.results == {}
        assert journal.event_counts["run_aborted"] == 1
        assert "run_finished" not in journal.event_counts

    def test_abort_mid_run_keeps_finished_results(self):
        """Raise the flag after the first experiment: it stays in the
        partial results and the journal lists it as finished."""
        stream = io.StringIO()
        journal = RunJournal(stream)
        emitted = journal.emit

        def emit_and_abort(event, **fields):
            record = emitted(event, **fields)
            if event == "experiment_finished":
                request_abort()
            return record

        journal.emit = emit_and_abort
        with pytest.raises(RunAborted) as info:
            run_all(SMOKE, only=["tab3", "fig1"], jobs=1, journal=journal)
        assert list(info.value.results) == ["tab3"]
        lines = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        aborted = [r for r in lines if r["event"] == "run_aborted"]
        assert len(aborted) == 1
        assert aborted[0]["reason"] == "signal"
        assert aborted[0]["finished"] == ["tab3"]


CHILD_TEMPLATE = """
import os, signal
from repro.obs import journal as journal_mod

original_emit = journal_mod.RunJournal.emit
state = {{"finished": 0}}

def interrupting_emit(self, event, **fields):
    record = original_emit(self, event, **fields)
    if event == "experiment_finished":
        state["finished"] += 1
        if state["finished"] == {interrupt_after}:
            os.kill(os.getpid(), signal.SIGINT)
    return record

journal_mod.RunJournal.emit = interrupting_emit
from repro.cli import main
raise SystemExit(main({argv!r}))
"""


class TestSigintRegression:
    """A real ``repro run-all`` process receives SIGINT mid-battery:
    it must drain, exit 130 with a valid journal ending in
    ``run_aborted``, and leave checkpoints ``--resume`` can use."""

    ARGS = [
        "run-all",
        "--only",
        "tab3,fig1",
        "--scale",
        "smoke",
        "--workloads",
        "compress",
    ]

    def _run(self, tmp_path, argv, interrupt_after=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env.pop("REPRO_FAULTS", None)
        if interrupt_after is None:
            code = (
                "from repro.cli import main\n"
                f"raise SystemExit(main({argv!r}))\n"
            )
        else:
            code = CHILD_TEMPLATE.format(
                interrupt_after=interrupt_after, argv=argv
            )
        return subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_sigint_drains_then_resume_completes(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        interrupted = self._run(
            tmp_path,
            self.ARGS + ["--journal", str(journal)],
            interrupt_after=1,
        )
        assert interrupted.returncode == 130, interrupted.stderr
        assert "draining in-flight experiments" in interrupted.stderr
        assert f"--resume {journal}" in interrupted.stderr

        # the journal is valid and ends with the terminal abort event
        events, problems = validate_journal(journal)
        assert not problems
        records = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        kinds = [r["event"] for r in records]
        assert "run_aborted" in kinds
        assert "run_finished" not in kinds
        aborted = records[kinds.index("run_aborted")]
        assert aborted["finished"] == ["tab3"]

        # --resume skips the drained experiment and finishes the rest
        resumed = self._run(
            tmp_path,
            self.ARGS
            + [
                "--resume",
                str(journal),
                "--journal",
                str(tmp_path / "resumed.jsonl"),
            ],
        )
        assert resumed.returncode == 0, resumed.stderr
        resumed_records = [
            json.loads(line)
            for line in (tmp_path / "resumed.jsonl").read_text().splitlines()
        ]
        resumed_kinds = [r["event"] for r in resumed_records]
        assert "run_finished" in resumed_kinds
        skipped = [
            r["experiment"]
            for r in resumed_records
            if r["event"] == "experiment_skipped"
        ]
        assert skipped == ["tab3"]
