"""Unit tests for instruction semantics."""

import pytest

from repro.isa import Instruction, OpCategory, Opcode, branch_taken, evaluate_alu
from repro.isa.instructions import WORD_MASK, to_signed, to_unsigned


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(1 << 31)

    def test_to_signed_boundary(self):
        assert to_signed(0x7FFFFFFF) == (1 << 31) - 1

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(1 << 32) == 0

    def test_roundtrip(self):
        for value in (0, 1, 2**31 - 1, 2**31, 2**32 - 1):
            assert to_unsigned(to_signed(value)) == value


class TestAlu:
    def test_add_wraps(self):
        assert evaluate_alu(Opcode.ADD, 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert evaluate_alu(Opcode.SUB, 0, 1) == 0xFFFFFFFF

    def test_mul_truncates(self):
        assert evaluate_alu(Opcode.MUL, 0x10000, 0x10000) == 0

    def test_logic(self):
        assert evaluate_alu(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert evaluate_alu(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert evaluate_alu(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts(self):
        assert evaluate_alu(Opcode.SLL, 1, 4) == 16
        assert evaluate_alu(Opcode.SRL, 0x80000000, 31) == 1
        assert evaluate_alu(Opcode.SRA, 0x80000000, 31) == 0xFFFFFFFF

    def test_shift_amount_masked_to_five_bits(self):
        assert evaluate_alu(Opcode.SLL, 1, 33) == 2

    def test_slt_signed(self):
        assert evaluate_alu(Opcode.SLT, 0xFFFFFFFF, 0) == 1  # -1 < 0
        assert evaluate_alu(Opcode.SLT, 0, 0xFFFFFFFF) == 0

    def test_sltu_unsigned(self):
        assert evaluate_alu(Opcode.SLTU, 0xFFFFFFFF, 0) == 0
        assert evaluate_alu(Opcode.SLTU, 0, 0xFFFFFFFF) == 1

    def test_immediate_aliases(self):
        assert evaluate_alu(Opcode.ADDI, 2, 3) == 5
        assert evaluate_alu(Opcode.ANDI, 0b111, 0b101) == 0b101

    def test_non_alu_opcode_rejected(self):
        with pytest.raises(ValueError):
            evaluate_alu(Opcode.BEQ, 1, 2)


class TestBranchConditions:
    def test_beq(self):
        assert branch_taken(Opcode.BEQ, 7, 7)
        assert not branch_taken(Opcode.BEQ, 7, 8)

    def test_bne(self):
        assert branch_taken(Opcode.BNE, 7, 8)
        assert not branch_taken(Opcode.BNE, 7, 7)

    def test_blt_signed(self):
        assert branch_taken(Opcode.BLT, 0xFFFFFFFF, 0)  # -1 < 0
        assert not branch_taken(Opcode.BLT, 0, 0xFFFFFFFF)

    def test_bge_signed(self):
        assert branch_taken(Opcode.BGE, 0, 0xFFFFFFFF)
        assert branch_taken(Opcode.BGE, 3, 3)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.ADD, 1, 2)


class TestInstruction:
    def test_category_lookup(self):
        assert Opcode.ADD.category is OpCategory.ALU_RRR
        assert Opcode.LW.category is OpCategory.LOAD
        assert Opcode.BEQ.category is OpCategory.BRANCH
        assert Opcode.JAL.category is OpCategory.JUMP
        assert Opcode.HALT.category is OpCategory.SYSTEM

    def test_every_opcode_has_a_category(self):
        for opcode in Opcode:
            assert opcode.category is not None

    def test_is_conditional_branch(self):
        assert Instruction(Opcode.BNE, rs1=1, rs2=2, imm=0).is_conditional_branch
        assert not Instruction(Opcode.J, imm=0).is_conditional_branch

    def test_is_control(self):
        assert Instruction(Opcode.J, imm=0).is_control
        assert Instruction(Opcode.JR, rs1=31).is_control
        assert not Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).is_control

    def test_register_validation(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=32)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rs1=-1)

    def test_str_forms(self):
        assert str(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"
        assert str(Instruction(Opcode.LW, rd=1, rs1=2, imm=4)) == "lw r1, 4(r2)"
        assert "beq" in str(Instruction(Opcode.BEQ, rs1=1, rs2=0, imm=7))


class TestWordMask:
    def test_word_mask(self):
        assert WORD_MASK == 0xFFFFFFFF
