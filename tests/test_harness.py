"""Tests for the experiment harness: every experiment runs at test
scale, and the paper's qualitative shapes hold."""

import pytest

from repro.harness import EXPERIMENTS, Scale, run_all, run_experiment
from repro.harness.runner import render_report
from repro.harness.tables import TextTable, pct

#: One shared small scale so the memoised intermediates are reused.
SCALE = Scale(
    iterations=150,
    pipeline_instructions=15_000,
    workloads=("compress", "gcc", "go", "vortex"),
)


@pytest.fixture(scope="module")
def results():
    return run_all(SCALE)


class TestBattery:
    def test_all_experiments_present(self, results):
        assert set(results) == set(EXPERIMENTS)

    def test_every_experiment_renders(self, results):
        for result in results.values():
            text = result.to_text()
            assert result.experiment_id in text
            assert len(text) > 100

    def test_report_rendering(self, results):
        report = render_report(results, SCALE)
        assert "tab2" in report and "fig6" in report

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("tab9", SCALE)
        with pytest.raises(KeyError):
            run_all(SCALE, only=["nope"])


class TestFigure1Shapes:
    def test_pvp_monotone_in_sens(self, results):
        for curve in results["fig1"].data["curves"]:
            if curve.varying != "sens":
                continue
            pvps = [pvp for __, pvp, __ in curve.points]
            assert all(b >= a - 1e-12 for a, b in zip(pvps, pvps[1:]))

    def test_pvn_monotone_in_spec(self, results):
        for curve in results["fig1"].data["curves"]:
            if curve.varying != "spec":
                continue
            pvns = [pvn for __, __, pvn in curve.points]
            assert all(b >= a - 1e-12 for a, b in zip(pvns, pvns[1:]))


class TestTable1Shapes:
    def test_fetch_commit_ratio_in_paper_range(self, results):
        for workload, ratio in results["tab1"].data["ratios"].items():
            assert 1.05 <= ratio <= 2.5, workload

    def test_predictability_ordering(self, results):
        accuracies = results["tab1"].data["accuracies"]
        assert accuracies["go"]["gshare"] < accuracies["gcc"]["gshare"]
        assert accuracies["gcc"]["gshare"] < accuracies["vortex"]["gshare"]

    def test_mcfarling_beats_gshare(self, results):
        accuracies = results["tab1"].data["accuracies"]
        for workload, accs in accuracies.items():
            assert accs["mcfarling"] >= accs["gshare"] - 0.01, workload


class TestTable2Shapes:
    """The paper's qualitative claims about the estimator landscape."""

    def test_jrs_has_highest_pvp_on_gshare(self, results):
        averages = results["tab2"].data["averages"]
        jrs_pvp = averages[("gshare", "jrs")].pvp
        for estimator in ("satcnt", "pattern", "static"):
            assert jrs_pvp >= averages[("gshare", estimator)].pvp - 0.02

    def test_satcnt_more_sensitive_less_specific_than_jrs(self, results):
        averages = results["tab2"].data["averages"]
        assert (
            averages[("gshare", "satcnt")].sens > averages[("gshare", "jrs")].sens
        )
        assert (
            averages[("gshare", "satcnt")].spec < averages[("gshare", "jrs")].spec
        )

    def test_pattern_collapses_on_global_history(self, results):
        averages = results["tab2"].data["averages"]
        assert averages[("gshare", "pattern")].sens < 0.25
        assert averages[("mcfarling", "pattern")].sens < 0.25

    def test_pattern_recovers_on_sag(self, results):
        averages = results["tab2"].data["averages"]
        assert (
            averages[("sag", "pattern")].sens
            > 3 * averages[("gshare", "pattern")].sens
        )

    def test_pvn_drops_with_better_predictor(self, results):
        """Fewer mispredictions left to find: every estimator's PVN
        sinks moving gshare -> McFarling (paper §5)."""
        averages = results["tab2"].data["averages"]
        for estimator in ("jrs", "satcnt"):
            assert (
                averages[("mcfarling", estimator)].pvn
                < averages[("gshare", estimator)].pvn
            )

    def test_no_estimator_inverts_prediction_profitably(self, results):
        """§2.2: PVN consistently > 50% (or PVP < 50%) never happens."""
        averages = results["tab2"].data["averages"]
        for quadrant in averages.values():
            assert quadrant.pvn < 0.5 or quadrant.pvp > 0.5


class TestJRSSweepShapes:
    def test_enhanced_dominates_original(self, results):
        """Figure 3: at the saturation threshold the enhanced index has
        at least the PVP and PVN of the original."""
        enhanced = results["fig3"].data["enhanced"].point(15).quadrant
        original = results["fig3"].data["original"].point(15).quadrant
        assert enhanced.pvn >= original.pvn - 0.01
        assert enhanced.pvp >= original.pvp - 0.01

    def test_bigger_tables_help(self, results):
        lines = results["fig4"].data["lines"]
        small = lines[64].point(15).quadrant
        large = lines[4096].point(15).quadrant
        assert large.pvp >= small.pvp - 0.01

    def test_threshold16_pvn_equals_misprediction_rate(self, results):
        for figure in ("fig4", "fig5"):
            lines = results[figure].data["lines"]
            for line in lines.values():
                quadrant = line.point(16).quadrant
                assert quadrant.high_confidence == 0
                assert quadrant.pvn == pytest.approx(
                    quadrant.misprediction_rate, abs=1e-9
                )

    def test_mcfarling_pvn_lower_than_gshare(self, results):
        gshare = results["fig4"].data["lines"][4096].point(15).quadrant
        mcfarling = results["fig5"].data["lines"][4096].point(15).quadrant
        assert mcfarling.pvn < gshare.pvn


class TestTable3Shapes:
    def test_both_strong_is_more_specific(self, results):
        both = results["tab3"].data["both_mean"]
        either = results["tab3"].data["either_mean"]
        assert both.spec > either.spec
        assert either.sens > both.sens


class TestDistanceFigures:
    def test_mispredictions_cluster(self, results):
        for figure in ("fig6", "fig7"):
            curve = results[figure].data["all"]
            assert curve.clustering_ratio > 1.3, figure

    def test_all_branches_worse_than_committed_near_zero(self, results):
        curve_all = results["fig6"].data["all"]
        curve_committed = results["fig6"].data["committed"]
        assert (
            curve_all.buckets[0].misprediction_rate
            >= curve_committed.buckets[0].misprediction_rate - 0.02
        )

    def test_perceived_skewed_to_larger_distances(self, results):
        """Figures 8/9: detection delay stretches the elevated-rate
        region, so at distance 1-3 the perceived curve sits above the
        precise curve."""
        precise = results["fig6"].data["all"]
        perceived = results["fig8"].data["all"]
        near_precise = sum(
            bucket.mispredictions for bucket in precise.buckets[1:4]
        ) / max(1, sum(bucket.branches for bucket in precise.buckets[1:4]))
        near_perceived = sum(
            bucket.mispredictions for bucket in perceived.buckets[1:4]
        ) / max(1, sum(bucket.branches for bucket in perceived.buckets[1:4]))
        assert near_perceived > near_precise

    def test_rates_decay_with_distance(self, results):
        curve = results["fig6"].data["all"]
        head = curve.buckets[0].misprediction_rate
        tail = curve.buckets[-1].misprediction_rate
        assert head > 1.5 * tail


class TestTable4Shapes:
    def test_distance_threshold_trades_sens_for_spec(self, results):
        rows = results["tab4"].data["rows"]
        for predictor in ("gshare", "mcfarling"):
            sens = [rows[("distance", predictor, t)].sens for t in range(1, 8)]
            spec = [rows[("distance", predictor, t)].spec for t in range(1, 8)]
            assert sens == sorted(sens, reverse=True)
            assert spec == sorted(spec)

    def test_distance_estimator_is_competitive(self, results):
        """A single counter approaches the cheap estimators' PVN."""
        rows = results["tab4"].data["rows"]
        distance_pvn = rows[("distance", "gshare", 2)].pvn
        jrs_pvn = rows[("jrs", "gshare", None)].pvn
        assert distance_pvn > 0.5 * jrs_pvn


class TestBoosting:
    def test_boosted_pvn_exceeds_base(self, results):
        boosting = results["boost"].data["boosting"]
        for (label, k), (base, empirical, analytic) in boosting.items():
            if k == 1:
                assert empirical == pytest.approx(base, abs=1e-9)
            else:
                assert empirical > base

    def test_bernoulli_model_is_accurate(self, results):
        boosting = results["boost"].data["boosting"]
        for (label, k), (base, empirical, analytic) in boosting.items():
            assert empirical == pytest.approx(analytic, abs=0.10)


class TestTextTable:
    def test_row_width_validation(self):
        table = TextTable(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_rendering_alignment(self):
        table = TextTable(title="t", headers=["name", "value"])
        table.add_row(["x", "1"])
        table.add_note("a note")
        text = table.to_text()
        assert "name" in text and "note: a note" in text

    def test_pct(self):
        assert pct(0.567) == "57%"
