"""Shared fixtures: small, cached workload runs for fast tests."""

import os

import pytest

from repro.engine import cache as artifact_cache
from repro.engine import trace_branches, workload_program
from repro.isa import assemble

#: Iteration count used by the test-scale workload runs.
TEST_ITERATIONS = 60


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_cache(tmp_path_factory):
    """Point the artifact cache at a per-session directory.

    Tests still exercise the on-disk cache (within the session), but
    never read artifacts left behind by other runs or other checkouts.
    An explicitly exported ``REPRO_CACHE_DIR`` is honoured.
    """
    if not os.environ.get(artifact_cache.DIR_ENV):
        artifact_cache.configure(
            root=tmp_path_factory.mktemp("artifact-cache"), enabled=True
        )
    yield


@pytest.fixture(scope="session")
def compress_program():
    return workload_program("compress", TEST_ITERATIONS)


@pytest.fixture(scope="session")
def compress_trace(compress_program):
    return trace_branches(compress_program).trace


@pytest.fixture(scope="session")
def gcc_trace():
    return trace_branches(workload_program("gcc", TEST_ITERATIONS)).trace


@pytest.fixture()
def tiny_loop_program():
    """A hand-written 10-iteration counted loop (1 branch site)."""
    return assemble(
        """
        start:  li r1, 10
        loop:   addi r2, r2, 1
                addi r1, r1, -1
                bne r1, r0, loop
                halt
        """
    )


@pytest.fixture()
def alternating_program():
    """A branch that alternates taken/not-taken for 40 visits."""
    return assemble(
        """
        start:  li r1, 40
        loop:   xori r3, r3, 1
                beq r3, r0, skip
                addi r4, r4, 1
        skip:   addi r1, r1, -1
                bne r1, r0, loop
                halt
        """
    )
