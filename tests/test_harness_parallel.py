"""Parallel scheduler tests: warm-up planning, serial equivalence,
disk-cache integration of the experiment intermediates."""

import pytest

from repro.engine import cache as artifact_cache
from repro.engine import clear_cache
from repro.harness import (
    EXPERIMENTS,
    SMOKE,
    Scale,
    clear_memoised,
    plan_warm_tasks,
    render_report,
    run_all,
)
from repro.harness.parallel import CRASH_ENV, default_jobs
from repro.obs.journal import RunJournal, read_journal


@pytest.fixture()
def isolated_cache(tmp_path):
    """A fresh disk cache + empty in-process memo tier."""
    previous_root = artifact_cache.get_cache().root
    previous_enabled = artifact_cache.get_cache().enabled
    artifact_cache.configure(root=tmp_path / "cache", enabled=True)
    clear_memoised()
    clear_cache()
    yield artifact_cache.get_cache()
    artifact_cache.configure(root=previous_root, enabled=previous_enabled)
    clear_memoised()
    clear_cache()


class TestWarmPlan:
    def test_trace_tasks_cover_workloads(self):
        trace_tasks, __ = plan_warm_tasks(list(EXPERIMENTS), SMOKE)
        workloads = {args[0] for kind, args in trace_tasks}
        assert workloads == set(SMOKE.workloads)

    def test_heavy_tasks_cover_pipeline_and_measurement(self):
        __, heavy = plan_warm_tasks(["tab1", "fig7", "tab2"], SMOKE)
        kinds = {}
        for kind, args in heavy:
            kinds.setdefault(kind, []).append(args)
        pipeline_predictors = {args[1] for args in kinds["pipeline"]}
        assert pipeline_predictors == {"gshare", "mcfarling"}
        measurement_predictors = {args[0] for args in kinds["measurement"]}
        assert measurement_predictors == {"gshare", "mcfarling", "sag"}

    def test_fig1_needs_nothing(self):
        trace_tasks, heavy = plan_warm_tasks(["fig1"], SMOKE)
        assert trace_tasks == [] and heavy == []

    def test_no_duplicate_tasks(self):
        trace_tasks, heavy = plan_warm_tasks(list(EXPERIMENTS), SMOKE)
        assert len(trace_tasks) == len(set(trace_tasks))
        assert len(heavy) == len(set(heavy))


class TestSerialParallelEquivalence:
    def test_jobs4_tables_byte_identical_to_jobs1(self, isolated_cache):
        serial = run_all(SMOKE, jobs=1)
        clear_memoised()
        parallel = run_all(SMOKE, jobs=4)
        assert list(serial) == list(parallel)
        for experiment_id in serial:
            assert (
                serial[experiment_id].to_text()
                == parallel[experiment_id].to_text()
            ), experiment_id

    def test_parallel_results_carry_timing(self, isolated_cache):
        results = run_all(SMOKE, only=["fig1", "tab3"], jobs=2)
        assert all(result.duration_s is not None for result in results.values())

    def test_merge_order_is_selection_order(self, isolated_cache):
        results = run_all(SMOKE, only=["tab3", "fig1"], jobs=2)
        assert list(results) == ["tab3", "fig1"]


class TestDiskCacheIntegration:
    def test_warm_rerun_hits_disk(self, isolated_cache):
        run_all(SMOKE, only=["tab2"], jobs=1)
        assert isolated_cache.stats.writes > 0
        # a fresh process is simulated by dropping the in-memory tier
        clear_memoised()
        clear_cache()
        before = isolated_cache.stats.snapshot()
        run_all(SMOKE, only=["tab2"], jobs=1)
        delta = isolated_cache.stats.since(before)
        assert delta.hits > 0
        assert delta.misses == 0

    def test_scale_change_misses(self, isolated_cache):
        run_all(SMOKE, only=["tab2"], jobs=1)
        clear_memoised()
        clear_cache()
        before = isolated_cache.stats.snapshot()
        other = Scale(
            iterations=(SMOKE.iterations or 0) + 10,
            pipeline_instructions=SMOKE.pipeline_instructions,
            workloads=SMOKE.workloads,
        )
        run_all(other, only=["tab2"], jobs=1)
        delta = isolated_cache.stats.since(before)
        assert delta.misses > 0

    def test_report_contains_performance_section(self, isolated_cache):
        results = run_all(SMOKE, only=["fig1", "tab3"], jobs=1)
        report = render_report(results, SMOKE)
        assert "Battery performance" in report
        assert "wall time" in report


class TestPerExperimentFallback:
    """A crashing worker costs only its own experiment (the bugfix):
    survivors keep their parallel results, only the failed one re-runs
    serially -- after its retry budget (``retries=0`` here, to pin the
    attempt count) -- and the journal records the failure with a
    classification and a traceback."""

    SELECTION = ["fig1", "tab3", "fig3"]

    def _run_with_crash(self, tmp_path, monkeypatch, crash="tab3"):
        from repro.faults import STATE_ENV, reset_active_faults

        monkeypatch.setenv(CRASH_ENV, crash)
        monkeypatch.setenv(STATE_ENV, str(tmp_path / "fault-state"))
        reset_active_faults()
        path = tmp_path / "crash.jsonl"
        try:
            with RunJournal(path) as journal:
                results = run_all(
                    SMOKE, only=self.SELECTION, jobs=2, journal=journal, retries=0
                )
        finally:
            reset_active_faults()
        return results, read_journal(path)

    def test_only_failed_experiment_reruns_serially(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        results, events = self._run_with_crash(tmp_path, monkeypatch)

        failed = [e for e in events if e["event"] == "experiment_failed"]
        assert [e["experiment"] for e in failed] == ["tab3"]
        assert failed[0]["classification"] == "crash"
        assert "injected crash fault" in failed[0]["error"]
        assert "InjectedCrash" in failed[0]["traceback"]

        serial_starts = [
            e
            for e in events
            if e["event"] == "experiment_started" and e["mode"] == "serial"
        ]
        assert [e["experiment"] for e in serial_starts] == ["tab3"]

        finished = {
            e["experiment"]: e["mode"]
            for e in events
            if e["event"] == "experiment_finished"
        }
        assert finished == {"fig1": "parallel", "fig3": "parallel", "tab3": "serial"}

    def test_battery_still_complete_and_ordered(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        results, __ = self._run_with_crash(tmp_path, monkeypatch)
        assert list(results) == self.SELECTION
        assert all(result.duration_s is not None for result in results.values())
        report = render_report(results, SMOKE)
        for experiment_id in self.SELECTION:
            assert results[experiment_id].to_text() in report

    def test_crashed_result_matches_clean_serial_run(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        results, __ = self._run_with_crash(tmp_path, monkeypatch)
        monkeypatch.delenv(CRASH_ENV, raising=False)
        clear_memoised()
        clean = run_all(SMOKE, only=["tab3"], jobs=1)
        assert results["tab3"].to_text() == clean["tab3"].to_text()


class TestRunAllContract:
    def test_unknown_id_rejected_before_pool_spinup(self):
        with pytest.raises(KeyError):
            run_all(SMOKE, only=["nope"], jobs=4)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert default_jobs() == 1

    def test_default_jobs_warns_on_unparseable_value(self, monkeypatch, capsys):
        """The bugfix: a bad REPRO_JOBS is announced, not swallowed."""
        monkeypatch.setenv("REPRO_JOBS", "four")
        import io

        stream = io.StringIO()
        assert default_jobs(journal=RunJournal(stream)) == 1
        assert "'four'" in capsys.readouterr().err
        assert '"context": "REPRO_JOBS"' in stream.getvalue()

    def test_default_jobs_quiet_on_valid_value(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert default_jobs() == 2
        assert capsys.readouterr().err == ""


class TestReportClock:
    def test_injectable_clock_is_deterministic(self, isolated_cache):
        results = run_all(SMOKE, only=["fig1"], jobs=1)
        one = render_report(
            results, SMOKE, clock=lambda: "2026-01-01 00:00:00", performance=False
        )
        two = render_report(
            results, SMOKE, clock=lambda: "2026-01-01 00:00:00", performance=False
        )
        assert one == two
        assert "generated: 2026-01-01 00:00:00" in one

    def test_default_clock_used_when_absent(self, isolated_cache):
        results = run_all(SMOKE, only=["fig1"], jobs=1)
        report = render_report(results, SMOKE)
        assert "generated: 2" in report  # a real timestamp
