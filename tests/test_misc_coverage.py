"""Edge-case coverage for small helpers across the package."""

import pytest

from repro.engine import clear_cache, workload_program
from repro.harness import paper_values
from repro.pipeline.records import PipelineStats


class TestPipelineStats:
    def test_zero_division_guards(self):
        stats = PipelineStats()
        assert stats.fetch_to_commit_ratio == 0.0
        assert stats.committed_accuracy == 0.0
        assert stats.all_accuracy == 0.0
        assert stats.ipc == 0.0

    def test_derived_values(self):
        stats = PipelineStats(
            cycles=100,
            fetched_instructions=300,
            committed_instructions=200,
            fetched_branches=50,
            committed_branches=40,
            committed_mispredictions=4,
            fetched_mispredictions=10,
        )
        assert stats.fetch_to_commit_ratio == pytest.approx(1.5)
        assert stats.committed_accuracy == pytest.approx(0.9)
        assert stats.all_accuracy == pytest.approx(0.8)
        assert stats.ipc == pytest.approx(2.0)


class TestCorpusCacheManagement:
    def test_clear_cache_invalidates_identity(self):
        first = workload_program("compress", 7)
        clear_cache()
        second = workload_program("compress", 7)
        assert first is not second
        # determinism still holds across the cache boundary
        assert [str(i) for i in first.instructions] == [
            str(i) for i in second.instructions
        ]


class TestPaperValues:
    def test_format_reference_complete(self):
        text = paper_values.format_reference((0.56, 0.96, 0.98, 0.30))
        assert text == "sens 56% spec 96% pvp 98% pvn 30%"

    def test_format_reference_partial(self):
        text = paper_values.format_reference((0.17, 0.94, 0.93, None))
        assert text.endswith("pvn --")

    def test_reference_tables_have_sane_ranges(self):
        for metrics in list(paper_values.TABLE2.values()) + list(
            paper_values.TABLE4_DISTANCE.values()
        ):
            for value in metrics:
                assert value is None or 0.0 <= value <= 1.0

    def test_distance_rows_cover_thresholds_one_to_seven(self):
        for predictor in ("gshare", "mcfarling"):
            for threshold in range(1, 8):
                assert (predictor, threshold) in paper_values.TABLE4_DISTANCE


class TestProgramHelpers:
    def test_static_branch_sites(self):
        program = workload_program("compress", 5)
        sites = program.static_branch_sites()
        assert sites
        assert all(
            program.instructions[pc].is_conditional_branch for pc in sites
        )

    def test_fetch_bounds(self):
        program = workload_program("compress", 5)
        with pytest.raises(IndexError):
            program.fetch(len(program))
        assert program.fetch(0) is program.instructions[0]
