"""Unit tests for the functional machine, including speculation support."""

import pytest

from repro.isa import Machine, MachineFault, assemble


def run_to_halt(source: str) -> Machine:
    machine = Machine(assemble(source))
    machine.run()
    assert machine.halted
    return machine


class TestExecution:
    def test_arithmetic_program(self):
        machine = run_to_halt(
            """
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            halt
            """
        )
        assert machine.regs[3] == 42

    def test_r0_is_hardwired_zero(self):
        machine = run_to_halt("addi r0, r0, 99\nhalt")
        assert machine.regs[0] == 0

    def test_loop_counts(self, tiny_loop_program):
        machine = Machine(tiny_loop_program)
        machine.run()
        assert machine.regs[2] == 10

    def test_memory_roundtrip(self):
        machine = run_to_halt(
            """
            .data
            buf: .space 4
            .text
            start: li r1, 123
            la r2, buf
            sw r1, 2(r2)
            lw r3, 2(r2)
            halt
            """
        )
        assert machine.regs[3] == 123

    def test_unmapped_load_reads_zero(self):
        machine = run_to_halt("lw r1, 5000(r0)\nhalt")
        assert machine.regs[1] == 0

    def test_jal_jr_roundtrip(self):
        machine = run_to_halt(
            """
            start: jal func
            halt
            func: li r1, 55
            jr r31
            """
        )
        assert machine.regs[1] == 55

    def test_branch_taken_path(self, alternating_program):
        machine = Machine(alternating_program)
        machine.run()
        assert machine.regs[4] == 20  # taken on every other of 40 visits

    def test_instructions_retired_counts(self):
        machine = run_to_halt("nop\nnop\nhalt")
        assert machine.instructions_retired == 3

    def test_step_result_fields(self):
        machine = Machine(assemble("beq r0, r0, 2\nnop\nhalt"))
        result = machine.step()
        assert result.taken is True
        assert result.next_pc == 2
        assert result.pc == 0

    def test_run_respects_max_steps(self):
        machine = Machine(assemble("loop: j loop\nhalt"))
        steps = machine.run(max_steps=25)
        assert steps == 25
        assert not machine.halted


class TestFaults:
    def test_step_after_halt_raises(self):
        machine = run_to_halt("halt")
        with pytest.raises(MachineFault):
            machine.step()

    def test_fetch_outside_program_raises(self):
        machine = Machine(assemble("jr r5\nhalt"))
        machine.regs[5] = 999
        with pytest.raises(MachineFault, match="outside"):
            machine.step()
            machine.step()


class TestSpeculationSupport:
    def test_snapshot_restore_registers(self):
        machine = Machine(assemble("li r1, 1\nli r1, 2\nhalt"))
        machine.step()
        snap = machine.snapshot()
        machine.step()
        assert machine.regs[1] == 2
        machine.restore(snap)
        assert machine.regs[1] == 1
        assert machine.pc == 1

    def test_restore_undoes_memory_writes(self):
        machine = Machine(
            assemble(
                """
                .data
                buf: .word 7
                .text
                start: snapshot_here: li r1, 99
                sw r1, 0(r0)
                sw r1, 50(r0)
                halt
                """
            )
        )
        snap = machine.snapshot()
        machine.run()
        assert machine.memory[0] == 99
        assert machine.memory[50] == 99
        machine.restore(snap)
        assert machine.memory[0] == 7  # original .data value restored
        assert 50 not in machine.memory  # fresh address evaporates

    def test_restore_clears_halted(self):
        machine = Machine(assemble("halt"))
        snap = machine.snapshot()
        machine.step()
        assert machine.halted
        machine.restore(snap)
        assert not machine.halted
        machine.step()
        assert machine.halted

    def test_nested_restore_to_older_snapshot(self):
        machine = Machine(
            assemble("sw r0, 1(r0)\nsw r0, 2(r0)\nsw r0, 3(r0)\nhalt")
        )
        older = machine.snapshot()
        machine.step()
        newer = machine.snapshot()
        machine.step()
        machine.restore(newer)
        assert 1 in machine.memory and 2 not in machine.memory
        machine.restore(older)
        assert 1 not in machine.memory

    def test_restore_newer_snapshot_after_rollback_rejected(self):
        machine = Machine(assemble("sw r0, 1(r0)\nsw r0, 2(r0)\nhalt"))
        older = machine.snapshot()
        machine.step()
        newer = machine.snapshot()
        machine.step()
        machine.restore(older)
        with pytest.raises(ValueError):
            machine.restore(newer)

    def test_trim_journal(self):
        machine = Machine(assemble("sw r0, 1(r0)\nhalt"))
        machine.step()
        assert machine.journal_length == 1
        machine.trim_journal()
        assert machine.journal_length == 0

    def test_restore_resets_retired_count(self):
        machine = Machine(assemble("nop\nnop\nhalt"))
        snap = machine.snapshot()
        machine.step()
        machine.step()
        machine.restore(snap)
        assert machine.instructions_retired == 0
