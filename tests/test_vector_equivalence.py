"""Property-based scalar/vector equivalence for the estimator bank.

The vector engine's contract (docs/performance.md) is *bit-identity*:
for any trace and any supported (predictor, estimator-family) pair,
:func:`measure_bank_vectorized` must produce exactly the quadrant
counts, misprediction counts and per-branch observer callbacks of the
scalar bank -- and leave the predictor and estimators in exactly the
same state.  Hypothesis drives that over random short traces with
deliberately tiny tables, so index aliasing, history wrap-around and
counter saturation all get exercised.

Families without a kernel (``CombiningJRSEstimator``) must take the
scalar fallback inside the vectorized pass and still match; predictors
without a scan must make ``measure_bank`` fall back wholesale.
"""

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.confidence import (
    BoostedEstimator,
    CombiningJRSEstimator,
    JRSEstimator,
    McFarlingVariant,
    MispredictionDistanceEstimator,
    PatternHistoryEstimator,
    SaturatingCountersEstimator,
    StaticEstimator,
)
from repro.engine import (
    UnsupportedVectorization,
    lower_trace,
    measure_bank,
    measure_bank_vectorized,
    vector_enabled,
)
from repro.engine.measure import measure
from repro.predictors import make_predictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.mcfarling import McFarlingPredictor
from repro.predictors.sag import SAgPredictor
from repro.workloads.trace import BranchTrace

pytestmark = pytest.mark.skipif(
    not vector_enabled(), reason="vector engine disabled (REPRO_VECTOR=0)"
)

#: Tiny tables so short random traces still hit aliasing and wrap.
PREDICTOR_MAKERS = {
    "gshare": lambda: GsharePredictor(table_size=16),
    "mcfarling": lambda: McFarlingPredictor(table_size=16),
    "sag": lambda: SAgPredictor(
        history_entries=8, history_bits=3, pht_size=16
    ),
}

#: Every kernelized estimator family, built fresh per measurement.
FAMILY_MAKERS = {
    "jrs": lambda predictor, records: JRSEstimator(
        table_size=16, counter_bits=4, threshold=15, enhanced=True
    ),
    "satcnt": lambda predictor, records: (
        SaturatingCountersEstimator.for_predictor(
            predictor, variant=McFarlingVariant.BOTH_STRONG
        )
    ),
    "satcnt-either": lambda predictor, records: (
        SaturatingCountersEstimator.for_predictor(
            predictor, variant=McFarlingVariant.EITHER_STRONG
        )
    ),
    "pattern": lambda predictor, records: (
        PatternHistoryEstimator.for_predictor(predictor)
    ),
    "static": lambda predictor, records: StaticEstimator(
        frozenset(pc for pc, __ in records if pc % 3 == 0), 0.90
    ),
    "distance": lambda predictor, records: MispredictionDistanceEstimator(4),
    "boosted-distance": lambda predictor, records: BoostedEstimator(
        MispredictionDistanceEstimator(4), k=2
    ),
}

#: (pc, taken) streams over a small pc pool (dense aliasing).
traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40), st.booleans()),
    min_size=0,
    max_size=80,
)


class RecordingObserver:
    """Capture every callback verbatim for stream comparison."""

    def __init__(self):
        self.events = []

    def __call__(self, pc, predicted, actual, flags):
        self.events.append((pc, predicted, actual, dict(flags)))


def _columnar(records):
    return lower_trace(BranchTrace.from_records(records, name="prop"))


def _bank(predictor, records, families=FAMILY_MAKERS):
    return {
        name: maker(predictor, records) for name, maker in families.items()
    }


def _measure_scalar(predictor_name, records, families=FAMILY_MAKERS):
    predictor = PREDICTOR_MAKERS[predictor_name]()
    estimators = _bank(predictor, records, families)
    observer = RecordingObserver()
    result = measure(
        BranchTrace.from_records(records, name="prop"),
        predictor,
        estimators,
        observers=[observer],
    )
    return result, observer.events, predictor, estimators


def _measure_vector(predictor_name, records, families=FAMILY_MAKERS):
    predictor = PREDICTOR_MAKERS[predictor_name]()
    estimators = _bank(predictor, records, families)
    observer = RecordingObserver()
    result = measure_bank_vectorized(
        _columnar(records), predictor, estimators, observers=[observer]
    )
    return result, observer.events, predictor, estimators


def _assert_equivalent(scalar, vector):
    s_result, s_events, s_predictor, s_estimators = scalar
    v_result, v_events, v_predictor, v_estimators = vector
    assert v_result.branches == s_result.branches
    assert v_result.mispredictions == s_result.mispredictions
    for name in s_estimators:
        assert v_result.quadrants[name] == s_result.quadrants[name], name
    assert v_events == s_events
    # final state must match too: replay the same stream scalar-ly
    # through both survivors and compare outcomes branch for branch
    probe = s_events and [(pc, actual) for pc, __, actual, __ in s_events]
    if probe:
        s_probe = measure(probe, s_predictor, s_estimators)
        v_probe = measure(probe, v_predictor, v_estimators)
        assert v_probe.mispredictions == s_probe.mispredictions
        for name in s_estimators:
            assert v_probe.quadrants[name] == s_probe.quadrants[name], name


@pytest.mark.parametrize("predictor_name", sorted(PREDICTOR_MAKERS))
@given(records=traces)
@settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_vector_bank_matches_scalar_bank(predictor_name, records):
    _assert_equivalent(
        _measure_scalar(predictor_name, records),
        _measure_vector(predictor_name, records),
    )


@given(records=traces)
@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_unkernelized_estimator_falls_back_inside_the_bank(records):
    """CombiningJRS has no kernel: the vectorized pass must drive it
    per branch (fallback_flags) and still match the scalar bank."""
    families = {
        "cjrs": lambda predictor, records: CombiningJRSEstimator(
            table_size=16, counter_bits=4, threshold=15
        ),
        "distance": FAMILY_MAKERS["distance"],
    }
    _assert_equivalent(
        _measure_scalar("mcfarling", records, families),
        _measure_vector("mcfarling", records, families),
    )


def test_unsupported_predictor_rejected_before_consuming_state():
    records = [(3, True), (5, False), (3, True)]

    class Wrapper:
        name = "wrapper"

        def __init__(self):
            self.inner = make_predictor("gshare")

        def predict(self, pc):
            return self.inner.predict(pc)

        def resolve(self, pc, taken, prediction):
            return self.inner.resolve(pc, taken, prediction)

    with pytest.raises(UnsupportedVectorization):
        measure_bank_vectorized(_columnar(records), Wrapper(), {})

    # the public entry point degrades to the scalar loop instead
    result = measure_bank(_columnar(records), Wrapper(), {})
    baseline = measure(records, make_predictor("gshare"), {})
    assert result.branches == baseline.branches
    assert result.mispredictions == baseline.mispredictions
