"""Tests for the correct/incorrect-register estimators."""

import pytest

from repro.confidence import CIREstimator, DistanceIndexedCIREstimator
from repro.predictors.base import Prediction


def prediction(taken=True, history=0):
    return Prediction(taken=taken, index=0, history=history, counters=(3,), snapshot=0)


class TestCIREstimator:
    def test_cold_registers_are_low_confidence(self):
        estimator = CIREstimator(table_size=16, register_bits=4, max_incorrect=0)
        assert not estimator.estimate(3, prediction()).high_confidence

    def test_all_correct_reaches_high_confidence(self):
        estimator = CIREstimator(table_size=16, register_bits=4, max_incorrect=0)
        pred = prediction()
        for __ in range(4):
            assessment = estimator.estimate(3, pred)
            estimator.resolve(3, pred, True, assessment)  # correct
        assert estimator.estimate(3, pred).high_confidence

    def test_one_recent_mistake_tolerated_with_budget(self):
        estimator = CIREstimator(table_size=16, register_bits=4, max_incorrect=1)
        pred = prediction(taken=True)
        outcomes = [True, True, False, True]  # one wrong among four
        for actual in outcomes:
            assessment = estimator.estimate(3, pred)
            estimator.resolve(3, pred, actual, assessment)
        assert estimator.estimate(3, pred).high_confidence
        # but a zero budget would reject the same register
        strict = CIREstimator(table_size=16, register_bits=4, max_incorrect=0)
        for actual in outcomes:
            assessment = strict.estimate(3, pred)
            strict.resolve(3, pred, actual, assessment)
        assert not strict.estimate(3, pred).high_confidence

    def test_mistakes_age_out_of_the_window(self):
        estimator = CIREstimator(table_size=16, register_bits=3, max_incorrect=0)
        pred = prediction()
        assessment = estimator.estimate(3, pred)
        estimator.resolve(3, pred, False, assessment)  # a mistake
        for __ in range(3):  # shift it out of the 3-bit window
            assessment = estimator.estimate(3, pred)
            estimator.resolve(3, pred, True, assessment)
        assert estimator.estimate(3, pred).high_confidence

    def test_enhanced_index_distinguishes_directions(self):
        estimator = CIREstimator(
            table_size=16, register_bits=2, max_incorrect=0, enhanced=True
        )
        taken_pred = prediction(taken=True)
        for __ in range(2):
            assessment = estimator.estimate(4, taken_pred)
            estimator.resolve(4, taken_pred, True, assessment)
        assert estimator.estimate(4, taken_pred).high_confidence
        assert not estimator.estimate(4, prediction(taken=False)).high_confidence

    def test_validation(self):
        with pytest.raises(ValueError):
            CIREstimator(table_size=100)
        with pytest.raises(ValueError):
            CIREstimator(register_bits=0)
        with pytest.raises(ValueError):
            CIREstimator(register_bits=4, max_incorrect=5)

    def test_reset(self):
        estimator = CIREstimator(table_size=16, register_bits=2, max_incorrect=0)
        pred = prediction()
        for __ in range(2):
            assessment = estimator.estimate(3, pred)
            estimator.resolve(3, pred, True, assessment)
        estimator.reset()
        assert not estimator.estimate(3, pred).high_confidence


class TestDistanceIndexedCIR:
    def test_distance_advances_and_resets(self):
        estimator = DistanceIndexedCIREstimator(max_distance=8, register_bits=4)
        pred = prediction(taken=True)
        assessment = estimator.estimate(0, pred)
        assert assessment.token == 0
        estimator.resolve(0, pred, True, assessment)
        assessment = estimator.estimate(1, pred)
        assert assessment.token == 1
        estimator.resolve(1, pred, False, assessment)  # misprediction
        assessment = estimator.estimate(2, pred)
        assert assessment.token == 0  # distance reset

    def test_distance_clamps_at_max(self):
        estimator = DistanceIndexedCIREstimator(max_distance=3, register_bits=4)
        pred = prediction()
        tokens = []
        for __ in range(6):
            assessment = estimator.estimate(0, pred)
            tokens.append(assessment.token)
            estimator.resolve(0, pred, True, assessment)
        assert tokens == [0, 1, 2, 3, 3, 3]

    def test_registers_learn_per_distance(self):
        """Branches at distance 1 always wrong, at 0 always right: each
        distance's register learns its own reliability."""
        estimator = DistanceIndexedCIREstimator(
            max_distance=4, register_bits=4, max_incorrect=0
        )
        pred = prediction(taken=True)
        for __ in range(40):  # tokens alternate 0 (right), 1 (wrong)
            assessment = estimator.estimate(0, pred)
            actual = assessment.token != 1
            estimator.resolve(0, pred, actual, assessment)
        after = estimator.estimate(0, pred)
        assert after.token == 0  # the run ended on a reset
        assert after.high_confidence  # distance-0 register: all correct
        estimator.resolve(0, pred, True, after)
        far = estimator.estimate(0, pred)
        assert far.token == 1
        assert not far.high_confidence  # distance-1 register: all wrong

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceIndexedCIREstimator(max_distance=0)
        with pytest.raises(ValueError):
            DistanceIndexedCIREstimator(register_bits=2, max_incorrect=3)

    def test_reset(self):
        estimator = DistanceIndexedCIREstimator(max_distance=4)
        estimator.estimate(0, prediction())
        estimator.reset()
        assert estimator.distance == 0
