"""Tests for boosting: the formula, the accumulator, the wrapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.confidence import (
    BoostedEstimator,
    BoostingAccumulator,
    MispredictionDistanceEstimator,
    boosted_pvn,
)
from repro.predictors.base import Prediction


def prediction(taken=True):
    return Prediction(taken=taken, index=0, history=0, counters=(3,), snapshot=0)


class TestFormula:
    def test_paper_example(self):
        """Two LC estimates at PVN 30% boost to roughly 50%."""
        assert boosted_pvn(0.30, 2) == pytest.approx(0.51)

    def test_k_one_is_identity(self):
        assert boosted_pvn(0.42, 1) == pytest.approx(0.42)

    def test_validation(self):
        with pytest.raises(ValueError):
            boosted_pvn(1.2, 2)
        with pytest.raises(ValueError):
            boosted_pvn(0.5, 0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=6),
    )
    def test_monotone_in_k_and_bounded(self, pvn, k):
        value = boosted_pvn(pvn, k)
        assert 0.0 <= value <= 1.0
        assert value >= boosted_pvn(pvn, max(1, k - 1)) - 1e-12


class TestAccumulator:
    def test_counts_events_at_each_window(self):
        accumulator = BoostingAccumulator([1, 2])
        # LC run of 3, then HC, then LC run of 1
        for mispredicted in (False, True, False):
            accumulator.observe(True, mispredicted)
        accumulator.observe(False, False)
        accumulator.observe(True, False)
        results = {result.k: result for result in accumulator.results()}
        assert results[1].events == 4  # every LC branch
        assert results[2].events == 2  # positions 2,3 of the first run

    def test_hit_when_any_window_member_mispredicted(self):
        accumulator = BoostingAccumulator([2])
        accumulator.observe(True, True)
        accumulator.observe(True, False)  # window (T, F): hit
        accumulator.observe(True, False)  # window (F, F): miss
        (result,) = accumulator.results()
        assert result.events == 2
        assert result.events_with_misprediction == 1

    def test_base_pvn(self):
        accumulator = BoostingAccumulator([1])
        for mispredicted in (True, False, False, True):
            accumulator.observe(True, mispredicted)
        (result,) = accumulator.results()
        assert result.base_pvn == pytest.approx(0.5)
        assert result.empirical_pvn == pytest.approx(0.5)
        assert result.analytic_pvn == pytest.approx(0.5)

    def test_hc_breaks_runs(self):
        accumulator = BoostingAccumulator([2])
        accumulator.observe(True, False)
        accumulator.observe(False, False)  # HC: run broken
        accumulator.observe(True, False)
        (result,) = accumulator.results()
        assert result.events == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoostingAccumulator([])
        with pytest.raises(ValueError):
            BoostingAccumulator([0])


class TestBoostedEstimator:
    def test_requires_k_consecutive_lc(self):
        base = MispredictionDistanceEstimator(distance_threshold=1000)  # always LC
        boosted = BoostedEstimator(base, k=2)
        first = boosted.estimate(0, prediction())
        second = boosted.estimate(1, prediction())
        assert first.high_confidence  # only one LC so far: not boosted-LC
        assert not second.high_confidence

    def test_resolve_reaches_base(self):
        base = MispredictionDistanceEstimator(distance_threshold=0)
        boosted = BoostedEstimator(base, k=2)
        pred = prediction(taken=True)
        assessment = boosted.estimate(0, pred)
        boosted.resolve(0, pred, False, assessment)  # mispredicted
        assert base.branches_since_misprediction == 0

    def test_hc_from_base_resets_run(self):
        base = MispredictionDistanceEstimator(distance_threshold=0)
        boosted = BoostedEstimator(base, k=2)
        pred = prediction(taken=True)
        boosted.estimate(0, pred)  # LC (distance 0)
        boosted.estimate(1, pred)  # HC from base: run resets
        third = boosted.estimate(2, pred)  # HC again
        assert third.high_confidence

    def test_reset(self):
        base = MispredictionDistanceEstimator(distance_threshold=1000)
        boosted = BoostedEstimator(base, k=1)
        boosted.estimate(0, prediction())
        boosted.reset()
        assert boosted._lc_run == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoostedEstimator(MispredictionDistanceEstimator(), k=0)
