"""The asyncio front-end of the confidence-estimation server.

Architecture (``repro serve``)::

    clients --(length-prefixed JSONL)--> asyncio front-end
                                           |  consistent hash ring
                                           v
                              supervised worker processes
                              (incremental estimator banks)

The front-end owns no estimator state: every session lives in exactly
one worker process, chosen by consistently hashing the session id onto
a stable worker *slot* (:mod:`repro.serve.ring`).  The front-end keeps
only what recovery needs -- the latest :class:`SessionSnapshot` each
worker attached to an ``applied`` reply, plus every batch newer than
that snapshot -- so when a worker dies its replacement restores the
snapshot and replays only the tail, never the whole stream.  Worker
dedupe by ``applied_seq`` and front-end window dedupe by start index
make the replay exactly-once as observed by both the client and the
final quadrant counts.

Robustness mirrors the battery supervisor in
:mod:`repro.harness.parallel`:

* liveness is checked with heartbeats (the worker pipe is FIFO, so an
  answered ``ping`` proves everything before it was applied); a missed
  deadline is killed and classified ``timeout``, a broken pipe is
  classified ``crash`` -- both through the same
  :func:`~repro.harness.parallel.classify_failure` taxonomy;
* dead workers are recycled into the same slot with bounded
  exponential backoff and their sessions restored from snapshots;
* a slot that exhausts its restart budget degrades the whole server to
  a single in-process serial worker (the same :class:`SessionHost` the
  processes run), trading throughput for availability;
* clients are flow-controlled with credits (one ``credit`` frame per
  applied batch) and shed -- not buffered unboundedly -- when their
  outbound queue overflows.

Fault sites (``REPRO_FAULTS``): ``server=worker`` fires inside worker
processes (see :mod:`repro.serve.worker`); ``server=connection`` drops
a client link abruptly; ``server=frame`` garbles an inbound payload so
the protocol-error path runs.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Set

from ..engine.cache import get_cache
from ..faults import injector as faults
from ..faults.injector import InjectedCrash
from ..harness.parallel import classify_failure
from ..obs.journal import coalesce
from ..obs.registry import REGISTRY
from .protocol import (
    ProtocolError,
    decode_payload,
    read_frame_payload,
    send_message,
)
from .ring import HashRing
from .session import (
    DEFAULT_GATE_THRESHOLD,
    DEFAULT_WINDOW,
    SessionSnapshot,
    session_families,
)
from .worker import DEFAULT_SNAPSHOT_EVERY, SessionHost, worker_main


@dataclass
class ServeConfig:
    """Tunables of one server; the CLI maps flags onto this."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read back from server.port
    workers: int = 2
    #: Batches a client may have in flight before it must wait.
    credits: int = 8
    #: Batches a worker applies between session snapshots.
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    #: Metrics window (branches) unless the hello overrides it.
    window: int = DEFAULT_WINDOW
    gate_threshold: float = DEFAULT_GATE_THRESHOLD
    #: Heartbeat cadence and the stall deadline a worker must answer by.
    heartbeat_s: float = 1.0
    heartbeat_timeout_s: float = 15.0
    #: Restart budget per worker slot before the server degrades.
    max_restarts: int = 3
    restart_backoff_s: float = 0.05
    #: Outbound frames buffered per session before the client is shed.
    session_queue_limit: int = 64
    #: Per-session deadline for the next client frame (None = no limit).
    idle_timeout_s: Optional[float] = None
    hello_timeout_s: float = 30.0
    #: Deadline for a worker to ack an open/restore, and for the final
    #: result after ``end`` (covers a recovery in between).
    open_timeout_s: float = 60.0
    result_timeout_s: float = 120.0


class _InjectedDrop(Exception):
    """A ``server=connection`` fault: drop this client link abruptly."""


class _SessionState:
    """Front-end bookkeeping for one live session."""

    def __init__(self, hello: Dict[str, Any], config: ServeConfig):
        self.sid: str = hello["session"]
        self.workload: str = hello["workload"]
        self.predictor: str = hello["predictor"]
        families = hello["estimators"] or list(session_families())
        self.families: List[str] = [str(f) for f in families]
        self.iterations = hello.get("iterations")
        self.window = int(hello.get("window") or config.window)
        self.gate_threshold = float(
            hello.get("gate_threshold", config.gate_threshold)
        )
        self.slot_index: int = -1
        #: Client-bound protocol messages, drained by the pump task.
        self.events: asyncio.Queue = asyncio.Queue(
            maxsize=config.session_queue_limit
        )
        self.open_waiter: Optional[asyncio.Future] = None
        self.snapshot: Optional[SessionSnapshot] = None
        #: seq -> worker request, for every batch newer than `snapshot`.
        self.buffer: Dict[int, dict] = {}
        self.last_client_seq = 0
        self.credited_seq = 0
        self.next_window_start = 0
        self.branches = 0
        self.windows = 0
        self.finish_sent = False
        self.completed = False
        self.close_reason: Optional[str] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.cleaned = False

    def prune_buffer(self, applied_seq: int) -> None:
        for seq in [s for s in self.buffer if s <= applied_seq]:
            del self.buffer[seq]

    def replay_tail(self) -> List[dict]:
        horizon = self.snapshot.applied_seq if self.snapshot else 0
        return [
            request
            for seq, request in sorted(self.buffer.items())
            if seq > horizon
        ]


class _WorkerSlot:
    """One supervised worker process occupying a stable ring slot."""

    def __init__(self, index: int, process, conn, restarts: int):
        self.index = index
        self.process = process
        self.conn = conn
        self.restarts = restarts
        self.sessions: Set[str] = set()
        self.ready = asyncio.Event()
        self.alive = True
        self.retired = False
        self.stall_killed = False
        self.awaiting_pong_since: Optional[float] = None

    def send(self, request: dict) -> bool:
        try:
            self.conn.send(request)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False


class _LocalSlot:
    """The degraded-mode in-process worker: same ops, no process.

    Runs the identical :class:`SessionHost` the worker processes run,
    so degradation changes throughput and isolation, never semantics.
    Worker-site faults are *not* evaluated here -- like the serial
    fallback of the battery supervisor, the in-process host is the
    recovery path of last resort and must not be chaos-injected.
    """

    index = -1
    alive = True
    retired = False

    def __init__(self, server: "EstimatorServer"):
        self._server = server
        self.host = SessionHost(snapshot_every=server.config.snapshot_every)
        self.sessions: Set[str] = set()
        self.ready = asyncio.Event()
        self.ready.set()

    def send(self, request: dict) -> bool:
        response = self.host.handle(request)
        if response is not None:
            self._server._process_worker_message(self, response)
        return True


class EstimatorServer:
    """Supervised streaming estimator server (see module docstring)."""

    def __init__(self, config: ServeConfig, journal=None):
        if config.workers < 1:
            raise ValueError("server needs at least one worker")
        self.config = config
        self.journal = coalesce(journal)
        self.sessions: Dict[str, _SessionState] = {}
        self.ring = HashRing(config.workers)
        self.slots: List[Optional[_WorkerSlot]] = [None] * config.workers
        self.local: Optional[_LocalSlot] = None
        self.degraded = False
        self.stopping = False
        self.port: Optional[int] = None
        self.sessions_closed = 0
        self._mp = get_context("spawn")
        self._faults = faults.active_faults()
        self._state_dir: Optional[str] = None
        self._owns_state = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._recovery_tasks: Set[asyncio.Task] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = asyncio.Event()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        # share one occurrence ledger across the front-end and every
        # worker (including respawns), exactly like the battery
        # supervisor: respawned workers must not re-fire `times=` specs
        inherited_state = os.environ.get(faults.STATE_ENV)
        self._state_dir = faults.ensure_state_dir()
        self._owns_state = self._state_dir is not None and not inherited_state
        for index in range(self.config.workers):
            self.slots[index] = self._spawn_slot(index, restarts=0)
            self.slots[index].ready.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.journal.emit(
            "server_started", port=self.port, workers=self.config.workers
        )
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        print(
            f"repro-serve: serving on {self.config.host}:{self.port}"
            f" with {self.config.workers} workers",
            flush=True,
        )

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        if self.stopping:
            return
        self.stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
        for task in list(self._recovery_tasks):
            task.cancel()
        # tell live clients why their stream is ending, then stop
        for state in list(self.sessions.values()):
            self._post(
                state,
                {
                    "type": "error",
                    "code": "server_stopping",
                    "error": "server shutting down",
                },
            )
        # let pumps flush the error frames before the pipes close
        await asyncio.sleep(0)
        for slot in self.slots:
            if slot is None:
                continue
            slot.retired = True
            slot.send({"op": "shutdown"})
            try:
                slot.conn.close()
            except OSError:
                pass
            await asyncio.to_thread(slot.process.join, 2.0)
            if slot.process.is_alive():
                slot.process.kill()
        if self._owns_state and self._state_dir:
            faults.release_state_dir(self._state_dir)
        self.journal.emit(
            "server_stopped",
            sessions=self.sessions_closed,
            duration_s=time.time() - self._started_at,
        )
        self._stopped.set()

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------

    def _spawn_slot(self, index: int, restarts: int) -> _WorkerSlot:
        cache = get_cache()
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(
                child_conn,
                index,
                str(cache.root),
                cache.enabled,
                self.config.snapshot_every,
            ),
            daemon=True,
            name=f"repro-serve-worker-{index}",
        )
        process.start()
        child_conn.close()
        slot = _WorkerSlot(index, process, parent_conn, restarts)
        thread = threading.Thread(
            target=self._reader,
            args=(slot, self._loop),
            daemon=True,
            name=f"repro-serve-reader-{index}",
        )
        thread.start()
        return slot

    def _reader(self, slot: _WorkerSlot, loop) -> None:
        """Pump one worker's pipe into the event loop (thread)."""
        while True:
            try:
                message = slot.conn.recv()
            except (EOFError, OSError):
                break
            loop.call_soon_threadsafe(
                self._process_worker_message, slot, message
            )
        loop.call_soon_threadsafe(self._on_worker_death, slot)

    def _slot_for(self, session_id: str):
        if self.degraded:
            return self.local
        return self.slots[self.ring.lookup(session_id)]

    def _process_worker_message(self, slot, message: dict) -> None:
        op = message.get("op")
        if op == "pong":
            slot.awaiting_pong_since = None
            return
        state = self.sessions.get(message.get("session", ""))
        if state is None or state.cleaned:
            return
        if op == "applied":
            snapshot = message.get("snapshot")
            if snapshot is not None:
                state.snapshot = snapshot
                state.prune_buffer(snapshot.applied_seq)
            state.branches = message["branches"]
            # replays re-emit windows the client already saw; dedupe by
            # start index so the client stream stays gap- and dup-free
            fresh = [
                w
                for w in message["windows"]
                if w["start"] >= state.next_window_start
            ]
            for window in fresh:
                state.next_window_start = window["start"] + window["branches"]
            state.windows += len(fresh)
            events = list(fresh)
            seq = message["seq"]
            if seq > state.credited_seq:
                state.credited_seq = seq
                events.append({"type": "credit", "seq": seq, "grant": 1})
            if events:
                self._post(state, *events)
        elif op == "opened":
            if state.open_waiter is not None and not state.open_waiter.done():
                state.open_waiter.set_result(message)
        elif op == "finished":
            self._post(state, message["result"])
        elif op == "error":
            if state.open_waiter is not None and not state.open_waiter.done():
                state.open_waiter.set_result(message)
            else:
                state.close_reason = message.get("code", "session_lost")
                self._post(
                    state,
                    {
                        "type": "error",
                        "code": message.get("code", "session_lost"),
                        "error": message.get("error", "worker error"),
                    },
                )
        # "dropped" and unknown ops need no front-end action

    def _on_worker_death(self, slot: _WorkerSlot) -> None:
        if slot.retired or self.slots[slot.index] is not slot:
            return
        slot.retired = True
        slot.alive = False
        slot.ready.clear()
        # fail fast the opens/restores this worker will never ack; the
        # waiters see a retry marker instead of timing out
        for state in self.sessions.values():
            if (
                state.open_waiter is not None
                and not state.open_waiter.done()
                and self.ring.lookup(state.sid) == slot.index
            ):
                state.open_waiter.set_result({"op": "__retry__"})
        if self.stopping or self.degraded:
            return
        # classify through the PR 4 taxonomy: a stalled heartbeat is a
        # timeout, a broken pipe is a crash
        if slot.stall_killed:
            error: BaseException = FutureTimeoutError()
            reason = "heartbeat deadline missed"
        else:
            error = BrokenExecutor("worker pipe closed")
            reason = "worker process died"
        classification = classify_failure(error)
        restarts = slot.restarts + 1
        self.journal.emit(
            "server_worker_restarted",
            worker=slot.index,
            reason=reason,
            classification=classification,
            restarts=restarts,
        )
        REGISTRY.count("server.worker_restarts")
        REGISTRY.record("server.worker_failures", classification)
        task = asyncio.ensure_future(self._recover_slot(slot, restarts))
        self._recovery_tasks.add(task)
        task.add_done_callback(self._recovery_tasks.discard)

    async def _recover_slot(self, old: _WorkerSlot, restarts: int) -> None:
        try:
            old.process.kill()
        except (OSError, ValueError):
            pass
        try:
            old.conn.close()
        except OSError:
            pass
        if restarts > self.config.max_restarts:
            await self._degrade(
                f"worker {old.index} exceeded {self.config.max_restarts}"
                f" restarts"
            )
            return
        # deterministic, jitter-free backoff, like the battery
        await asyncio.sleep(
            self.config.restart_backoff_s * (2 ** (restarts - 1))
        )
        if self.stopping or self.degraded:
            return
        replacement = self._spawn_slot(old.index, restarts)
        self.slots[old.index] = replacement
        for sid in sorted(old.sessions):
            state = self.sessions.get(sid)
            if state is None or state.cleaned:
                continue
            await self._restore_session(replacement, state)
        replacement.ready.set()

    async def _degrade(self, reason: str) -> None:
        if self.degraded or self.stopping:
            return
        self.degraded = True
        self.journal.emit("server_degraded", reason=reason)
        REGISTRY.count("server.degraded")
        self.local = _LocalSlot(self)
        orphaned: List[str] = []
        for slot in self.slots:
            if slot is None:
                continue
            orphaned.extend(sorted(slot.sessions))
            slot.retired = True
            try:
                slot.process.kill()
            except (OSError, ValueError):
                pass
            try:
                slot.conn.close()
            except OSError:
                pass
        for sid in orphaned:
            state = self.sessions.get(sid)
            if state is None or state.cleaned:
                continue
            await self._restore_session(self.local, state)

    async def _restore_session(self, slot, state: _SessionState) -> bool:
        """Restore one session onto ``slot`` and replay its tail."""
        if state.snapshot is None:
            self._lose_session(state, "no snapshot to restore from")
            return False
        state.open_waiter = self._loop.create_future()
        if not slot.send({"op": "restore", "snapshot": state.snapshot}):
            self._lose_session(state, "replacement worker unavailable")
            return False
        try:
            opened = await asyncio.wait_for(
                state.open_waiter, self.config.open_timeout_s
            )
        except asyncio.TimeoutError:
            self._lose_session(state, "restore ack timed out")
            return False
        finally:
            state.open_waiter = None
        if opened.get("op") == "__retry__":
            # the replacement died too before acking; hand the session
            # to the *next* recovery wave instead of declaring it lost
            slot.sessions.add(state.sid)
            return False
        if opened.get("op") == "error":
            self._lose_session(state, opened.get("error", "restore failed"))
            return False
        replay = state.replay_tail()
        for request in replay:
            slot.send(request)
        if state.finish_sent:
            slot.send({"op": "finish", "session": state.sid})
        slot.sessions.add(state.sid)
        state.slot_index = slot.index
        self._post(state, {"type": "recovered", "replayed": len(replay)})
        self.journal.emit(
            "session_recovered",
            session=state.sid,
            worker=slot.index,
            replayed=len(replay),
        )
        REGISTRY.count("server.sessions_recovered")
        return True

    def _lose_session(self, state: _SessionState, detail: str) -> None:
        state.close_reason = "session_lost"
        self._post(
            state,
            {"type": "error", "code": "session_lost", "error": detail},
        )

    async def _heartbeat_loop(self) -> None:
        while not self.stopping:
            await asyncio.sleep(self.config.heartbeat_s)
            now = time.monotonic()
            for slot in self.slots:
                if (
                    slot is None
                    or slot.retired
                    or not slot.alive
                    or not slot.ready.is_set()
                ):
                    continue
                since = slot.awaiting_pong_since
                if since is not None:
                    if now - since > self.config.heartbeat_timeout_s:
                        # the pipe is FIFO: an unanswered ping means
                        # every op behind it is stuck too -- kill and
                        # let the reader thread report the death
                        slot.stall_killed = True
                        REGISTRY.count("server.worker_stalls")
                        try:
                            slot.process.kill()
                        except (OSError, ValueError):
                            pass
                    continue  # one outstanding ping at a time
                slot.awaiting_pong_since = now
                slot.send({"op": "ping"})

    # ------------------------------------------------------------------
    # client connections
    # ------------------------------------------------------------------

    def _post(self, state: _SessionState, *messages: Dict[str, Any]) -> None:
        """Queue client-bound frames; overflow sheds the slow client."""
        for message in messages:
            try:
                state.events.put_nowait(message)
            except asyncio.QueueFull:
                self._shed(state, "slow_client")
                return

    def _shed(self, state: _SessionState, reason: str) -> None:
        if state.cleaned or state.close_reason is not None:
            return
        state.close_reason = reason
        REGISTRY.count("server.sessions_shed")
        if state.writer is not None:
            try:
                state.writer.transport.abort()
            except (OSError, RuntimeError):
                pass

    async def _read_client_frame(
        self, reader: asyncio.StreamReader, timeout: Optional[float]
    ) -> Optional[Dict[str, Any]]:
        payload = await asyncio.wait_for(read_frame_payload(reader), timeout)
        if payload is None:
            return None
        # connection fault: abrupt link drop (the sleep of a slow spec
        # runs off-loop so a stalled "network" stalls only this client)
        try:
            await asyncio.to_thread(self._faults.on_server, "connection")
        except InjectedCrash:
            raise _InjectedDrop()
        # frame fault: garble the payload so decoding fails loudly
        payload = self._faults.corrupt_server_frame("frame", payload)
        return decode_payload(payload)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_connection(reader, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async def refuse(code: str, detail: str) -> None:
            try:
                await send_message(
                    writer, {"type": "error", "code": code, "error": detail}
                )
            except (OSError, ConnectionError):
                pass

        if self.stopping:
            await refuse("server_stopping", "server shutting down")
            return
        try:
            hello = await self._read_client_frame(
                reader, self.config.hello_timeout_s
            )
        except (ProtocolError, asyncio.TimeoutError) as error:
            await refuse("bad_frame", f"bad hello: {error}")
            return
        except (_InjectedDrop, ConnectionError, OSError):
            return
        if hello is None:
            return
        if hello["type"] != "hello":
            await refuse("bad_message", "first frame must be hello")
            return
        sid = hello["session"]
        if sid in self.sessions:
            await refuse("bad_config", f"session {sid!r} already active")
            return
        state = _SessionState(hello, self.config)
        state.writer = writer
        self.sessions[sid] = state
        try:
            opened = await self._open_session(state)
            if opened.get("op") == "error":
                state.close_reason = opened.get("code", "bad_config")
                await refuse(
                    opened.get("code", "bad_config"),
                    opened.get("error", "open failed"),
                )
                return
            await send_message(
                writer,
                {
                    "type": "welcome",
                    "session": sid,
                    "credits": self.config.credits,
                    "window": state.window,
                    "families": list(state.families),
                },
            )
            self.journal.emit(
                "session_opened", session=sid, worker=state.slot_index
            )
            REGISTRY.count("server.sessions_opened")
            pump = asyncio.create_task(self._pump(state, writer))
            try:
                await self._read_loop(state, reader)
                if not state.finish_sent:
                    # no result is coming; let the pump flush whatever
                    # is queued (usually an error frame), then exit
                    try:
                        state.events.put_nowait(None)
                    except asyncio.QueueFull:
                        pump.cancel()
                await asyncio.wait_for(pump, self.config.result_timeout_s)
            except asyncio.TimeoutError:
                state.close_reason = state.close_reason or "session_lost"
            except (OSError, ConnectionError):
                pass
            finally:
                if not pump.done():
                    pump.cancel()
        finally:
            self._cleanup_session(state)

    async def _open_session(self, state: _SessionState) -> dict:
        request = {
            "op": "open",
            "session": state.sid,
            "workload": state.workload,
            "predictor": state.predictor,
            "families": state.families,
            "iterations": state.iterations,
            "window": state.window,
            "gate_threshold": state.gate_threshold,
        }
        for __ in range(3):
            state.open_waiter = self._loop.create_future()
            try:
                slot = await self._await_slot(state.sid)
                if slot is None or not slot.send(request):
                    continue
                try:
                    opened = await asyncio.wait_for(
                        state.open_waiter, self.config.open_timeout_s
                    )
                except asyncio.TimeoutError:
                    return {
                        "op": "error",
                        "code": "session_lost",
                        "error": "open ack timed out",
                    }
            finally:
                state.open_waiter = None
            if opened.get("op") == "__retry__":
                continue  # the worker died before acking; re-place
            if opened.get("op") == "opened":
                state.snapshot = opened.get("snapshot")
                slot = self._slot_for(state.sid)
                slot.sessions.add(state.sid)
                state.slot_index = slot.index
            return opened
        return {
            "op": "error",
            "code": "session_lost",
            "error": "no worker available for session",
        }

    async def _read_loop(
        self, state: _SessionState, reader: asyncio.StreamReader
    ) -> None:
        """Consume client frames until end / EOF / error / fault."""
        while True:
            try:
                message = await self._read_client_frame(
                    reader, self.config.idle_timeout_s
                )
            except asyncio.TimeoutError:
                self._post_error(
                    state, "idle_timeout", "no frame within session deadline"
                )
                return
            except _InjectedDrop:
                self._shed(state, "connection_fault")
                return
            except ProtocolError as error:
                self._post_error(state, "bad_frame", str(error))
                return
            except (ConnectionError, OSError):
                state.close_reason = state.close_reason or "disconnect"
                return
            if message is None:  # EOF without end: client vanished
                if not state.finish_sent:
                    state.close_reason = state.close_reason or "disconnect"
                return
            kind = message["type"]
            if kind == "ping":
                self._post(state, {"type": "pong"})
                continue
            if kind == "end":
                state.finish_sent = True
                await self._forward(
                    state, {"op": "finish", "session": state.sid}
                )
                return  # the pump delivers the result frame
            if kind != "branches":
                self._post_error(
                    state, "bad_message", f"unexpected {kind!r} mid-stream"
                )
                return
            seq = message["seq"]
            if seq != state.last_client_seq + 1:
                self._post_error(
                    state,
                    "out_of_order",
                    f"batch seq {seq} (expected {state.last_client_seq + 1})",
                )
                return
            if seq - state.credited_seq > self.config.credits:
                self._post_error(
                    state,
                    "credit_violation",
                    f"batch seq {seq} exceeds credit grant"
                    f" (credited through {state.credited_seq})",
                )
                return
            state.last_client_seq = seq
            request = {
                "op": "branches",
                "session": state.sid,
                "seq": seq,
                "pcs": message["pcs"],
                "taken": message["taken"],
            }
            state.buffer[seq] = request
            REGISTRY.count("server.batches")
            REGISTRY.count("server.branches", len(message["pcs"]))
            await self._forward(state, request)

    async def _await_slot(self, session_id: str):
        """The session's slot, once usable; None if the server stops.

        Re-resolves every tick rather than waiting on one slot object's
        event: a dead slot is *replaced* by a new object during
        recovery (or by the local host on degradation), so waiting on
        the retired slot's ``ready`` would block forever.
        """
        deadline = time.monotonic() + self.config.open_timeout_s
        while not self.stopping and time.monotonic() < deadline:
            slot = self._slot_for(session_id)
            if slot is not None and not slot.retired and slot.ready.is_set():
                return slot
            await asyncio.sleep(0.02)
        return None

    async def _forward(self, state: _SessionState, request: dict) -> None:
        """Send to the session's current worker once its slot is ready.

        A send that races a worker death is simply lost here: the batch
        already sits in ``state.buffer``, so recovery replays it (the
        worker-side ``applied_seq`` dedupe makes double delivery safe).
        """
        slot = await self._await_slot(state.sid)
        if slot is not None:
            slot.send(request)

    def _post_error(
        self, state: _SessionState, code: str, detail: str
    ) -> None:
        state.close_reason = state.close_reason or code
        self._post(
            state, {"type": "error", "code": code, "error": detail}
        )
        # the worker should not keep serving a dead stream
        slot = self._slot_for(state.sid)
        if slot is not None and slot.alive:
            slot.send({"op": "drop", "session": state.sid})

    async def _pump(
        self, state: _SessionState, writer: asyncio.StreamWriter
    ) -> None:
        """Drain session events to the client; ends on result/error."""
        while True:
            message = await state.events.get()
            if message is None:  # handler sentinel: no result is coming
                return
            try:
                await send_message(writer, message)
            except (OSError, ConnectionError):
                state.close_reason = state.close_reason or "disconnect"
                return
            if message["type"] == "result":
                state.completed = True
                return
            if message["type"] == "error":
                return

    def _cleanup_session(self, state: _SessionState) -> None:
        if state.cleaned:
            return
        state.cleaned = True
        self.sessions.pop(state.sid, None)
        for slot in self.slots + [self.local]:
            if slot is not None:
                slot.sessions.discard(state.sid)
        if state.completed:
            self.sessions_closed += 1
            REGISTRY.count("server.sessions_closed")
            self.journal.emit(
                "session_closed",
                session=state.sid,
                branches=state.branches,
                windows=state.windows,
            )
        else:
            self.journal.emit(
                "session_shed",
                session=state.sid,
                reason=state.close_reason or "disconnect",
            )


async def run_server(config: ServeConfig, journal=None) -> EstimatorServer:
    """Start a server, serve until SIGINT/SIGTERM, stop gracefully."""
    server = EstimatorServer(config, journal)
    await server.start()
    loop = asyncio.get_running_loop()

    def _request_stop() -> None:
        asyncio.ensure_future(server.stop())

    handled = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _request_stop)
            handled.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await server.serve_forever()
    finally:
        for signum in handled:
            loop.remove_signal_handler(signum)
        await server.stop()
    return server
