"""Incremental estimator-bank sessions and their snapshots.

An :class:`EstimatorSession` is the serving-side unit of work: one
client's branch stream driven through one predictor and a bank of
confidence estimators, *incrementally*.  Its per-branch semantics are
a line-for-line mirror of the batch loop in
:func:`repro.engine.measure.measure` -- predict, estimate every
family, count the quadrant, resolve predictor then estimators -- so a
session fed the same branch sequence in any batch split produces final
:class:`~repro.metrics.quadrant.QuadrantCounts` *equal* (not
approximately equal) to one batch ``measure_bank`` call.  That
equivalence is the server's correctness contract and is what the
chaos CI leg asserts.

Sessions are snapshotted with the same capture/restore idiom as
:mod:`repro.pipeline.snapshot`: the whole session is pickled in one
piece so shared references (estimator tables aliased by in-flight
state) survive, the snapshot is schema-stamped, and restores refuse
mismatched schemas instead of resuming from garbage.  A recycled
worker restores the snapshot and re-applies only the batches past the
snapshot's ``applied_seq`` -- never the whole stream.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.quadrant import QuadrantCounts
from ..predictors import make_predictor

#: Bump when the snapshot payload layout changes; restores refuse
#: mismatched schemas instead of resuming from garbage.
SESSION_SCHEMA = "serve-session/1"

#: Default branches per metrics window.
DEFAULT_WINDOW = 256

#: Default low-confidence fraction at which a window's gating decision
#: flips to "gate" (stop speculating past these branches).
DEFAULT_GATE_THRESHOLD = 0.25

#: The four reported quadrant metrics, in display order.
WINDOW_METRICS = ("sens", "pvp", "spec", "pvn")


class SessionError(ValueError):
    """A session request that cannot be served (bad config, bad seq)."""


class SessionSnapshotError(RuntimeError):
    """A session snapshot that could not be restored."""


def session_families() -> Sequence[str]:
    """The estimator families a ``hello`` may request (bank families)."""
    from ..harness.experiments import BANK_FAMILIES

    return BANK_FAMILIES


class EstimatorSession:
    """One live (workload, predictor, estimator-bank) branch stream."""

    def __init__(
        self,
        session_id: str,
        workload: str,
        predictor_name: str,
        families: Sequence[str],
        iterations: Optional[int] = None,
        window: int = DEFAULT_WINDOW,
        gate_threshold: float = DEFAULT_GATE_THRESHOLD,
    ):
        # estimator construction is deliberately shared with the batch
        # battery (same factory, same static-sites artifact), so the
        # serving path measures the identical estimator configurations
        from ..harness.experiments import BANK_FAMILIES, _family_estimator
        from ..workloads import SUITE

        if workload not in SUITE:
            raise SessionError(f"unknown workload {workload!r}")
        if window <= 0:
            raise SessionError(f"window must be positive, got {window}")
        unknown = [f for f in families if f not in BANK_FAMILIES]
        if unknown:
            raise SessionError(
                f"unknown estimator families: {', '.join(unknown)}"
                f" (available: {', '.join(BANK_FAMILIES)})"
            )
        self.session_id = session_id
        self.workload = workload
        self.predictor_name = predictor_name
        self.families = tuple(families)
        self.iterations = iterations
        self.window = window
        self.gate_threshold = gate_threshold

        try:
            self.predictor = make_predictor(predictor_name)
        except KeyError as error:
            raise SessionError(str(error)) from None
        self.estimators = {
            family: _family_estimator(
                family, predictor_name, self.predictor, workload, iterations
            )
            for family in self.families
            if family != "accuracy"
        }
        self.quadrants: Dict[str, QuadrantCounts] = {
            name: QuadrantCounts() for name in self.estimators
        }
        self._window_quadrants: Dict[str, QuadrantCounts] = {
            name: QuadrantCounts() for name in self.estimators
        }
        self.branches = 0
        self.mispredictions = 0
        self.windows_emitted = 0
        #: Sequence number of the last applied ``branches`` batch; the
        #: worker's dedupe key after a snapshot restore.
        self.applied_seq = 0

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------

    def apply(
        self, seq: int, pcs: Sequence[int], taken: Sequence[int]
    ) -> List[dict]:
        """Apply one batch; returns the ``window`` messages it completed.

        Batches must arrive with ``seq`` increasing by exactly 1.  A
        batch at or below ``applied_seq`` is a post-recovery redelivery
        and is skipped (the snapshot already contains it); a gap is a
        protocol error.
        """
        if seq <= self.applied_seq:
            return []
        if seq != self.applied_seq + 1:
            raise SessionError(
                f"batch seq {seq} out of order (expected {self.applied_seq + 1})"
            )
        if len(pcs) != len(taken):
            raise SessionError("pcs and taken length mismatch")
        windows: List[dict] = []
        predict = self.predictor.predict
        predictor_resolve = self.predictor.resolve
        estimator_items = list(self.estimators.items())
        for pc, taken_flag in zip(pcs, taken):
            actual = bool(taken_flag)
            prediction = predict(pc)
            assessments = [
                (name, estimator, estimator.estimate(pc, prediction))
                for name, estimator in estimator_items
            ]
            correct = prediction.taken == actual
            self.branches += 1
            if not correct:
                self.mispredictions += 1
            predictor_resolve(pc, actual, prediction)
            for name, estimator, assessment in assessments:
                estimator.resolve(pc, prediction, actual, assessment)
                high = assessment.high_confidence
                self.quadrants[name].record(correct, high)
                self._window_quadrants[name].record(correct, high)
            if self.branches % self.window == 0:
                windows.append(self._close_window())
        self.applied_seq = seq
        return windows

    def _close_window(self) -> dict:
        """Snapshot and reset the per-window tables as one message."""
        start = self.branches - self.window
        metrics: Dict[str, Dict[str, Optional[float]]] = {}
        gate: Dict[str, bool] = {}
        for name, counts in self._window_quadrants.items():
            metrics[name] = {
                metric: counts.metric_or_none(metric)
                for metric in WINDOW_METRICS
            }
            metrics[name]["lc_fraction"] = counts.coverage
            # the §2.2 speculation-control signal: gate fetch past this
            # window's branches when too many were tagged low-confidence
            gate[name] = counts.coverage >= self.gate_threshold
        self._window_quadrants = {
            name: QuadrantCounts() for name in self.estimators
        }
        self.windows_emitted += 1
        return {
            "type": "window",
            "start": start,
            "branches": self.window,
            "metrics": metrics,
            "gate": gate,
        }

    def result(self) -> dict:
        """The final ``result`` message for the whole applied stream."""
        return {
            "type": "result",
            "branches": self.branches,
            "mispredictions": self.mispredictions,
            "windows": self.windows_emitted,
            "quadrants": {
                name: {
                    "c_hc": counts.c_hc,
                    "i_hc": counts.i_hc,
                    "c_lc": counts.c_lc,
                    "i_lc": counts.i_lc,
                }
                for name, counts in self.quadrants.items()
            },
        }


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SessionSnapshot:
    """One frozen session, capturable between any two batches.

    Metadata fields describe the paused stream without unpickling it;
    ``payload`` is the pickled session.  ``applied_seq`` is the dedupe
    horizon: redelivered batches at or below it are skipped.
    """

    schema: str
    session_id: str
    applied_seq: int
    branches: int
    payload: bytes


def capture_session(session: EstimatorSession) -> SessionSnapshot:
    """Freeze ``session`` at its current batch boundary."""
    return SessionSnapshot(
        schema=SESSION_SCHEMA,
        session_id=session.session_id,
        applied_seq=session.applied_seq,
        branches=session.branches,
        payload=pickle.dumps(session, protocol=pickle.HIGHEST_PROTOCOL),
    )


def restore_session(snapshot: SessionSnapshot) -> EstimatorSession:
    """Thaw a session that resumes exactly where ``snapshot`` paused."""
    if snapshot.schema != SESSION_SCHEMA:
        raise SessionSnapshotError(
            f"session snapshot schema {snapshot.schema!r} != {SESSION_SCHEMA!r}"
        )
    try:
        session = pickle.loads(snapshot.payload)
    except Exception as error:  # corrupt payload: session is lost
        raise SessionSnapshotError(
            f"unreadable session snapshot: {error}"
        ) from error
    if not isinstance(session, EstimatorSession):
        raise SessionSnapshotError(
            f"session snapshot holds a {type(session).__name__}"
        )
    if session.applied_seq != snapshot.applied_seq:
        raise SessionSnapshotError(
            f"session snapshot metadata disagrees with payload"
            f" (applied_seq {snapshot.applied_seq} != {session.applied_seq})"
        )
    return session
