"""Streaming confidence-estimation serving (``repro serve`` / ``load``).

The serving stack turns the batch estimator battery into a long-lived
service: an asyncio front-end speaks a length-prefixed JSONL protocol
(:mod:`.protocol`), consistently hashes sessions onto supervised
worker processes (:mod:`.ring`, :mod:`.server`) that run incremental
estimator banks (:mod:`.session`, :mod:`.worker`), and streams back
per-window quadrant metrics plus gating decisions.  ``repro load``
(:mod:`.load`) replays workload traces as concurrent sessions and can
verify the streamed results exactly against batch ``measure_bank``.
"""

from .load import LoadConfig, LoadReport, run_load
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import EstimatorServer, ServeConfig, run_server
from .session import EstimatorSession, SessionSnapshot

__all__ = [
    "EstimatorServer",
    "EstimatorSession",
    "LoadConfig",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeConfig",
    "SessionSnapshot",
    "run_load",
    "run_server",
]
