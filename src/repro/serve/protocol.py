"""The length-prefixed JSONL wire protocol of the estimator server.

Every frame on the wire is::

    <4-byte big-endian payload length> <payload>

where the payload is one UTF-8 JSON object terminated by ``\\n`` (the
newline is included in the length, so a captured stream with the
prefixes stripped is valid JSONL).  Frames are schema-checked on both
sides with the same vocabulary discipline as the run journal: unknown
*extra* fields are ignored, missing required fields or wrong types are
protocol errors.

Client -> server messages:

* ``hello`` -- open a session: the (workload, predictor, estimator
  families, iterations) cell to serve, plus the metrics window size;
* ``branches`` -- one batch of branch records (``seq`` strictly
  increasing from 1; parallel arrays ``pcs`` / ``taken``);
* ``end`` -- finish the stream and request the final result;
* ``ping`` -- liveness probe.

Server -> client messages:

* ``welcome`` -- the session is open; carries the initial credit grant
  (see flow control in ``docs/serving.md``) and the effective config;
* ``credit`` -- one batch was applied; the client may send another;
* ``window`` -- per-window quadrant metrics (SENS/PVP/SPEC/PVN) and
  the gating decision per estimator family;
* ``result`` -- the final quadrant counts for the whole stream, equal
  to a batch ``measure_bank`` over the same branch sequence;
* ``recovered`` -- the session was restored onto a recycled worker
  (informational; the stream continues transparently);
* ``error`` -- the session is dead; ``code`` says why;
* ``pong`` -- answer to ``ping``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Tuple, Union

#: Bump when a message gains/loses *required* fields or changes meaning.
PROTOCOL_VERSION = 1

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame's payload; a length prefix beyond this is
#: treated as a corrupt stream, not an allocation request.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_NUMBER = (int, float)

#: message type -> {required field: expected type(s)}.
MESSAGE_TYPES: Dict[str, Dict[str, Union[type, Tuple[type, ...]]]] = {
    # client -> server
    "hello": {
        "session": str,
        "workload": str,
        "predictor": str,
        "estimators": list,
    },
    "branches": {"seq": int, "pcs": list, "taken": list},
    "end": {},
    "ping": {},
    # server -> client
    "welcome": {
        "session": str,
        "credits": int,
        "window": int,
        "families": list,
    },
    "credit": {"seq": int, "grant": int},
    "window": {"start": int, "branches": int, "metrics": dict, "gate": dict},
    "result": {
        "branches": int,
        "mispredictions": int,
        "windows": int,
        "quadrants": dict,
    },
    "recovered": {"replayed": int},
    "error": {"code": str, "error": str},
    "pong": {},
}

#: ``error`` frame codes the server emits.
ERROR_CODES = (
    "bad_frame",        # undecodable/oversized/invalid payload
    "bad_message",      # schema violation or unknown type
    "bad_config",       # hello named an unknown workload/predictor/family
    "credit_violation", # client sent batches beyond its credit grant
    "out_of_order",     # batch seq gap or repeat
    "slow_client",      # outbound queue overflowed; session shed
    "session_lost",     # worker died with no usable snapshot
    "server_stopping",  # graceful shutdown closed the session
    "idle_timeout",     # session deadline passed with no client frame
)


class ProtocolError(ValueError):
    """A frame or message that violates the wire protocol."""


def validate_message(obj: Any) -> Dict[str, Any]:
    """Schema-check one decoded payload; returns it typed as a dict."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(obj).__name__}"
        )
    kind = obj.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("missing or non-string 'type' field")
    required = MESSAGE_TYPES.get(kind)
    if required is None:
        raise ProtocolError(f"unknown message type {kind!r}")
    if obj.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"'v' must be {PROTOCOL_VERSION}, got {obj.get('v')!r}"
        )
    for field_name, expected in required.items():
        if field_name not in obj:
            raise ProtocolError(
                f"{kind}: missing required field {field_name!r}"
            )
        value = obj[field_name]
        if not isinstance(value, expected) or (
            isinstance(value, bool) and expected is not bool
        ):
            raise ProtocolError(
                f"{kind}: field {field_name!r} has wrong type"
                f" {type(value).__name__}"
            )
    return obj


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One validated message -> length-prefixed wire bytes."""
    message = dict(message)
    message.setdefault("v", PROTOCOL_VERSION)
    validate_message(message)
    payload = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload of {len(payload)} bytes too large")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Wire payload bytes -> validated message dict."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from None
    return validate_message(obj)


async def read_frame_payload(
    reader: asyncio.StreamReader,
) -> Optional[bytes]:
    """Read one raw frame payload; ``None`` on clean EOF at a boundary.

    The payload is returned *undecoded* so the server can route it
    through the ``frame`` fault site (:meth:`FaultRegistry.
    corrupt_server_frame`) before parsing -- a garbled payload must
    exercise the protocol-error path, not crash the reader.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {length}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read and validate one message; ``None`` on clean EOF."""
    payload = await read_frame_payload(reader)
    if payload is None:
        return None
    return decode_payload(payload)


async def send_message(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> None:
    """Encode, write and drain one message."""
    writer.write(encode_frame(message))
    await writer.drain()
