"""Consistent hashing of session ids onto worker slots.

Sessions are pinned to worker *slots* (stable integer indices), not to
worker *processes*: when a worker dies its replacement occupies the
same slot, so the ring never moves a live session and a recycled
worker inherits exactly the sessions it must restore.  Virtual nodes
smooth the load: each slot owns ``vnodes`` points on a 64-bit ring and
a session id maps to the first point at or after its own hash.

The hash is :func:`hashlib.sha256`-based and therefore stable across
processes and Python releases (``hash()`` is salted per process),
which keeps placement deterministic for tests and chaos legs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple

#: Ring points per worker slot; 64 keeps the max/mean session load
#: within a few percent for small pools without noticeable build cost.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A fixed set of worker slots consistently hashed on a ring."""

    def __init__(self, slots: int, vnodes: int = DEFAULT_VNODES):
        if slots <= 0:
            raise ValueError(f"ring needs at least one slot, got {slots}")
        self.slots = slots
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for slot in range(slots):
            for vnode in range(vnodes):
                points.append((_point(f"slot{slot}:vnode{vnode}"), slot))
        points.sort()
        self._points = [point for point, __ in points]
        self._owners = [slot for __, slot in points]

    def lookup(self, session_id: str) -> int:
        """The worker slot owning ``session_id``."""
        where = bisect.bisect_right(self._points, _point(session_id))
        if where == len(self._points):  # wrap past the last point
            where = 0
        return self._owners[where]

    def distribution(self, session_ids: Sequence[str]) -> List[int]:
        """Sessions per slot (diagnostics and balance tests)."""
        counts = [0] * self.slots
        for session_id in session_ids:
            counts[self.lookup(session_id)] += 1
        return counts
