"""Workload-trace load generation against a running estimator server.

``repro load`` replays suite workload traces as concurrent streaming
sessions: each session opens one (workload, predictor, estimator-bank)
cell, chunks the workload's branch trace into ``branches`` batches,
and streams them under the server's credit-based flow control.  Per
batch it measures the send-to-credit round trip; the report aggregates
exact (sorted, not interpolated-bucket) p50/p95/p99 latency and the
session completion rate, and lands in the metrics registry plus a
``server_load_report`` journal event.

``--verify`` recomputes every cell with one batch
:func:`~repro.engine.measure.measure_bank` call -- built with the
*same* trace and estimator factories the server's sessions use -- and
requires the streamed result to be equal, not approximately equal.
This is the client side of the serving correctness contract and what
the chaos CI leg asserts while workers are being crashed.

Sessions that die to a dropped connection (including injected
``server=connection`` faults) are retried under a fresh session id, a
bounded number of times; a retry replays the stream from the start, so
verification still holds.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.journal import coalesce
from ..obs.registry import REGISTRY
from .protocol import ProtocolError, read_message, send_message
from .session import DEFAULT_WINDOW, session_families


class LoadError(RuntimeError):
    """One session attempt failed (server error frame or dead link)."""


@dataclass
class LoadConfig:
    """Tunables of one load run; the CLI maps flags onto this."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Concurrent client tasks; sessions are spread across them.
    clients: int = 4
    #: Total sessions to stream.
    sessions: int = 8
    #: Batches per second per session (0 = as fast as credits allow).
    rate: float = 0.0
    #: Branches per batch.
    batch: int = 512
    workloads: Tuple[str, ...] = ()
    predictor: str = "gshare"
    estimators: Tuple[str, ...] = ()
    iterations: Optional[int] = None
    window: int = DEFAULT_WINDOW
    #: Recompute each cell in batch mode and require exact equality.
    verify: bool = False
    #: Reconnect budget per session (fresh id, replay from the start).
    retries: int = 2
    timeout_s: float = 120.0


@dataclass
class SessionOutcome:
    session: str
    workload: str
    ok: bool
    error: Optional[str] = None
    attempts: int = 1
    branches: int = 0
    windows: int = 0
    recovered: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    result: Optional[dict] = None
    verified: Optional[bool] = None


@dataclass
class LoadReport:
    clients: int
    outcomes: List[SessionOutcome]
    elapsed_s: float

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def mismatches(self) -> int:
        return sum(1 for o in self.outcomes if o.verified is False)

    @property
    def sessions_per_second(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_percentiles_ms(self) -> Dict[str, float]:
        """Exact batch round-trip percentiles (nearest-rank, sorted)."""
        samples = sorted(
            ms for o in self.outcomes for ms in o.latencies_ms
        )
        if not samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        def rank(q: float) -> float:
            index = min(len(samples) - 1, int(q * len(samples)))
            return samples[index]
        return {
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
        }

    def render(self) -> str:
        latency = self.latency_percentiles_ms()
        lines = [
            "Load report",
            "-----------",
            f"sessions    {len(self.outcomes)}"
            f" ({self.completed} completed, {self.failed} failed)",
            f"clients     {self.clients}",
            f"elapsed     {self.elapsed_s:.2f} s"
            f" ({self.sessions_per_second:.2f} sessions/s)",
            f"batch RTT   p50 {latency['p50']:.2f} ms"
            f"   p95 {latency['p95']:.2f} ms"
            f"   p99 {latency['p99']:.2f} ms",
        ]
        recovered = sum(o.recovered for o in self.outcomes)
        retried = sum(o.attempts - 1 for o in self.outcomes)
        if recovered or retried:
            lines.append(
                f"chaos       {recovered} worker recoveries observed,"
                f" {retried} session retries"
            )
        verified = [o for o in self.outcomes if o.verified is not None]
        if verified:
            status = "all equal" if not self.mismatches else (
                f"{self.mismatches} MISMATCHED"
            )
            lines.append(
                f"verify      {len(verified)} sessions vs batch"
                f" measure_bank: {status}"
            )
        for outcome in self.outcomes:
            if not outcome.ok:
                lines.append(
                    f"  FAILED {outcome.session} ({outcome.workload}):"
                    f" {outcome.error}"
                )
            elif outcome.verified is False:
                lines.append(
                    f"  MISMATCH {outcome.session} ({outcome.workload}):"
                    f" streamed result != batch measure_bank"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# batch-mode reference (the exact-equivalence oracle)
# ----------------------------------------------------------------------


def batch_reference(
    workload: str,
    predictor_name: str,
    families: Sequence[str],
    iterations: Optional[int],
) -> dict:
    """The batch ``measure_bank`` result a streamed session must equal.

    Deliberately constructed with the same factories the server's
    sessions use (same trace memo, same estimator factory, same
    static-sites artifacts), so any difference is a serving bug, not a
    configuration drift.
    """
    from ..engine.measure import measure_bank
    from ..harness.experiments import _bank_trace, _family_estimator
    from ..predictors import make_predictor

    predictor = make_predictor(predictor_name)
    estimators = {
        family: _family_estimator(
            family, predictor_name, predictor, workload, iterations
        )
        for family in families
        if family != "accuracy"
    }
    result = measure_bank(
        _bank_trace(workload, iterations), predictor, estimators
    )
    return {
        "branches": result.branches,
        "mispredictions": result.mispredictions,
        "quadrants": {
            name: {
                "c_hc": counts.c_hc,
                "i_hc": counts.i_hc,
                "c_lc": counts.c_lc,
                "i_lc": counts.i_lc,
            }
            for name, counts in result.quadrants.items()
        },
    }


def results_equal(streamed: dict, reference: dict) -> bool:
    """Exact (not approximate) comparison of a streamed final result."""
    if streamed.get("branches") != reference["branches"]:
        return False
    if streamed.get("mispredictions") != reference["mispredictions"]:
        return False
    return streamed.get("quadrants") == reference["quadrants"]


def _batches(
    workload: str, iterations: Optional[int], batch: int
) -> List[Tuple[List[int], List[int]]]:
    """The workload's branch trace, chunked for streaming."""
    from ..harness.experiments import _trace

    trace = _trace(workload, iterations)
    pcs = list(trace.pcs)
    taken = [int(flag) for flag in trace.outcomes]
    return [
        (pcs[start : start + batch], taken[start : start + batch])
        for start in range(0, len(pcs), batch)
    ]


# ----------------------------------------------------------------------
# streaming client
# ----------------------------------------------------------------------


async def _stream_once(
    config: LoadConfig,
    session_id: str,
    workload: str,
    batches: List[Tuple[List[int], List[int]]],
    outcome: SessionOutcome,
) -> dict:
    """Stream one full session; returns the final result message."""
    reader, writer = await asyncio.open_connection(config.host, config.port)
    try:
        await send_message(
            writer,
            {
                "type": "hello",
                "session": session_id,
                "workload": workload,
                "predictor": config.predictor,
                "estimators": list(config.estimators),
                "iterations": config.iterations,
                "window": config.window,
            },
        )
        welcome = await read_message(reader)
        if welcome is None:
            raise LoadError("server closed the connection before welcome")
        if welcome["type"] == "error":
            raise LoadError(
                f"{welcome['code']}: {welcome['error']}"
            )
        credits = welcome["credits"]
        sent = 0
        credited = 0
        send_times: Dict[int, float] = {}
        interval = 1.0 / config.rate if config.rate > 0 else 0.0
        next_send = time.monotonic()

        async def read_one() -> dict:
            message = await read_message(reader)
            if message is None:
                raise LoadError("connection closed mid-stream")
            if message["type"] == "error":
                raise LoadError(f"{message['code']}: {message['error']}")
            return message

        def consume(message: dict) -> None:
            nonlocal credited
            kind = message["type"]
            if kind == "credit":
                seq = message["seq"]
                started = send_times.pop(seq, None)
                if started is not None:
                    outcome.latencies_ms.append(
                        (time.monotonic() - started) * 1000.0
                    )
                credited = max(credited, seq)
            elif kind == "window":
                outcome.windows += 1
            elif kind == "recovered":
                outcome.recovered += 1

        while credited < len(batches):
            if sent < len(batches) and sent - credited < credits:
                if interval:
                    now = time.monotonic()
                    if now < next_send:
                        await asyncio.sleep(next_send - now)
                    next_send = max(next_send + interval, time.monotonic())
                pcs, taken = batches[sent]
                sent += 1
                send_times[sent] = time.monotonic()
                await send_message(
                    writer,
                    {
                        "type": "branches",
                        "seq": sent,
                        "pcs": pcs,
                        "taken": taken,
                    },
                )
                outcome.branches += len(pcs)
                # drain anything already queued without blocking sends
                while sent - credited >= credits or (
                    sent == len(batches) and credited < sent
                ):
                    consume(await read_one())
            else:
                consume(await read_one())
        await send_message(writer, {"type": "end"})
        while True:
            message = await read_one()
            if message["type"] == "result":
                return message
            consume(message)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def _run_session(
    config: LoadConfig, session_id: str, workload: str
) -> SessionOutcome:
    batches = _batches(workload, config.iterations, config.batch)
    outcome = SessionOutcome(session=session_id, workload=workload, ok=False)
    for attempt in range(config.retries + 1):
        attempt_id = (
            session_id if attempt == 0 else f"{session_id}.r{attempt}"
        )
        outcome.attempts = attempt + 1
        # a retry replays the whole stream: reset per-attempt tallies
        outcome.branches = 0
        outcome.windows = 0
        outcome.latencies_ms = []
        try:
            result = await asyncio.wait_for(
                _stream_once(config, attempt_id, workload, batches, outcome),
                config.timeout_s,
            )
        except (
            LoadError,
            ProtocolError,
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ) as error:
            outcome.error = (
                "timed out"
                if isinstance(error, asyncio.TimeoutError)
                else str(error) or type(error).__name__
            )
            REGISTRY.count("load.session_retries")
            continue
        outcome.ok = True
        outcome.error = None
        outcome.result = result
        return outcome
    return outcome


async def run_load(config: LoadConfig, journal=None) -> LoadReport:
    """Drive ``config.sessions`` streams and aggregate the report."""
    journal = coalesce(journal)
    workloads = list(config.workloads)
    if not workloads:
        from ..workloads import SUITE

        workloads = list(SUITE)
    plan = [
        (f"load-{index:04d}", workloads[index % len(workloads)])
        for index in range(config.sessions)
    ]
    queue: asyncio.Queue = asyncio.Queue()
    for entry in plan:
        queue.put_nowait(entry)
    outcomes: List[SessionOutcome] = []

    async def client_worker() -> None:
        while True:
            try:
                session_id, workload = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            outcomes.append(await _run_session(config, session_id, workload))

    started = time.monotonic()
    await asyncio.gather(
        *(client_worker() for __ in range(max(1, config.clients)))
    )
    elapsed = time.monotonic() - started

    if config.verify:
        references: Dict[str, dict] = {}
        families = list(config.estimators) or list(session_families())
        for outcome in outcomes:
            if not outcome.ok:
                continue
            if outcome.workload not in references:
                references[outcome.workload] = batch_reference(
                    outcome.workload,
                    config.predictor,
                    families,
                    config.iterations,
                )
            outcome.verified = results_equal(
                outcome.result, references[outcome.workload]
            )

    outcomes.sort(key=lambda o: o.session)
    report = LoadReport(
        clients=config.clients, outcomes=outcomes, elapsed_s=elapsed
    )
    latency = report.latency_percentiles_ms()
    REGISTRY.count("load.sessions_completed", report.completed)
    REGISTRY.count("load.sessions_failed", report.failed)
    for outcome in outcomes:
        for ms in outcome.latencies_ms:
            REGISTRY.observe_seconds("load.batch_rtt", ms / 1000.0)
    journal.emit(
        "server_load_report",
        clients=config.clients,
        sessions=len(outcomes),
        failed=report.failed,
        latency_ms=latency,
        sessions_per_second=report.sessions_per_second,
    )
    return report
