"""Worker-side session hosting for the estimator server.

A worker process owns a shard of the live sessions (assigned by the
front-end's consistent hash ring) and speaks a tiny op protocol over
its :mod:`multiprocessing` pipe: ``open`` / ``restore`` / ``branches``
/ ``finish`` / ``drop`` / ``ping`` / ``shutdown``.  Requests are
processed strictly in order and every request except ``shutdown``
produces exactly one response, so the front-end can reason about a
worker as a FIFO: a ``ping`` answered means everything before it was
applied.

:class:`SessionHost` holds the actual dispatch logic and is process
-agnostic: the degraded serving mode runs the same class in the
front-end process, so a pool-less server still serves the identical
semantics (minus chaos injection -- the in-process host is the
recovery path of last resort, mirroring the serial-degradation rule
of :mod:`repro.harness.parallel`).

Fault injection: ``REPRO_FAULTS`` specs with ``server=worker`` are
evaluated once per state-changing op *in the worker process only*.
``crash``/``flaky`` terminate the process abruptly (``os._exit``), the
way a segfault or OOM kill would; ``hang`` sleeps past the heartbeat
deadline so the supervisor's stall detection fires.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..engine import cache as artifact_cache
from ..faults.injector import InjectedCrash, active_faults
from .session import (
    EstimatorSession,
    SessionError,
    SessionSnapshotError,
    capture_session,
    restore_session,
)

#: Batches applied between automatic snapshots of a session.  Every
#: session is also snapshotted at open (seq 0), so the front-end always
#: holds a restore point and recovery replay is bounded by this.
DEFAULT_SNAPSHOT_EVERY = 4

#: Exit status of a worker killed by an injected ``server=worker``
#: crash; distinguishable from real crashes in process listings.
CRASH_EXIT_STATUS = 17

#: The fault site evaluated per state-changing op.
WORKER_SITE = "worker"


class SessionHost:
    """Dispatches session ops; one instance per worker (or in-process).

    Responses are plain dicts (picklable for the pipe): ``opened`` /
    ``applied`` / ``finished`` / ``dropped`` / ``pong`` / ``error``.
    ``error`` responses carry the protocol error ``code`` the front-end
    forwards to the client.
    """

    def __init__(self, snapshot_every: int = DEFAULT_SNAPSHOT_EVERY):
        self.snapshot_every = max(1, snapshot_every)
        self.sessions: Dict[str, EstimatorSession] = {}
        self._since_snapshot: Dict[str, int] = {}

    def _error(self, session_id: str, code: str, message: str) -> dict:
        return {
            "op": "error",
            "session": session_id,
            "code": code,
            "error": message,
        }

    def handle(self, request: dict) -> Optional[dict]:
        op = request.get("op")
        if op == "ping":
            return {"op": "pong"}
        if op == "shutdown":
            return None
        if op == "open":
            return self._open(request)
        if op == "restore":
            return self._restore(request)
        if op == "branches":
            return self._branches(request)
        if op == "finish":
            return self._finish(request)
        if op == "drop":
            session_id = request.get("session", "")
            self.sessions.pop(session_id, None)
            self._since_snapshot.pop(session_id, None)
            return {"op": "dropped", "session": session_id}
        return self._error(
            str(request.get("session", "")), "bad_message", f"unknown op {op!r}"
        )

    def _open(self, request: dict) -> dict:
        session_id = request["session"]
        try:
            session = EstimatorSession(
                session_id,
                workload=request["workload"],
                predictor_name=request["predictor"],
                families=request["families"],
                iterations=request.get("iterations"),
                window=request.get("window") or 0,
                gate_threshold=request["gate_threshold"],
            )
        except SessionError as error:
            return self._error(session_id, "bad_config", str(error))
        self.sessions[session_id] = session
        self._since_snapshot[session_id] = 0
        # snapshot at open: the front-end always holds a restore point,
        # so "worker died before the first periodic snapshot" cannot
        # strand a session
        return {
            "op": "opened",
            "session": session_id,
            "recovered": False,
            "snapshot": capture_session(session),
        }

    def _restore(self, request: dict) -> dict:
        snapshot = request["snapshot"]
        try:
            session = restore_session(snapshot)
        except SessionSnapshotError as error:
            return self._error(
                getattr(snapshot, "session_id", ""), "session_lost", str(error)
            )
        self.sessions[session.session_id] = session
        self._since_snapshot[session.session_id] = 0
        return {
            "op": "opened",
            "session": session.session_id,
            "recovered": True,
            "snapshot": snapshot,
        }

    def _branches(self, request: dict) -> dict:
        session_id = request["session"]
        session = self.sessions.get(session_id)
        if session is None:
            return self._error(
                session_id, "session_lost", "no such session on this worker"
            )
        seq = request["seq"]
        try:
            windows = session.apply(seq, request["pcs"], request["taken"])
        except SessionError as error:
            return self._error(session_id, "out_of_order", str(error))
        snapshot = None
        self._since_snapshot[session_id] += 1
        if self._since_snapshot[session_id] >= self.snapshot_every:
            snapshot = capture_session(session)
            self._since_snapshot[session_id] = 0
        return {
            "op": "applied",
            "session": session_id,
            "seq": seq,
            "branches": session.branches,
            "windows": windows,
            "snapshot": snapshot,
        }

    def _finish(self, request: dict) -> dict:
        session_id = request["session"]
        session = self.sessions.pop(session_id, None)
        self._since_snapshot.pop(session_id, None)
        if session is None:
            return self._error(
                session_id, "session_lost", "no such session on this worker"
            )
        return {
            "op": "finished",
            "session": session_id,
            "result": session.result(),
        }


#: Ops that change session state and therefore pass the fault site.
_FAULTED_OPS = ("open", "restore", "branches", "finish")


def worker_main(
    conn,
    index: int,
    cache_root: str,
    cache_enabled: bool,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
) -> None:
    """Worker process entry point: serve ops from ``conn`` until EOF.

    Spawned (not forked) by the front-end, so the artifact cache is
    re-pointed explicitly at the parent's directory -- session
    construction may compute static-sites artifacts and must share
    them with the battery and other workers.
    """
    artifact_cache.configure(root=cache_root, enabled=cache_enabled)
    host = SessionHost(snapshot_every=snapshot_every)
    faults = active_faults()
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(request, dict):
            continue
        if request.get("op") == "shutdown":
            break
        if request.get("op") in _FAULTED_OPS:
            try:
                faults.on_server(WORKER_SITE)
            except InjectedCrash:
                # a crash fault means *process death*, not a polite
                # error reply: the supervisor must see the pipe break
                os._exit(CRASH_EXIT_STATUS)
        response = host.handle(request)
        if response is None:
            break
        try:
            conn.send(response)
        except (EOFError, OSError, BrokenPipeError):
            break
