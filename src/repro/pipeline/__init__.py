"""Speculative 5-stage pipeline simulator (sim-outorder substitute)."""

from .caches import Cache
from .config import CacheConfig, PipelineConfig
from .core import PipelineResult, PipelineSimulator
from .records import BranchRecord, PipelineStats

__all__ = [
    "Cache",
    "CacheConfig",
    "PipelineConfig",
    "PipelineResult",
    "PipelineSimulator",
    "BranchRecord",
    "PipelineStats",
]
