"""Speculative 5-stage pipeline simulator (sim-outorder substitute)."""

from .backends import (
    BACKEND_NAMES,
    BACKENDS,
    DEFAULT_BACKEND,
    PipelineBackend,
    backend_uses_decoded,
    create_simulator,
    normalize_backend,
    register_backend,
)
from .caches import Cache
from .config import CacheConfig, PipelineConfig
from .core import PipelineResult, PipelineSimulator
from .decode import (
    PIPELINE_FAST_ENV,
    DecodedProgram,
    clear_decoded_cache,
    decode_program,
    decoded_run,
    pipeline_fast_enabled,
)
from .ooo import (
    DEPTH_HISTOGRAM_KEY,
    OOO_COMMIT_WIDTH,
    OOO_ISSUE_WIDTH,
    OOO_WINDOW,
    OutOfOrderSimulator,
)
from .records import BranchRecord, BranchRecordStore, PipelineStats
from .snapshot import (
    SNAPSHOT_SCHEMA,
    PipelineSnapshot,
    SnapshotError,
    capture_snapshot,
    restore_snapshot,
)

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "DEPTH_HISTOGRAM_KEY",
    "OOO_COMMIT_WIDTH",
    "OOO_ISSUE_WIDTH",
    "OOO_WINDOW",
    "OutOfOrderSimulator",
    "PipelineBackend",
    "backend_uses_decoded",
    "create_simulator",
    "normalize_backend",
    "register_backend",
    "Cache",
    "CacheConfig",
    "PipelineConfig",
    "PipelineResult",
    "PipelineSimulator",
    "BranchRecord",
    "BranchRecordStore",
    "PipelineStats",
    "DecodedProgram",
    "PIPELINE_FAST_ENV",
    "clear_decoded_cache",
    "decode_program",
    "decoded_run",
    "pipeline_fast_enabled",
    "SNAPSHOT_SCHEMA",
    "PipelineSnapshot",
    "SnapshotError",
    "capture_snapshot",
    "restore_snapshot",
]
