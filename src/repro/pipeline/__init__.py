"""Speculative 5-stage pipeline simulator (sim-outorder substitute)."""

from .caches import Cache
from .config import CacheConfig, PipelineConfig
from .core import PipelineResult, PipelineSimulator
from .decode import (
    PIPELINE_FAST_ENV,
    DecodedProgram,
    clear_decoded_cache,
    decode_program,
    decoded_run,
    pipeline_fast_enabled,
)
from .records import BranchRecord, BranchRecordStore, PipelineStats
from .snapshot import (
    SNAPSHOT_SCHEMA,
    PipelineSnapshot,
    SnapshotError,
    capture_snapshot,
    restore_snapshot,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "PipelineConfig",
    "PipelineResult",
    "PipelineSimulator",
    "BranchRecord",
    "BranchRecordStore",
    "PipelineStats",
    "DecodedProgram",
    "PIPELINE_FAST_ENV",
    "clear_decoded_cache",
    "decode_program",
    "decoded_run",
    "pipeline_fast_enabled",
    "SNAPSHOT_SCHEMA",
    "PipelineSnapshot",
    "SnapshotError",
    "capture_snapshot",
    "restore_snapshot",
]
