"""Pipeline backend registry: the execution model as a dimension.

The speculative *front end* -- fetch, branch prediction, confidence
tagging, wrong-path execution, the gating/eager hooks, the decoded
fast path -- lives in :class:`~repro.pipeline.core.PipelineSimulator`
and is shared by every backend.  A **backend** supplies the execution
model behind it: how instructions occupy the in-flight window, when
branches resolve, and how squash recovery restores machine state.

Backends plug in by subclassing :class:`PipelineSimulator` and
overriding the backend hook surface (:class:`PipelineBackend` below).
Two ship with the repository:

``inorder``
    :class:`~repro.pipeline.core.PipelineSimulator` itself -- the
    5-stage in-order core every paper figure was validated on.  It is
    the default everywhere and its output is golden: the CI smoke legs
    byte-compare it against the committed report.

``ooo``
    :class:`~repro.pipeline.ooo.OutOfOrderSimulator` -- the R10K-style
    out-of-order core (register rename + active list, issue queue,
    configurable in-flight window, squash-on-mispredict).

The backend name travels with :class:`~repro.harness.experiments.Scale`
through the CLI (``--backend``), the artifact cache keys, the DAG
planner, segment snapshots and checkpoint fingerprints -- sweepable
exactly like predictor choice.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Protocol, Tuple, Type

from ..confidence.base import ConfidenceEstimator
from ..isa import Program
from ..predictors.base import BranchPredictor
from .config import PipelineConfig
from .core import PipelineResult, PipelineSimulator
from .decode import DecodedProgram
from .ooo import OutOfOrderSimulator

#: Name of the backend used when none is requested.
DEFAULT_BACKEND = "inorder"


class PipelineBackend(Protocol):
    """The surface a pipeline backend implements.

    :class:`~repro.pipeline.core.PipelineSimulator` provides the
    in-order reference implementation of every method; a backend
    subclass overrides the timing-model subset it changes.  The
    front-end machinery guarantees the hooks are called identically on
    the reference and decoded fetch paths (grouped fast-path entries
    only exist for the in-order backend, which overrides nothing).
    """

    def wants_fetch(self) -> bool:
        """Would the pipeline accept a fetch slot this cycle?"""

    def step_cycle(self, fetch_allowed: bool = True) -> None:
        """Advance one cycle: commit/resolve, then optionally fetch."""

    def run(self, max_cycles: int = 10_000_000,
            max_instructions: Optional[int] = None,
            stop_instructions: Optional[int] = None) -> PipelineResult:
        """Simulate to halt, a budget, or a soft segment boundary."""

    def result(self) -> PipelineResult:
        """Snapshot stats/records/quadrants (usable mid-simulation)."""

    # -- backend timing hooks ------------------------------------------

    def _dispatch(self, entry, inst) -> None:
        """An instruction entered the window at fetch (may re-time
        ``entry.ready_cycle``; the OoO backend renames/issues here)."""

    def _retire_entry(self, entry) -> None:
        """An instruction left the window at commit (the OoO backend
        releases rename resources here)."""

    def _recover_from(self, entry) -> None:
        """Squash younger work after a detected misprediction and
        restart fetch on the correct path."""

    # -- front-end hooks backends may also refine ----------------------

    def _fetch_width(self) -> int:
        """Instructions fetchable this cycle."""

    def _fetch_branch(self, entry, taken: bool, target: int) -> None:
        """Predict, assess and record one fetched branch."""

    def _front_end_mispredict(self, entry, target: int) -> None:
        """Steer fetch at a mispredicted branch."""

    def _resolve_branch(self, entry) -> None:
        """Train predictor/estimators for one committed branch."""

    def _after_mispredicted_resolve(self, entry) -> None:
        """Apply the cost of a detected misprediction."""


#: Registered backend name -> simulator class.
BACKENDS: Dict[str, Type[PipelineSimulator]] = {
    "inorder": PipelineSimulator,
    "ooo": OutOfOrderSimulator,
}

#: Stable listing order for CLI choices and documentation.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(BACKENDS))


def register_backend(name: str, simulator: Type[PipelineSimulator]) -> None:
    """Register an additional backend (scenario packs, tests)."""
    if not name or not name.isidentifier():
        raise ValueError(f"backend name must be an identifier, got {name!r}")
    existing = BACKENDS.get(name)
    if existing is not None and existing is not simulator:
        raise ValueError(f"backend {name!r} is already registered")
    if not (isinstance(simulator, type)
            and issubclass(simulator, PipelineSimulator)):
        raise TypeError(
            f"backend {name!r} must be a PipelineSimulator subclass, "
            f"got {simulator!r}"
        )
    BACKENDS[name] = simulator


def normalize_backend(backend: Optional[str]) -> str:
    """Map ``None``/empty to the default and validate the name."""
    name = backend or DEFAULT_BACKEND
    if name not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown pipeline backend {name!r} (known: {known})")
    return name


def backend_uses_decoded(backend: Optional[str]) -> bool:
    """Whether the backend consumes ``program-decoded`` artifacts.

    Only the in-order backend has a decoded fast path; the OoO backend
    always fetches per-instruction on the reference path.
    """
    return normalize_backend(backend) == "inorder"


def create_simulator(
    program: Program,
    predictor: BranchPredictor,
    backend: Optional[str] = None,
    config: Optional[PipelineConfig] = None,
    estimators: Optional[Mapping[str, ConfidenceEstimator]] = None,
    decoded: Optional[DecodedProgram] = None,
    fast: Optional[bool] = None,
) -> PipelineSimulator:
    """Construct a simulator for ``backend`` (default ``inorder``)."""
    simulator_class = BACKENDS[normalize_backend(backend)]
    return simulator_class(
        program,
        predictor,
        config=config,
        estimators=estimators,
        decoded=decoded,
        fast=fast,
    )
