"""Pre-decoded program layout for the pipeline fast path.

The pipeline's per-instruction loop pays, for every fetched
instruction, an :class:`~repro.isa.instructions.Instruction` attribute
walk, an :class:`~repro.isa.instructions.OpCategory` dispatch (enum
hashing included) and a frozen-dataclass ``StepResult`` allocation
inside :meth:`~repro.isa.machine.Machine.step`.  None of that work
depends on anything but the program text, so this module performs it
**once per program**:

* every PC is classified into a small integer *kind* (plain ALU work,
  load, store, conditional branch, jump, jump-register, halt),
* operand fields (``rd``/``rs1``/``rs2``/``imm``) are unpacked into
  flat per-PC lists,
* ``run_len[pc]`` holds the length of the straight-line *plain* run
  (no memory, no control flow, no halt) starting at ``pc`` -- the
  basic-block prefix the fast fetch path steps in one tight loop,
* per-PC execution closures are specialised per opcode with their
  operands bound (``plain_ops`` mutate the register file directly;
  ``branch_ops`` evaluate the branch condition), eliminating the
  category dispatch and the ``evaluate_alu``/``branch_taken`` if-chains
  from the hot loop.

The packed arrays are picklable and cached as a first-class artifact
kind (``program-decoded``), keyed like the ``trace`` artifact, so the
DAG scheduler warms one per workload and every pipeline consumer
shares it.  The closures are process-local: a cache-loaded instance
rebuilds them lazily from the arrays (the :class:`ColumnarTrace` memo
convention).

Executing a plain closure is **exactly** ``Machine.step`` minus the
bookkeeping the caller batches (``pc`` advance and
``instructions_retired``): register values are always 32-bit-masked,
so the specialised bodies produce bit-identical results to
``evaluate_alu``/``branch_taken`` -- the fast/slow byte-identity tests
and CI report gates check this end to end.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, List, Optional

from ..isa.instructions import SIGN_BIT, WORD_MASK, Instruction, OpCategory, Opcode
from ..isa.program import Program

#: Environment switch: set to 0/false/no/off to force the reference
#: per-instruction pipeline loop (mirrors ``REPRO_VECTOR``).
PIPELINE_FAST_ENV = "REPRO_PIPELINE_FAST"

_DISABLED_VALUES = {"0", "false", "no", "off"}


def pipeline_fast_enabled() -> bool:
    """True when the pre-decoded pipeline fast path may be used."""
    value = os.environ.get(PIPELINE_FAST_ENV, "").strip().lower()
    return value not in _DISABLED_VALUES


#: Instruction kinds the fast fetch loop dispatches on.
K_PLAIN = 0  # ALU_RRR / ALU_RRI / LUI / NOP: straight-line, no memory
K_LOAD = 1
K_STORE = 2
K_BRANCH = 3
K_JUMP = 4  # j
K_JAL = 5  # jal (writes the link register)
K_JR = 6
K_HALT = 7

_TWO_POW_32 = 1 << 32

#: Slots that survive pickling (the closure tables do not).
_STATE_SLOTS = (
    "length",
    "kinds",
    "run_len",
    "rd",
    "rs1",
    "rs2",
    "imm",
    "opcode_names",
)


def _plain_op(
    opcode: Opcode, rd: int, rs1: int, rs2: int, imm: int
) -> Optional[Callable]:
    """Specialised executor for one plain instruction (``None`` = no-op).

    Writes to ``r0`` are architectural no-ops (``Machine.step`` skips
    them), as is ``nop`` itself, so those PCs compile to ``None``.
    """
    if opcode is Opcode.NOP or rd == 0:
        return None
    mask = WORD_MASK
    sign = SIGN_BIT
    if opcode is Opcode.ADD:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = (regs[a] + regs[b]) & mask

    elif opcode is Opcode.SUB:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = (regs[a] - regs[b]) & mask

    elif opcode is Opcode.MUL:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = (regs[a] * regs[b]) & mask

    elif opcode is Opcode.AND:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = regs[a] & regs[b]

    elif opcode is Opcode.OR:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = regs[a] | regs[b]

    elif opcode is Opcode.XOR:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = regs[a] ^ regs[b]

    elif opcode is Opcode.SLL:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = (regs[a] << (regs[b] & 31)) & mask

    elif opcode is Opcode.SRL:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = regs[a] >> (regs[b] & 31)

    elif opcode is Opcode.SRA:

        def op(regs, rd=rd, a=rs1, b=rs2):
            value = regs[a]
            if value & sign:
                value -= _TWO_POW_32
            regs[rd] = (value >> (regs[b] & 31)) & mask

    elif opcode is Opcode.SLT:

        def op(regs, rd=rd, a=rs1, b=rs2):
            left = regs[a]
            right = regs[b]
            if left & sign:
                left -= _TWO_POW_32
            if right & sign:
                right -= _TWO_POW_32
            regs[rd] = 1 if left < right else 0

    elif opcode is Opcode.SLTU:

        def op(regs, rd=rd, a=rs1, b=rs2):
            regs[rd] = 1 if regs[a] < regs[b] else 0

    elif opcode is Opcode.ADDI:
        value = imm & mask

        def op(regs, rd=rd, a=rs1, b=value):
            regs[rd] = (regs[a] + b) & mask

    elif opcode is Opcode.ANDI:
        value = imm & mask

        def op(regs, rd=rd, a=rs1, b=value):
            regs[rd] = regs[a] & b

    elif opcode is Opcode.ORI:
        value = imm & mask

        def op(regs, rd=rd, a=rs1, b=value):
            regs[rd] = regs[a] | b

    elif opcode is Opcode.XORI:
        value = imm & mask

        def op(regs, rd=rd, a=rs1, b=value):
            regs[rd] = regs[a] ^ b

    elif opcode is Opcode.SLLI:
        shift = (imm & mask) & 31

        def op(regs, rd=rd, a=rs1, b=shift):
            regs[rd] = (regs[a] << b) & mask

    elif opcode is Opcode.SRLI:
        shift = (imm & mask) & 31

        def op(regs, rd=rd, a=rs1, b=shift):
            regs[rd] = regs[a] >> b

    elif opcode is Opcode.SRAI:
        shift = (imm & mask) & 31

        def op(regs, rd=rd, a=rs1, b=shift):
            value = regs[a]
            if value & sign:
                value -= _TWO_POW_32
            regs[rd] = (value >> b) & mask

    elif opcode is Opcode.SLTI:
        right = imm & mask
        if right & sign:
            right -= _TWO_POW_32

        def op(regs, rd=rd, a=rs1, b=right):
            left = regs[a]
            if left & sign:
                left -= _TWO_POW_32
            regs[rd] = 1 if left < b else 0

    elif opcode is Opcode.LUI:
        value = (imm << 16) & mask

        def op(regs, rd=rd, b=value):
            regs[rd] = b

    else:  # pragma: no cover - decode_program never routes others here
        raise ValueError(f"{opcode} is not a plain opcode")
    return op


def _branch_op(opcode: Opcode, rs1: int, rs2: int) -> Callable:
    """Specialised condition evaluator for one conditional branch."""
    sign = SIGN_BIT
    if opcode is Opcode.BEQ:

        def op(regs, a=rs1, b=rs2):
            return regs[a] == regs[b]

    elif opcode is Opcode.BNE:

        def op(regs, a=rs1, b=rs2):
            return regs[a] != regs[b]

    elif opcode is Opcode.BLT:

        def op(regs, a=rs1, b=rs2):
            left = regs[a]
            right = regs[b]
            if left & sign:
                left -= _TWO_POW_32
            if right & sign:
                right -= _TWO_POW_32
            return left < right

    elif opcode is Opcode.BGE:

        def op(regs, a=rs1, b=rs2):
            left = regs[a]
            right = regs[b]
            if left & sign:
                left -= _TWO_POW_32
            if right & sign:
                right -= _TWO_POW_32
            return left >= right

    else:  # pragma: no cover - decode_program never routes others here
        raise ValueError(f"{opcode} is not a conditional branch")
    return op


_KIND_BY_CATEGORY = {
    OpCategory.ALU_RRR: K_PLAIN,
    OpCategory.ALU_RRI: K_PLAIN,
    OpCategory.LUI: K_PLAIN,
    OpCategory.LOAD: K_LOAD,
    OpCategory.STORE: K_STORE,
    OpCategory.BRANCH: K_BRANCH,
    OpCategory.JUMP_REGISTER: K_JR,
}


def _instruction_kind(instruction: Instruction) -> int:
    opcode = instruction.opcode
    category = opcode.category
    if category is OpCategory.JUMP:
        return K_JAL if opcode is Opcode.JAL else K_JUMP
    if category is OpCategory.SYSTEM:
        return K_HALT if opcode is Opcode.HALT else K_PLAIN
    return _KIND_BY_CATEGORY[category]


class DecodedProgram:
    """One program's instructions as packed per-PC arrays + closures."""

    __slots__ = _STATE_SLOTS + ("_plain_ops", "_branch_ops")

    def __init__(
        self,
        length: int,
        kinds: List[int],
        run_len: List[int],
        rd: List[int],
        rs1: List[int],
        rs2: List[int],
        imm: List[int],
        opcode_names: List[str],
    ):
        self.length = length
        self.kinds = kinds
        self.run_len = run_len
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.opcode_names = opcode_names
        self._plain_ops: Optional[List[Optional[Callable]]] = None
        self._branch_ops: Optional[List[Optional[Callable]]] = None

    @property
    def plain_ops(self) -> List[Optional[Callable]]:
        """Per-PC executors for plain instructions (lazily rebuilt)."""
        ops = self._plain_ops
        if ops is None:
            ops = [
                _plain_op(
                    Opcode(self.opcode_names[pc]),
                    self.rd[pc],
                    self.rs1[pc],
                    self.rs2[pc],
                    self.imm[pc],
                )
                if self.kinds[pc] == K_PLAIN
                else None
                for pc in range(self.length)
            ]
            self._plain_ops = ops
        return ops

    @property
    def branch_ops(self) -> List[Optional[Callable]]:
        """Per-PC condition evaluators for branches (lazily rebuilt)."""
        ops = self._branch_ops
        if ops is None:
            ops = [
                _branch_op(
                    Opcode(self.opcode_names[pc]), self.rs1[pc], self.rs2[pc]
                )
                if self.kinds[pc] == K_BRANCH
                else None
                for pc in range(self.length)
            ]
            self._branch_ops = ops
        return ops

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in _STATE_SLOTS}

    def __setstate__(self, state) -> None:
        for slot in _STATE_SLOTS:
            setattr(self, slot, state[slot])
        self._plain_ops = None
        self._branch_ops = None


def decode_program(program: Program) -> DecodedProgram:
    """Pre-decode ``program`` into a :class:`DecodedProgram`."""
    instructions = program.instructions
    length = len(instructions)
    kinds = [_instruction_kind(instruction) for instruction in instructions]
    run_len = [0] * length
    streak = 0
    for pc in range(length - 1, -1, -1):
        streak = streak + 1 if kinds[pc] == K_PLAIN else 0
        run_len[pc] = streak
    return DecodedProgram(
        length=length,
        kinds=kinds,
        run_len=run_len,
        rd=[instruction.rd for instruction in instructions],
        rs1=[instruction.rs1 for instruction in instructions],
        rs2=[instruction.rs2 for instruction in instructions],
        imm=[instruction.imm for instruction in instructions],
        opcode_names=[instruction.opcode.value for instruction in instructions],
    )


@lru_cache(maxsize=64)
def decoded_run(name: str, iterations: Optional[int] = None) -> DecodedProgram:
    """The pre-decoded form of workload ``name``'s program.

    Memoised in process (so all pipeline consumers share one instance
    and its closure tables) and persisted in the artifact cache as kind
    ``program-decoded``, keyed like the ``trace`` artifact.
    """
    # imported here: corpus -> measure -> vector -> columnar at package
    # init time, so a module-level import would be circular
    from ..engine.cache import get_cache
    from ..engine.corpus import profile_fingerprint, workload_program

    return get_cache().cached(
        "program-decoded",
        lambda: decode_program(workload_program(name, iterations)),
        workload=name,
        iterations=iterations,
        profile=profile_fingerprint(name),
    )


def clear_decoded_cache() -> None:
    """Drop memoised decoded programs (tests and long-lived processes)."""
    decoded_run.cache_clear()
