"""Set-associative LRU caches (instruction and data sides share this).

Addresses are word-granular (matching the ISA); a line holds
``line_words`` consecutive words.  Replacement is true LRU within a
set, implemented as a recency-ordered list per set -- sets are small
(the associativity), so list operations beat any cleverer structure in
pure Python.
"""

from __future__ import annotations

from typing import List

from .config import CacheConfig


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_words.bit_length() - 1
        #: per-set list of resident line tags, most recently used last
        self._sets: List[List[int]] = [[] for __ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit (and updates LRU)."""
        line = address >> self._line_shift
        ways = self._sets[line & self._set_mask]
        if line in ways:
            self.hits += 1
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            return True
        self.misses += 1
        ways.append(line)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    def contains(self, address: int) -> bool:
        """Presence probe without LRU side effects (tests)."""
        line = address >> self._line_shift
        return line in self._sets[line & self._set_mask]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
