"""Cycle-based speculative pipeline simulator.

This is the repository's stand-in for the paper's extended
SimpleScalar ``sim-outorder``: a 5-stage machine that

* fetches ``fetch_width`` instructions per cycle through an I-cache,
* executes every fetched instruction *functionally at decode* on the
  journaled :class:`~repro.isa.Machine` -- so, like the paper's
  simulator, it "knows the outcome of all branches at the point of
  instruction decode, even for branches that do not actually commit",
* follows the branch predictor down wrong paths, executing real
  wrong-path code until the mispredicted branch resolves
  ``resolve_stage`` cycles after fetch, then restores the branch's
  machine snapshot, squashes younger in-flight instructions, repairs
  the predictor's speculative history, and charges the additional
  ``mispredict_penalty`` cycles of recovery,
* resolves/commits in order (squashed instructions never update the
  predictor, the estimators, or architectural state).

Because the journaled machine *is* the architectural state, the
committed instruction stream provably equals the pure functional
execution -- an invariant the integration tests check directly.

The simulator records a :class:`~repro.pipeline.records.BranchRecord`
for every fetched conditional branch, carrying both the *precise*
misprediction distance (reset when a mispredicted branch is fetched;
the oracle view of Figures 6/7) and the *perceived* distance (reset
when a misprediction is detected at resolution; the implementable view
of Figures 8/9), plus the confidence estimates made at fetch time.

Two fetch engines share these semantics bit for bit:

* the **reference path** steps :meth:`Machine.step` once per fetched
  instruction (``REPRO_PIPELINE_FAST=0``),
* the **fast path** (default) drives a
  :class:`~repro.pipeline.decode.DecodedProgram`: straight-line plain
  runs execute as pre-specialised closures in one tight inner loop,
  consecutive same-line I-cache accesses are batched (an access to the
  most-recently-touched line is a guaranteed hit that cannot disturb
  LRU order, so the hit counter is bumped arithmetically), and
  non-branch instructions fetched in the same cycle share one grouped
  in-flight entry that the commit stage drains by count.

Both paths funnel every branch through the same ``_fetch_branch`` /
``_resolve_branch`` hooks, so predictor, estimator, record and cache
state evolve identically -- the byte-identity tests and the CI golden
report legs compare the two engines end to end.

The front end above (fetch, branch prediction, confidence tagging, the
gating/eager hooks, the decoded fast path) is shared by every pipeline
*backend*; the execution model behind it is pluggable through the
backend hook surface (``_dispatch``, ``_retire_entry``,
``_recover_from`` and friends -- the :class:`PipelineBackend` protocol
in :mod:`repro.pipeline.backends`).  This class is itself the
``inorder`` backend; :class:`repro.pipeline.ooo.OutOfOrderSimulator`
swaps an R10K-style out-of-order window in behind the same front end.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..confidence.base import ConfidenceEstimator
from ..isa import Machine, MachineFault, Program
from ..isa.instructions import WORD_MASK, OpCategory
from ..metrics.quadrant import QuadrantCounts
from ..predictors.base import BranchPredictor, Prediction
from ..predictors.gshare import GsharePredictor
from ..predictors.mcfarling import McFarlingPredictor
from .caches import Cache
from .config import PipelineConfig
from .decode import (
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_STORE,
    DecodedProgram,
    decode_program,
    pipeline_fast_enabled,
)
from .records import BranchRecord, BranchRecordStore, PipelineStats


class _Inflight:
    """One in-flight unit: a single instruction, or -- on the fast
    path -- a *group* of ``count`` non-branch instructions fetched in
    the same cycle (they share one ready cycle, so commit can drain
    them arithmetically)."""

    __slots__ = (
        "sequence",
        "pc",
        "count",
        "is_branch",
        "is_halt",
        "prediction",
        "assessments",
        "actual_taken",
        "mispredicted",
        "snapshot",
        "ready_cycle",
        "record_index",
    )

    def __init__(self, sequence: int, pc: int, ready_cycle: int):
        self.sequence = sequence
        self.pc = pc
        self.count = 1
        self.is_branch = False
        self.is_halt = False
        self.prediction = None
        self.assessments: List[Tuple[str, ConfidenceEstimator, object]] = []
        self.actual_taken = False
        self.mispredicted = False
        self.snapshot = None
        self.ready_cycle = ready_cycle
        self.record_index = -1


class PipelineResult:
    """Everything a pipeline run produced."""

    def __init__(
        self,
        stats: PipelineStats,
        records: BranchRecordStore,
        quadrants_committed: Dict[str, QuadrantCounts],
        quadrants_all: Dict[str, QuadrantCounts],
    ):
        self.stats = stats
        #: Columnar buffers of every fetched branch (the pickled form).
        self.records = records
        #: Estimator quadrants over committed branches only (resolved).
        self.quadrants_committed = quadrants_committed
        #: Estimator quadrants over every fetched branch.
        self.quadrants_all = quadrants_all

    @property
    def branch_records(self) -> List[BranchRecord]:
        """Record views, materialised from the columnar store on demand."""
        return self.records.materialize()

    def committed_records(self) -> List[BranchRecord]:
        return [record for record in self.branch_records if record.committed]


class PipelineSimulator:
    """Speculative 5-stage pipeline over a program + predictor.

    Optional confidence ``estimators`` are consulted at fetch for every
    branch (wrong-path included, as in hardware) and resolved in order
    for committed branches only.

    ``fast`` selects the fetch engine: ``None`` (default) follows the
    ``REPRO_PIPELINE_FAST`` environment gate, ``True``/``False`` force
    the pre-decoded fast path / the reference per-instruction loop.
    ``decoded`` may supply a shared :class:`DecodedProgram` (e.g. the
    ``program-decoded`` artifact) to skip the in-process decode.
    """

    def __init__(
        self,
        program: Program,
        predictor: BranchPredictor,
        config: PipelineConfig = None,
        estimators: Mapping[str, ConfidenceEstimator] = None,
        decoded: Optional[DecodedProgram] = None,
        fast: Optional[bool] = None,
    ):
        self.program = program
        self.predictor = predictor
        self.config = config or PipelineConfig()
        self.estimators = dict(estimators or {})
        self.machine = Machine(program)
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.stats = PipelineStats()
        self.records = BranchRecordStore()
        if fast is None:
            fast = pipeline_fast_enabled()
        if fast:
            self._decoded = decoded if decoded is not None else decode_program(
                program
            )
        else:
            self._decoded = None
        self._inflight: Deque[_Inflight] = deque()
        #: Instructions currently in flight (grouped entries count for
        #: ``entry.count``); the window check everywhere.
        self._inflight_count = 0
        self._cycle = 0
        self._sequence = 0
        self._fetch_stalled_until = 0
        #: True when the speculative front end ran off the program (a
        #: wrong-path fault); cleared by misprediction recovery.
        self._fetch_faulted = False
        self._congestion = 0
        #: Unresolved mispredicted branches in flight (0 or more; >0
        #: means the front end is on a wrong path).
        self._unresolved_mispredictions = 0
        #: Branches fetched since the last mispredicted *fetch* (precise).
        self._precise_counter = 0
        #: Branches fetched since the last *detected* misprediction.
        self._perceived_counter = 0
        #: I-cache line of the most recent fetch access (fast path): a
        #: repeat access is a guaranteed hit with LRU order unchanged.
        self._icache_line = -1
        self._program_done = False  # halt committed
        self._max_instructions: Optional[int] = None
        self._quadrants_committed = {
            name: QuadrantCounts() for name in self.estimators
        }
        self._quadrants_all = {name: QuadrantCounts() for name in self.estimators}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the program's ``halt`` has committed."""
        return self._program_done

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def branch_records(self) -> List[BranchRecord]:
        """Record views of every fetched branch so far."""
        return self.records.materialize()

    def wants_fetch(self) -> bool:
        """Would this pipeline fetch if offered the slot this cycle?

        Fetch arbiters (the SMT front end) use this to skip stalled or
        finished threads without burning the shared slot.
        """
        return (
            not self._program_done
            and not self._fetch_faulted
            and self._cycle >= self._fetch_stalled_until
            and not self.machine.halted
            and self._inflight_count < self.config.window
        )

    def step_cycle(self, fetch_allowed: bool = True) -> None:
        """Advance one cycle: commit/resolve, then (optionally) fetch.

        ``fetch_allowed=False`` models losing the fetch slot to another
        thread or a gating decision; the back end still progresses.
        """
        self._commit_stage()
        if not self._program_done and fetch_allowed:
            self._fetch_stage()
        self._cycle += 1
        if self._congestion:
            self._congestion -= 1

    def run(
        self,
        max_cycles: int = 10_000_000,
        max_instructions: Optional[int] = None,
        stop_instructions: Optional[int] = None,
    ) -> PipelineResult:
        """Simulate until the program halts (committed) or a limit hits.

        When ``max_instructions`` binds, the run commits *exactly* that
        many instructions: the commit stage truncates its final commit
        group rather than overshooting by up to ``commit_width - 1``,
        so fixed-work comparisons (gated vs. baseline IPC) measure
        identical instruction counts.

        ``stop_instructions`` is a *soft* segment boundary for
        checkpointable runs: the loop pauses (checked only at the top
        of a cycle) once at least that many instructions have
        committed, without influencing commit-group widths -- so
        calling ``run`` again with the same ``max_instructions``
        continues the simulation cycle-for-cycle identically to a run
        that never paused.  A segment may therefore overshoot the soft
        boundary by up to ``commit_width - 1`` instructions; only the
        hard ``max_instructions`` budget truncates exactly.
        """
        if self._decoded is not None and type(self) is PipelineSimulator:
            # no subclass hooks to honour: run the fused fast loop
            return self._run_fast(max_cycles, max_instructions, stop_instructions)
        self._max_instructions = max_instructions
        try:
            while not self._program_done and self._cycle < max_cycles:
                if (
                    max_instructions is not None
                    and self.stats.committed_instructions >= max_instructions
                ):
                    break
                if (
                    stop_instructions is not None
                    and self.stats.committed_instructions >= stop_instructions
                ):
                    break
                self.step_cycle()
        finally:
            self._max_instructions = None
        return self.result()

    def _run_fast(
        self,
        max_cycles: int,
        max_instructions: Optional[int],
        stop_instructions: Optional[int] = None,
    ) -> PipelineResult:
        """Fused cycle loop over the pre-decoded program.

        Cycle-for-cycle identical to ``step_cycle`` +
        ``_fetch_stage_fast``, but commit and fetch are inlined in one
        loop so per-cycle hook dispatch and local re-hoisting (the
        dominant cost at ~3 fetched instructions per cycle) happen once
        per *run* instead of once per cycle, and the per-branch
        ``_fetch_branch`` / ``_resolve_branch`` / ``_recover_from``
        bodies are inlined with the record-store column appends hoisted
        to bound methods (the workloads average one branch per ~5
        instructions, so per-branch call frames are the next cost after
        per-cycle ones).  Every piece of simulator state this loop
        touches -- stat counters, congestion, stall deadlines, the
        misprediction-distance counters -- lives in locals and is
        written back in the ``finally`` block; that is only sound
        because *every* mutator of that state is inlined here, which is
        why this loop is engaged only for the exact base class
        (subclasses override the stage hooks and take the per-cycle
        path).

        Inside this loop, in-flight entries are plain lists (a Python
        class instantiation costs ~4x a list literal and entries are
        the hottest allocation), laid out exactly like the
        ``_Inflight`` slots::

            [0]=sequence  [1]=pc         [2]=count       [3]=is_branch
            [4]=is_halt   [5]=prediction [6]=assessments [7]=actual_taken
            [8]=mispredicted [9]=snapshot [10]=ready_cycle [11]=record_index

        Any entries still in flight when the loop exits (an early
        ``max_instructions``/``max_cycles`` stop) are converted back to
        ``_Inflight`` objects in the ``finally`` block, so external
        inspection and a later ``step_cycle()`` see the normal
        representation.  ``machine.regs`` is re-hoisted every cycle
        because misprediction recovery rebinds it, and
        ``machine.instructions_retired`` is flushed before every
        snapshot and zeroed after every restore so checkpoints stay
        exact.
        """
        self._max_instructions = max_instructions
        # a resumed run (earlier soft stop, or an unpickled snapshot)
        # holds _Inflight objects; convert them back to the list layout
        # this loop indexes by slot (inverse of the finally block below)
        queue = self._inflight
        for position, entry in enumerate(queue):
            if type(entry) is not _Inflight:
                continue
            queue[position] = [
                entry.sequence,
                entry.pc,
                entry.count,
                entry.is_branch,
                entry.is_halt,
                entry.prediction,
                entry.assessments or None,
                entry.actual_taken,
                entry.mispredicted,
                entry.snapshot,
                entry.ready_cycle,
                entry.record_index,
            ]
        records = self.records
        stats = self.stats
        machine = self.machine
        icache = self.icache
        dcache = self.dcache
        # run-local simulator state (flushed in the finally block)
        icache_hits = icache.hits
        icache_misses = icache.misses
        dcache_hits = dcache.hits
        dcache_misses = dcache.misses
        precise = self._precise_counter
        perceived = self._perceived_counter
        sequence = self._sequence
        inflight_count = self._inflight_count
        last_line = self._icache_line
        congestion = self._congestion
        fetch_stalled_until = self._fetch_stalled_until
        fetch_faulted = self._fetch_faulted
        unresolved = self._unresolved_mispredictions
        program_done = self._program_done
        cycle = self._cycle
        retired = 0
        # run-local stat counters (absolute values, assigned back)
        fetched_instructions = stats.fetched_instructions
        committed_instructions = stats.committed_instructions
        squashed_instructions = stats.squashed_instructions
        fetched_branches = stats.fetched_branches
        fetched_mispredictions = stats.fetched_mispredictions
        committed_branches = stats.committed_branches
        committed_mispredictions = stats.committed_mispredictions
        try:
            config = self.config
            decoded = self._decoded
            kinds = decoded.kinds
            run_len = decoded.run_len
            plain_ops = decoded.plain_ops
            branch_ops = decoded.branch_ops
            imms = decoded.imm
            rs1s = decoded.rs1
            rs2s = decoded.rs2
            rds = decoded.rd
            code_length = decoded.length
            # cache internals, inlined below (hit/LRU bookkeeping is the
            # per-access cost; the counters stay run-local)
            line_shift = icache._line_shift
            icache_sets = icache._sets
            icache_set_mask = icache._set_mask
            icache_assoc = icache.config.associativity
            dcache_line_shift = dcache._line_shift
            dcache_sets = dcache._sets
            dcache_set_mask = dcache._set_mask
            dcache_assoc = dcache.config.associativity
            icache_miss_penalty = config.icache.miss_penalty
            dcache_miss_penalty = config.dcache.miss_penalty
            congestion_cap = config.congestion_cap
            fetch_width = config.fetch_width
            commit_width = config.commit_width
            window = config.window
            resolve_stage = config.resolve_stage
            mispredict_penalty = config.mispredict_penalty
            memory = machine.memory
            store_word = machine.store_word
            inflight = self._inflight
            inflight_append = inflight.append
            inflight_popleft = inflight.popleft
            estimator_items = tuple(self.estimators.items())
            predictor = self.predictor
            predictor_predict = predictor.predict
            # 0 = call through the predictor protocol, 1/2 = the two
            # paper predictors inlined below (token layouts match their
            # predict_compact/resolve_compact exactly, so entries left
            # in flight on an early stop still resolve correctly)
            inline_kind = 0
            if estimator_items:
                # estimators consume the full Prediction record
                predictor_resolve = self.predictor.resolve
            else:
                predictor_predict_compact = predictor.predict_compact
                predictor_resolve = predictor.resolve_compact
                if (
                    type(predictor) is GsharePredictor
                    and predictor.speculative_history
                ):
                    inline_kind = 1
                    pr_values = predictor.table.values
                    pr_index_mask = predictor.table.index_mask
                    pr_midpoint = predictor.table.midpoint
                    pr_max = predictor.table.max_value
                    pr_history = predictor.history
                    pr_hist_mask = pr_history.mask
                elif (
                    type(predictor) is McFarlingPredictor
                    and predictor.speculative_history
                ):
                    inline_kind = 2
                    mc_g_values = predictor.gshare_table.values
                    mc_g_mask = predictor.gshare_table.index_mask
                    mc_g_midpoint = predictor.gshare_table.midpoint
                    mc_g_max = predictor.gshare_table.max_value
                    mc_b_values = predictor.bimodal_table.values
                    mc_p_mask = predictor.bimodal_table.index_mask
                    mc_b_midpoint = predictor.bimodal_table.midpoint
                    mc_b_max = predictor.bimodal_table.max_value
                    mc_m_values = predictor.meta_table.values
                    mc_m_midpoint = predictor.meta_table.midpoint
                    mc_m_max = predictor.meta_table.max_value
                    mc_history = predictor.history
                    mc_hist_mask = mc_history.mask
            quadrants_all = self._quadrants_all
            quadrants_committed = self._quadrants_committed
            rec_sequence_append = records.sequence.append
            rec_pc_append = records.pc.append
            rec_predicted_append = records.predicted_taken.append
            rec_actual_append = records.actual_taken.append
            rec_fetch_cycle_append = records.fetch_cycle.append
            rec_resolve_cycle = records.resolve_cycle
            rec_resolve_cycle_append = rec_resolve_cycle.append
            rec_committed = records.committed
            rec_committed_append = rec_committed.append
            rec_precise_append = records.precise_distance.append
            rec_perceived_append = records.perceived_distance.append
            rec_wrong_path_append = records.wrong_path.append
            rec_assessments_append = records.assessments.append
            record_count = len(records.sequence)
            limit = max_instructions
            stop = stop_instructions
            while not program_done and cycle < max_cycles:
                if limit is not None and committed_instructions >= limit:
                    break
                if stop is not None and committed_instructions >= stop:
                    break
                # ---- commit/resolve stage (mirrors _commit_stage) ----
                if inflight and inflight[0][10] <= cycle:
                    width = commit_width
                    if limit is not None:
                        remaining = limit - committed_instructions
                        if remaining < width:
                            width = remaining
                    committed = 0
                    while inflight and committed < width:
                        entry = inflight[0]
                        if entry[10] > cycle:  # ready_cycle
                            break
                        count = entry[2]
                        if count > 1:
                            take = width - committed
                            if count <= take:
                                take = count
                                inflight_popleft()
                            else:
                                entry[2] = count - take
                            inflight_count -= take
                            committed += take
                            committed_instructions += take
                            continue
                        inflight_popleft()
                        inflight_count -= 1
                        committed += 1
                        committed_instructions += 1
                        if entry[4]:  # is_halt
                            program_done = True
                            break
                        if not entry[3]:  # is_branch
                            continue
                        # inline _resolve_branch
                        committed_branches += 1
                        index = entry[11]  # record_index
                        rec_committed[index] = True
                        rec_resolve_cycle[index] = cycle
                        prediction = entry[5]
                        actual = entry[7]
                        entry_pc = entry[1]
                        if inline_kind == 1:
                            # inline GsharePredictor.resolve_compact
                            index = prediction[1]
                            value = pr_values[index]
                            if actual:
                                if value < pr_max:
                                    pr_values[index] = value + 1
                            elif value > 0:
                                pr_values[index] = value - 1
                            if actual != prediction[0]:
                                # squash repair of speculative history
                                pr_history.value = (
                                    (prediction[2] << 1)
                                    | (1 if actual else 0)
                                ) & pr_hist_mask
                        elif inline_kind == 2:
                            # inline McFarlingPredictor.resolve_compact
                            (
                                predicted,
                                g_index,
                                g_taken,
                                b_taken,
                                snapshot_hist,
                            ) = prediction
                            g_right = g_taken == actual
                            p_index = entry_pc & mc_p_mask
                            if g_right != (b_taken == actual):
                                value = mc_m_values[p_index]
                                if g_right:
                                    if value < mc_m_max:
                                        mc_m_values[p_index] = value + 1
                                elif value > 0:
                                    mc_m_values[p_index] = value - 1
                            if actual:
                                value = mc_g_values[g_index]
                                if value < mc_g_max:
                                    mc_g_values[g_index] = value + 1
                                value = mc_b_values[p_index]
                                if value < mc_b_max:
                                    mc_b_values[p_index] = value + 1
                            else:
                                value = mc_g_values[g_index]
                                if value > 0:
                                    mc_g_values[g_index] = value - 1
                                value = mc_b_values[p_index]
                                if value > 0:
                                    mc_b_values[p_index] = value - 1
                            if actual != predicted:
                                mc_history.value = (
                                    (snapshot_hist << 1)
                                    | (1 if actual else 0)
                                ) & mc_hist_mask
                        else:
                            predictor_resolve(entry_pc, actual, prediction)
                        assessments = entry[6]
                        if assessments:
                            correct = not entry[8]
                            for name, estimator, assessment in assessments:
                                estimator.resolve(
                                    entry_pc, prediction, actual, assessment
                                )
                                quadrants_committed[name].record(
                                    correct, assessment.high_confidence
                                )
                        if entry[8]:  # mispredicted
                            committed_mispredictions += 1
                            perceived = 0  # detection event
                            # inline _recover_from; pending retired are
                            # all wrong-path, the restore discards them
                            machine.restore(entry[9])
                            retired = 0
                            squashed_instructions += inflight_count
                            for younger in inflight:
                                squashed_index = younger[11]
                                if squashed_index >= 0:
                                    rec_committed[squashed_index] = False
                            inflight.clear()
                            inflight_count = 0
                            machine.trim_journal()
                            unresolved = 0
                            fetch_faulted = False
                            stall = cycle + 1 + mispredict_penalty
                            if stall > fetch_stalled_until:
                                fetch_stalled_until = stall
                            break  # redirect consumed the commit group
                # ---- fetch stage (mirrors _fetch_stage_fast) ----
                if (
                    not program_done
                    and cycle >= fetch_stalled_until
                    and not fetch_faulted
                    and not machine.halted
                    and inflight_count < window
                ):
                    regs = machine.regs  # recovery rebinds the list
                    pc = machine.pc
                    ready = cycle + resolve_stage
                    fetched = 0
                    group = None
                    while fetched < fetch_width and inflight_count < window:
                        if pc < 0 or pc >= code_length:
                            if unresolved:
                                # runaway wrong-path fetch (stale jr)
                                fetch_faulted = True
                                break
                            raise MachineFault(
                                f"fetch outside program at pc={pc}"
                            )
                        line = pc >> line_shift
                        if line != last_line:
                            last_line = line
                            # inline Cache.access for the I-side
                            ways = icache_sets[line & icache_set_mask]
                            if line in ways:
                                icache_hits += 1
                                if ways[-1] != line:
                                    ways.remove(line)
                                    ways.append(line)
                            else:
                                icache_misses += 1
                                ways.append(line)
                                if len(ways) > icache_assoc:
                                    ways.pop(0)
                                fetch_stalled_until = (
                                    cycle + icache_miss_penalty
                                )
                                break
                        else:
                            icache_hits += 1
                        run = run_len[pc]
                        if run:
                            slots = fetch_width - fetched
                            if run > slots:
                                run = slots
                            room = window - inflight_count
                            if run > room:
                                run = room
                            line_end = (line + 1) << line_shift
                            if pc + run > line_end:
                                run = line_end - pc
                            end = pc + run
                            index = pc
                            while index < end:
                                op = plain_ops[index]
                                if op is not None:
                                    op(regs)
                                index += 1
                            icache_hits += run - 1
                            retired += run
                            fetched += run
                            inflight_count += run
                            if group is not None:
                                group[2] += run  # count
                            else:
                                group = [
                                    sequence, pc, run, False, False, None,
                                    None, False, False, None, ready, -1,
                                ]
                                inflight_append(group)
                            sequence += run
                            pc = end
                            continue
                        kind = kinds[pc]
                        if kind == K_BRANCH:
                            taken = branch_ops[pc](regs)
                            target = imms[pc]
                            actual_next = target if taken else pc + 1
                            retired += 1
                            fetched += 1
                            inflight_count += 1
                            group = None
                            # inline _fetch_branch
                            if inline_kind == 1:
                                # inline GsharePredictor.predict_compact
                                history_value = pr_history.value
                                g_index = (
                                    pc ^ history_value
                                ) & pr_index_mask
                                predicted_taken = (
                                    pr_values[g_index] >= pr_midpoint
                                )
                                pr_history.value = (
                                    (history_value << 1)
                                    | (1 if predicted_taken else 0)
                                ) & pr_hist_mask
                                prediction = (
                                    predicted_taken, g_index, history_value,
                                )
                            elif inline_kind == 2:
                                # inline McFarlingPredictor.predict_compact
                                history_value = mc_history.value
                                g_index = (pc ^ history_value) & mc_g_mask
                                p_index = pc & mc_p_mask
                                g_taken = (
                                    mc_g_values[g_index] >= mc_g_midpoint
                                )
                                b_taken = (
                                    mc_b_values[p_index] >= mc_b_midpoint
                                )
                                if mc_m_values[p_index] >= mc_m_midpoint:
                                    predicted_taken = g_taken
                                else:
                                    predicted_taken = b_taken
                                mc_history.value = (
                                    (history_value << 1)
                                    | (1 if predicted_taken else 0)
                                ) & mc_hist_mask
                                prediction = (
                                    predicted_taken,
                                    g_index,
                                    g_taken,
                                    b_taken,
                                    history_value,
                                )
                            elif estimator_items:
                                prediction = predictor_predict(pc)
                                predicted_taken = prediction.taken
                            else:
                                predicted_taken, prediction = (
                                    predictor_predict_compact(pc)
                                )
                            mispredicted = predicted_taken != taken
                            if congestion:
                                # one miss window delays one branch
                                branch_ready = ready + congestion
                                congestion = 0
                            else:
                                branch_ready = ready
                            if estimator_items:
                                assessment_flags = {}
                                entry_assessments = []
                                for name, estimator in estimator_items:
                                    assessment = estimator.estimate(
                                        pc, prediction
                                    )
                                    entry_assessments.append(
                                        (name, estimator, assessment)
                                    )
                                    quadrants_all[name].record(
                                        not mispredicted,
                                        assessment.high_confidence,
                                    )
                                    assessment_flags[name] = (
                                        assessment.high_confidence
                                    )
                            else:
                                assessment_flags = None
                                entry_assessments = None
                            entry = [
                                sequence, pc, 1, True, False, prediction,
                                entry_assessments, taken, mispredicted,
                                None, branch_ready, record_count,
                            ]
                            inflight_append(entry)
                            record_count += 1
                            rec_sequence_append(sequence)
                            rec_pc_append(pc)
                            rec_predicted_append(predicted_taken)
                            rec_actual_append(taken)
                            rec_fetch_cycle_append(cycle)
                            rec_resolve_cycle_append(None)
                            rec_committed_append(False)
                            rec_precise_append(precise)
                            rec_perceived_append(perceived)
                            rec_wrong_path_append(unresolved > 0)
                            rec_assessments_append(assessment_flags)
                            sequence += 1
                            fetched_branches += 1
                            perceived += 1
                            if mispredicted:
                                fetched_mispredictions += 1
                                precise = 0
                                # inline _front_end_mispredict: the
                                # snapshot sees the actual-path state,
                                # then fetch redirects down the
                                # predicted (wrong) path
                                unresolved += 1
                                machine.instructions_retired += retired
                                retired = 0
                                machine.pc = actual_next
                                entry[9] = machine.snapshot()
                                pc = target if predicted_taken else pc + 1
                                break
                            precise += 1
                            pc = actual_next
                            continue
                        if kind == K_LOAD:
                            address = (regs[rs1s[pc]] + imms[pc]) & WORD_MASK
                            # inline Cache.access for the D-side
                            dline = address >> dcache_line_shift
                            ways = dcache_sets[dline & dcache_set_mask]
                            if dline in ways:
                                dcache_hits += 1
                                if ways[-1] != dline:
                                    ways.remove(dline)
                                    ways.append(dline)
                            else:
                                dcache_misses += 1
                                ways.append(dline)
                                if len(ways) > dcache_assoc:
                                    ways.pop(0)
                                congestion = min(
                                    congestion_cap,
                                    congestion + dcache_miss_penalty,
                                )
                            rd = rds[pc]
                            if rd:
                                regs[rd] = memory.get(address, 0)
                            next_pc = pc + 1
                        elif kind == K_STORE:
                            address = (regs[rs1s[pc]] + imms[pc]) & WORD_MASK
                            dline = address >> dcache_line_shift
                            ways = dcache_sets[dline & dcache_set_mask]
                            if dline in ways:
                                dcache_hits += 1
                                if ways[-1] != dline:
                                    ways.remove(dline)
                                    ways.append(dline)
                            else:
                                dcache_misses += 1
                                ways.append(dline)
                                if len(ways) > dcache_assoc:
                                    ways.pop(0)
                                congestion = min(
                                    congestion_cap,
                                    congestion + dcache_miss_penalty,
                                )
                            store_word(address, regs[rs2s[pc]])
                            next_pc = pc + 1
                        elif kind == K_JUMP:
                            next_pc = imms[pc]
                        elif kind == K_JAL:
                            regs[31] = pc + 1
                            next_pc = imms[pc]
                        elif kind == K_JR:
                            next_pc = regs[rs1s[pc]]
                        else:  # K_HALT
                            machine.halted = True
                            pc = pc + 1
                            retired += 1
                            fetched += 1
                            inflight_count += 1
                            inflight_append([
                                sequence, pc - 1, 1, False, True, None,
                                None, False, False, None, ready, -1,
                            ])
                            sequence += 1
                            group = None
                            break
                        retired += 1
                        fetched += 1
                        inflight_count += 1
                        if group is not None:
                            group[2] += 1  # count
                        else:
                            group = [
                                sequence, pc, 1, False, False, None,
                                None, False, False, None, ready, -1,
                            ]
                            inflight_append(group)
                        sequence += 1
                        pc = next_pc
                    machine.pc = pc
                    fetched_instructions += fetched
                cycle += 1
                if congestion:
                    congestion -= 1
        finally:
            self._max_instructions = None
            self._cycle = cycle
            self._precise_counter = precise
            self._perceived_counter = perceived
            self._sequence = sequence
            self._inflight_count = inflight_count
            self._icache_line = last_line
            self._congestion = congestion
            self._fetch_stalled_until = fetch_stalled_until
            self._fetch_faulted = fetch_faulted
            self._unresolved_mispredictions = unresolved
            self._program_done = program_done
            machine.instructions_retired += retired
            icache.hits = icache_hits
            icache.misses = icache_misses
            dcache.hits = dcache_hits
            dcache.misses = dcache_misses
            stats.fetched_instructions = fetched_instructions
            stats.committed_instructions = committed_instructions
            stats.squashed_instructions = squashed_instructions
            stats.fetched_branches = fetched_branches
            stats.fetched_mispredictions = fetched_mispredictions
            stats.committed_branches = committed_branches
            stats.committed_mispredictions = committed_mispredictions
            records._stamp += 1  # invalidate the materialize memo
            # convert surviving list entries back to _Inflight objects
            # so external inspection / a later step_cycle() see the
            # normal representation
            queue = self._inflight
            for position, entry in enumerate(queue):
                if type(entry) is not list:
                    continue
                survivor = _Inflight(entry[0], entry[1], entry[10])
                survivor.count = entry[2]
                survivor.is_branch = entry[3]
                survivor.is_halt = entry[4]
                survivor.prediction = entry[5]
                if entry[6] is not None:
                    survivor.assessments = entry[6]
                survivor.actual_taken = entry[7]
                survivor.mispredicted = entry[8]
                survivor.snapshot = entry[9]
                survivor.record_index = entry[11]
                queue[position] = survivor
        return self.result()

    def result(self) -> PipelineResult:
        """Snapshot the run's results (also usable mid-simulation)."""
        self.stats.cycles = self._cycle
        self.stats.icache_misses = self.icache.misses
        self.stats.dcache_misses = self.dcache.misses
        return PipelineResult(
            stats=self.stats,
            records=self.records,
            quadrants_committed=self._quadrants_committed,
            quadrants_all=self._quadrants_all,
        )

    # ------------------------------------------------------------------
    # commit/resolve stage
    # ------------------------------------------------------------------

    def _commit_stage(self) -> None:
        inflight = self._inflight
        if not inflight:
            return
        cycle = self._cycle
        stats = self.stats
        width = self.config.commit_width
        limit = self._max_instructions
        if limit is not None:
            # commit exactly up to the instruction budget, never past it
            remaining = limit - stats.committed_instructions
            if remaining < width:
                width = remaining
        committed = 0
        while inflight and committed < width:
            entry = inflight[0]
            if entry.ready_cycle > cycle:
                break
            count = entry.count
            if count > 1:
                # grouped plain/memory instructions: drain by count
                take = width - committed
                if count <= take:
                    take = count
                    inflight.popleft()
                else:
                    entry.count = count - take
                self._inflight_count -= take
                committed += take
                stats.committed_instructions += take
                continue
            inflight.popleft()
            self._inflight_count -= 1
            committed += 1
            stats.committed_instructions += 1
            self._retire_entry(entry)
            if entry.is_halt:
                self._program_done = True
                return
            if not entry.is_branch:
                continue
            self._resolve_branch(entry)
            if entry.mispredicted:
                return  # redirect consumed the rest of this commit group

    def _retire_entry(self, entry: _Inflight) -> None:
        """Backend hook: one in-flight entry left the window at commit.

        Called for every individually committed (``count == 1``) entry
        before halt/branch handling; grouped fast-path drains never see
        it because only the in-order backend groups entries.  The
        out-of-order backend frees the retiring instruction's previous
        physical-register mapping here."""

    def _resolve_branch(self, entry: _Inflight) -> None:
        self.stats.committed_branches += 1
        self.records.resolve(entry.record_index, self._cycle)
        correct = not entry.mispredicted
        prediction = entry.prediction
        if isinstance(prediction, Prediction):
            self.predictor.resolve(entry.pc, entry.actual_taken, prediction)
        else:
            # a compact token from an early-stopped _run_fast
            self.predictor.resolve_compact(
                entry.pc, entry.actual_taken, prediction
            )
        for name, estimator, assessment in entry.assessments:
            estimator.resolve(
                entry.pc, entry.prediction, entry.actual_taken, assessment
            )
            self._quadrants_committed[name].record(
                correct, assessment.high_confidence
            )
        if entry.mispredicted:
            self.stats.committed_mispredictions += 1
            self._perceived_counter = 0  # detection event
            self._after_mispredicted_resolve(entry)

    def _after_mispredicted_resolve(self, entry: _Inflight) -> None:
        """Hook: what a detected misprediction costs (default: full
        squash-and-refill recovery; the dual-path simulator overrides
        this for forked branches whose alternate path already ran)."""
        self._recover_from(entry)

    def _recover_from(self, entry: _Inflight) -> None:
        """Squash younger work and restart fetch on the correct path."""
        self.machine.restore(entry.snapshot)
        self.stats.squashed_instructions += self._inflight_count
        records = self.records
        for younger in self._inflight:
            if younger.record_index >= 0:
                records.squash(younger.record_index)
        self._inflight.clear()
        self._inflight_count = 0
        self.machine.trim_journal()  # no snapshots remain live
        self._unresolved_mispredictions = 0
        self._fetch_faulted = False
        self._fetch_stalled_until = max(
            self._fetch_stalled_until,
            self._cycle + 1 + self.config.mispredict_penalty,
        )

    # ------------------------------------------------------------------
    # fetch/decode/execute stage
    # ------------------------------------------------------------------

    def _fetch_stage(self) -> None:
        if self._decoded is not None:
            return self._fetch_stage_fast()
        config = self.config
        if self._cycle < self._fetch_stalled_until or self._fetch_faulted:
            return
        machine = self.machine
        instructions = self.program.instructions
        code_length = len(instructions)
        fetched = 0
        fetch_width = self._fetch_width()
        while (
            fetched < fetch_width
            and self._inflight_count < config.window
            and not machine.halted
        ):
            pc = machine.pc
            if pc < 0 or pc >= code_length:
                # runaway fetch (stale jr target on a wrong path)
                if self._unresolved_mispredictions:
                    self._fetch_faulted = True
                    return
                raise MachineFault(f"fetch outside program at pc={pc}")
            if not self.icache.access(pc):
                self._fetch_stalled_until = (
                    self._cycle + config.icache.miss_penalty
                )
                return
            inst = instructions[pc]
            category = inst.opcode.category
            if category is OpCategory.LOAD or category is OpCategory.STORE:
                address = (machine.regs[inst.rs1] + inst.imm) & WORD_MASK
                if not self.dcache.access(address):
                    self._congestion = min(
                        config.congestion_cap,
                        self._congestion + config.dcache.miss_penalty,
                    )
            result = machine.step()
            fetched += 1
            self.stats.fetched_instructions += 1
            entry = _Inflight(
                self._sequence, pc, self._cycle + config.resolve_stage
            )
            self._sequence += 1
            self._inflight.append(entry)
            self._inflight_count += 1
            if result.taken is not None:
                self._fetch_branch(entry, result.taken, inst.imm)
                self._dispatch(entry, inst)
                if entry.mispredicted:
                    break  # fetch group ends at a front-end redirect
            elif result.halted:
                entry.is_halt = True
                self._dispatch(entry, inst)
                break
            else:
                self._dispatch(entry, inst)

    def _fetch_stage_fast(self) -> None:
        """Fetch one cycle against the pre-decoded program.

        Semantically identical to the reference loop above -- same
        I-cache/D-cache traffic, same hook calls, same stats -- but
        plain straight-line runs execute as specialised closures, and
        non-branch instructions fetched this cycle share one grouped
        in-flight entry.
        """
        cycle = self._cycle
        if cycle < self._fetch_stalled_until or self._fetch_faulted:
            return
        machine = self.machine
        config = self.config
        # _fetch_width() is a subclass hook with observable side effects
        # (eager dilution accounting), so it must be consulted exactly
        # when the reference loop consults it: before the halted check
        fetch_width = self._fetch_width()
        if machine.halted:
            return
        window = config.window
        count = self._inflight_count
        decoded = self._decoded
        regs = machine.regs
        memory = machine.memory
        kinds = decoded.kinds
        run_len = decoded.run_len
        plain_ops = decoded.plain_ops
        branch_ops = decoded.branch_ops
        imms = decoded.imm
        rs1s = decoded.rs1
        rs2s = decoded.rs2
        rds = decoded.rd
        code_length = decoded.length
        icache = self.icache
        dcache = self.dcache
        line_shift = icache._line_shift
        last_line = self._icache_line
        inflight = self._inflight
        ready = cycle + config.resolve_stage
        sequence = self._sequence
        fetched = 0
        retired = 0
        group = None
        pc = machine.pc
        while fetched < fetch_width and count < window:
            if pc < 0 or pc >= code_length:
                # runaway fetch (stale jr target on a wrong path)
                if self._unresolved_mispredictions:
                    self._fetch_faulted = True
                    break
                raise MachineFault(f"fetch outside program at pc={pc}")
            line = pc >> line_shift
            if line != last_line:
                last_line = line
                if not icache.access(pc):
                    self._fetch_stalled_until = (
                        cycle + config.icache.miss_penalty
                    )
                    break
            else:
                # repeat access to the most recent line: guaranteed hit,
                # already most-recently-used, LRU order unchanged
                icache.hits += 1
            run = run_len[pc]
            if run:
                # straight-line plain run: tight inner loop, one entry
                limit = fetch_width - fetched
                if run > limit:
                    run = limit
                room = window - count
                if run > room:
                    run = room
                # stay on this I-cache line so the batched hit count
                # stays exact; the next line is accessed next iteration
                line_end = (line + 1) << line_shift
                if pc + run > line_end:
                    run = line_end - pc
                end = pc + run
                index = pc
                while index < end:
                    op = plain_ops[index]
                    if op is not None:
                        op(regs)
                    index += 1
                icache.hits += run - 1
                machine.pc = end
                retired += run
                fetched += run
                count += run
                if group is not None:
                    group.count += run
                else:
                    group = _Inflight(sequence, pc, ready)
                    group.count = run
                    inflight.append(group)
                sequence += run
                pc = end
                continue
            kind = kinds[pc]
            if kind == K_BRANCH:
                taken = branch_ops[pc](regs)
                target = imms[pc]
                machine.pc = target if taken else pc + 1
                retired += 1
                fetched += 1
                count += 1
                entry = _Inflight(sequence, pc, ready)
                inflight.append(entry)
                sequence += 1
                group = None
                # keep shared state exact around the hook: overrides
                # (and snapshots) observe the true machine/pipeline
                machine.instructions_retired += retired
                retired = 0
                self._sequence = sequence
                self._inflight_count = count
                self._fetch_branch(entry, taken, target)
                pc = machine.pc  # a mispredict hook may have redirected
                if entry.mispredicted:
                    break
                continue
            if kind == K_LOAD:
                address = (regs[rs1s[pc]] + imms[pc]) & WORD_MASK
                if not dcache.access(address):
                    self._congestion = min(
                        config.congestion_cap,
                        self._congestion + config.dcache.miss_penalty,
                    )
                rd = rds[pc]
                if rd:
                    regs[rd] = memory.get(address, 0)
                next_pc = pc + 1
            elif kind == K_STORE:
                address = (regs[rs1s[pc]] + imms[pc]) & WORD_MASK
                if not dcache.access(address):
                    self._congestion = min(
                        config.congestion_cap,
                        self._congestion + config.dcache.miss_penalty,
                    )
                machine.store_word(address, regs[rs2s[pc]])
                next_pc = pc + 1
            elif kind == K_JUMP:
                next_pc = imms[pc]
            elif kind == K_JAL:
                regs[31] = pc + 1
                next_pc = imms[pc]
            elif kind == K_JR:
                next_pc = regs[rs1s[pc]]
            else:  # K_HALT
                machine.halted = True
                machine.pc = pc + 1
                retired += 1
                fetched += 1
                count += 1
                entry = _Inflight(sequence, pc, ready)
                entry.is_halt = True
                inflight.append(entry)
                sequence += 1
                group = None
                break
            machine.pc = next_pc
            retired += 1
            fetched += 1
            count += 1
            if group is not None:
                group.count += 1
            else:
                group = _Inflight(sequence, pc, ready)
                inflight.append(group)
            sequence += 1
            pc = next_pc
        machine.instructions_retired += retired
        self._sequence = sequence
        self._inflight_count = count
        self._icache_line = last_line
        self.stats.fetched_instructions += fetched

    def _fetch_width(self) -> int:
        """Hook: instructions fetchable this cycle (default: config
        width; the dual-path simulator halves it while a fork is live)."""
        return self.config.fetch_width

    def _dispatch(self, entry: _Inflight, inst) -> None:
        """Backend hook: one instruction entered the window at fetch.

        Called on the reference fetch path for every fetched
        instruction, after branch prediction/recording has populated
        ``entry`` (so a backend may re-time ``entry.ready_cycle``).
        The in-order backend does nothing -- an instruction's ready
        cycle is fixed at fetch -- which is what lets its fast path
        group entries and skip this hook entirely.  The out-of-order
        backend renames ``inst``'s registers, models issue-queue
        wakeup/bandwidth, and rewrites ``entry.ready_cycle`` to the
        data-dependent completion cycle here."""

    def _fetch_branch(self, entry: _Inflight, taken: bool, target: int) -> None:
        """Predict, assess and record one fetched conditional branch.

        ``taken`` is the evaluated direction in the context the branch
        executed in; ``target`` its taken-target PC.
        """
        pc = entry.pc
        prediction = self.predictor.predict(pc)
        entry.is_branch = True
        entry.prediction = prediction
        entry.actual_taken = taken
        mispredicted = prediction.taken != taken
        entry.mispredicted = mispredicted
        congestion = self._congestion
        if congestion:
            # one outstanding-miss window delays one branch resolution;
            # the charge is consumed, not re-billed to the whole group
            entry.ready_cycle += congestion
            self._congestion = 0
        wrong_path = self._unresolved_mispredictions > 0
        assessment_flags = None
        if self.estimators:
            assessment_flags = {}
            quadrants_all = self._quadrants_all
            for name, estimator in self.estimators.items():
                assessment = estimator.estimate(pc, prediction)
                entry.assessments.append((name, estimator, assessment))
                quadrants_all[name].record(
                    not mispredicted, assessment.high_confidence
                )
                assessment_flags[name] = assessment.high_confidence
        entry.record_index = self.records.append(
            sequence=entry.sequence,
            pc=pc,
            predicted_taken=prediction.taken,
            actual_taken=taken,
            fetch_cycle=self._cycle,
            precise_distance=self._precise_counter,
            perceived_distance=self._perceived_counter,
            wrong_path=wrong_path,
            assessments=assessment_flags,
        )
        self.stats.fetched_branches += 1
        self._perceived_counter += 1
        if mispredicted:
            self.stats.fetched_mispredictions += 1
            self._precise_counter = 0
            self._front_end_mispredict(entry, target)
        else:
            self._precise_counter += 1

    def _front_end_mispredict(self, entry: _Inflight, target: int) -> None:
        """Hook: steer the front end at a mispredicted fetch (default:
        follow the wrong, predicted path until resolution; the dual-path
        simulator keeps the correct path when it forks instead).
        ``target`` is the branch's taken-target PC."""
        machine = self.machine
        self._unresolved_mispredictions += 1
        # state right after the branch went its *actual* way: the
        # recovery point if/when this branch resolves
        entry.snapshot = machine.snapshot()
        # redirect the front end down the predicted (wrong) path
        if entry.prediction.taken:
            machine.pc = target
        else:
            machine.pc = entry.pc + 1
