"""Cycle-based speculative pipeline simulator.

This is the repository's stand-in for the paper's extended
SimpleScalar ``sim-outorder``: a 5-stage machine that

* fetches ``fetch_width`` instructions per cycle through an I-cache,
* executes every fetched instruction *functionally at decode* on the
  journaled :class:`~repro.isa.Machine` -- so, like the paper's
  simulator, it "knows the outcome of all branches at the point of
  instruction decode, even for branches that do not actually commit",
* follows the branch predictor down wrong paths, executing real
  wrong-path code until the mispredicted branch resolves
  ``resolve_stage`` cycles after fetch, then restores the branch's
  machine snapshot, squashes younger in-flight instructions, repairs
  the predictor's speculative history, and charges the additional
  ``mispredict_penalty`` cycles of recovery,
* resolves/commits in order (squashed instructions never update the
  predictor, the estimators, or architectural state).

Because the journaled machine *is* the architectural state, the
committed instruction stream provably equals the pure functional
execution -- an invariant the integration tests check directly.

The simulator records a :class:`~repro.pipeline.records.BranchRecord`
for every fetched conditional branch, carrying both the *precise*
misprediction distance (reset when a mispredicted branch is fetched;
the oracle view of Figures 6/7) and the *perceived* distance (reset
when a misprediction is detected at resolution; the implementable view
of Figures 8/9), plus the confidence estimates made at fetch time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..confidence.base import ConfidenceEstimator
from ..isa import Machine, MachineFault, Program
from ..isa.instructions import WORD_MASK, OpCategory
from ..metrics.quadrant import QuadrantCounts
from ..predictors.base import BranchPredictor
from .caches import Cache
from .config import PipelineConfig
from .records import BranchRecord, PipelineStats


class _Inflight:
    """One in-flight instruction (pipeline-internal)."""

    __slots__ = (
        "sequence",
        "pc",
        "is_branch",
        "is_halt",
        "prediction",
        "assessments",
        "actual_taken",
        "mispredicted",
        "snapshot",
        "ready_cycle",
        "record",
    )

    def __init__(self, sequence: int, pc: int, ready_cycle: int):
        self.sequence = sequence
        self.pc = pc
        self.is_branch = False
        self.is_halt = False
        self.prediction = None
        self.assessments: List[Tuple[str, ConfidenceEstimator, object]] = []
        self.actual_taken = False
        self.mispredicted = False
        self.snapshot = None
        self.ready_cycle = ready_cycle
        self.record: Optional[BranchRecord] = None


class PipelineResult:
    """Everything a pipeline run produced."""

    def __init__(
        self,
        stats: PipelineStats,
        branch_records: List[BranchRecord],
        quadrants_committed: Dict[str, QuadrantCounts],
        quadrants_all: Dict[str, QuadrantCounts],
    ):
        self.stats = stats
        self.branch_records = branch_records
        #: Estimator quadrants over committed branches only (resolved).
        self.quadrants_committed = quadrants_committed
        #: Estimator quadrants over every fetched branch.
        self.quadrants_all = quadrants_all

    def committed_records(self) -> List[BranchRecord]:
        return [record for record in self.branch_records if record.committed]


class PipelineSimulator:
    """Speculative 5-stage pipeline over a program + predictor.

    Optional confidence ``estimators`` are consulted at fetch for every
    branch (wrong-path included, as in hardware) and resolved in order
    for committed branches only.
    """

    def __init__(
        self,
        program: Program,
        predictor: BranchPredictor,
        config: PipelineConfig = None,
        estimators: Mapping[str, ConfidenceEstimator] = None,
    ):
        self.program = program
        self.predictor = predictor
        self.config = config or PipelineConfig()
        self.estimators = dict(estimators or {})
        self.machine = Machine(program)
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.stats = PipelineStats()
        self.branch_records: List[BranchRecord] = []
        self._inflight: Deque[_Inflight] = deque()
        self._cycle = 0
        self._sequence = 0
        self._fetch_stalled_until = 0
        #: True when the speculative front end ran off the program (a
        #: wrong-path fault); cleared by misprediction recovery.
        self._fetch_faulted = False
        self._congestion = 0
        #: Unresolved mispredicted branches in flight (0 or more; >0
        #: means the front end is on a wrong path).
        self._unresolved_mispredictions = 0
        #: Branches fetched since the last mispredicted *fetch* (precise).
        self._precise_counter = 0
        #: Branches fetched since the last *detected* misprediction.
        self._perceived_counter = 0
        self._program_done = False  # halt committed
        self._quadrants_committed = {
            name: QuadrantCounts() for name in self.estimators
        }
        self._quadrants_all = {name: QuadrantCounts() for name in self.estimators}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the program's ``halt`` has committed."""
        return self._program_done

    @property
    def cycle(self) -> int:
        return self._cycle

    def wants_fetch(self) -> bool:
        """Would this pipeline fetch if offered the slot this cycle?

        Fetch arbiters (the SMT front end) use this to skip stalled or
        finished threads without burning the shared slot.
        """
        return (
            not self._program_done
            and not self._fetch_faulted
            and self._cycle >= self._fetch_stalled_until
            and not self.machine.halted
            and len(self._inflight) < self.config.window
        )

    def step_cycle(self, fetch_allowed: bool = True) -> None:
        """Advance one cycle: commit/resolve, then (optionally) fetch.

        ``fetch_allowed=False`` models losing the fetch slot to another
        thread or a gating decision; the back end still progresses.
        """
        self._commit_stage()
        if not self._program_done and fetch_allowed:
            self._fetch_stage()
        self._cycle += 1
        if self._congestion:
            self._congestion -= 1

    def run(
        self,
        max_cycles: int = 10_000_000,
        max_instructions: Optional[int] = None,
    ) -> PipelineResult:
        """Simulate until the program halts (committed) or a limit hits."""
        while not self._program_done and self._cycle < max_cycles:
            if (
                max_instructions is not None
                and self.stats.committed_instructions >= max_instructions
            ):
                break
            self.step_cycle()
        return self.result()

    def result(self) -> PipelineResult:
        """Snapshot the run's results (also usable mid-simulation)."""
        self.stats.cycles = self._cycle
        self.stats.icache_misses = self.icache.misses
        self.stats.dcache_misses = self.dcache.misses
        return PipelineResult(
            stats=self.stats,
            branch_records=self.branch_records,
            quadrants_committed=self._quadrants_committed,
            quadrants_all=self._quadrants_all,
        )

    # ------------------------------------------------------------------
    # commit/resolve stage
    # ------------------------------------------------------------------

    def _commit_stage(self) -> None:
        committed = 0
        while (
            self._inflight
            and committed < self.config.commit_width
            and self._inflight[0].ready_cycle <= self._cycle
        ):
            entry = self._inflight.popleft()
            committed += 1
            self.stats.committed_instructions += 1
            if entry.is_halt:
                self._program_done = True
                return
            if not entry.is_branch:
                continue
            self._resolve_branch(entry)
            if entry.mispredicted:
                return  # redirect consumed the rest of this commit group

    def _resolve_branch(self, entry: _Inflight) -> None:
        self.stats.committed_branches += 1
        record = entry.record
        record.committed = True
        record.resolve_cycle = self._cycle
        correct = not entry.mispredicted
        self.predictor.resolve(entry.pc, entry.actual_taken, entry.prediction)
        for name, estimator, assessment in entry.assessments:
            estimator.resolve(
                entry.pc, entry.prediction, entry.actual_taken, assessment
            )
            self._quadrants_committed[name].record(
                correct, assessment.high_confidence
            )
        if entry.mispredicted:
            self.stats.committed_mispredictions += 1
            self._perceived_counter = 0  # detection event
            self._after_mispredicted_resolve(entry)

    def _after_mispredicted_resolve(self, entry: _Inflight) -> None:
        """Hook: what a detected misprediction costs (default: full
        squash-and-refill recovery; the dual-path simulator overrides
        this for forked branches whose alternate path already ran)."""
        self._recover_from(entry)

    def _recover_from(self, entry: _Inflight) -> None:
        """Squash younger work and restart fetch on the correct path."""
        self.machine.restore(entry.snapshot)
        for younger in self._inflight:
            self.stats.squashed_instructions += 1
            if younger.record is not None:
                younger.record.committed = False
        self._inflight.clear()
        self.machine.trim_journal()  # no snapshots remain live
        self._unresolved_mispredictions = 0
        self._fetch_faulted = False
        self._fetch_stalled_until = max(
            self._fetch_stalled_until,
            self._cycle + 1 + self.config.mispredict_penalty,
        )

    # ------------------------------------------------------------------
    # fetch/decode/execute stage
    # ------------------------------------------------------------------

    def _fetch_stage(self) -> None:
        config = self.config
        if self._cycle < self._fetch_stalled_until or self._fetch_faulted:
            return
        machine = self.machine
        instructions = self.program.instructions
        code_length = len(instructions)
        fetched = 0
        fetch_width = self._fetch_width()
        while (
            fetched < fetch_width
            and len(self._inflight) < config.window
            and not machine.halted
        ):
            pc = machine.pc
            if pc < 0 or pc >= code_length:
                # runaway fetch (stale jr target on a wrong path)
                if self._unresolved_mispredictions:
                    self._fetch_faulted = True
                    return
                raise MachineFault(f"fetch outside program at pc={pc}")
            if not self.icache.access(pc):
                self._fetch_stalled_until = (
                    self._cycle + config.icache.miss_penalty
                )
                return
            inst = instructions[pc]
            category = inst.opcode.category
            if category is OpCategory.LOAD or category is OpCategory.STORE:
                address = (machine.regs[inst.rs1] + inst.imm) & WORD_MASK
                if not self.dcache.access(address):
                    self._congestion = min(
                        config.congestion_cap,
                        self._congestion + config.dcache.miss_penalty,
                    )
            result = machine.step()
            fetched += 1
            self.stats.fetched_instructions += 1
            entry = _Inflight(
                self._sequence, pc, self._cycle + config.resolve_stage
            )
            self._sequence += 1
            self._inflight.append(entry)
            if result.taken is not None:
                self._fetch_branch(entry, result, inst)
                if entry.mispredicted:
                    break  # fetch group ends at a front-end redirect
            elif result.halted:
                entry.is_halt = True
                break

    def _fetch_width(self) -> int:
        """Hook: instructions fetchable this cycle (default: config
        width; the dual-path simulator halves it while a fork is live)."""
        return self.config.fetch_width

    def _fetch_branch(self, entry: _Inflight, result, inst) -> None:
        pc = entry.pc
        machine = self.machine
        prediction = self.predictor.predict(pc)
        entry.is_branch = True
        entry.prediction = prediction
        entry.actual_taken = result.taken
        entry.mispredicted = prediction.taken != result.taken
        entry.ready_cycle += self._congestion
        wrong_path = self._unresolved_mispredictions > 0
        for name, estimator in self.estimators.items():
            assessment = estimator.estimate(pc, prediction)
            entry.assessments.append((name, estimator, assessment))
            self._quadrants_all[name].record(
                not entry.mispredicted, assessment.high_confidence
            )
        record = BranchRecord(
            sequence=entry.sequence,
            pc=pc,
            predicted_taken=prediction.taken,
            actual_taken=result.taken,
            fetch_cycle=self._cycle,
            resolve_cycle=None,
            committed=False,
            precise_distance=self._precise_counter,
            perceived_distance=self._perceived_counter,
            wrong_path=wrong_path,
            assessments={
                name: assessment.high_confidence
                for name, __, assessment in entry.assessments
            },
        )
        entry.record = record
        self.branch_records.append(record)
        self.stats.fetched_branches += 1
        self._perceived_counter += 1
        if entry.mispredicted:
            self.stats.fetched_mispredictions += 1
            self._precise_counter = 0
            self._front_end_mispredict(entry, inst)
        else:
            self._precise_counter += 1

    def _front_end_mispredict(self, entry: _Inflight, inst) -> None:
        """Hook: steer the front end at a mispredicted fetch (default:
        follow the wrong, predicted path until resolution; the dual-path
        simulator keeps the correct path when it forks instead)."""
        machine = self.machine
        self._unresolved_mispredictions += 1
        # state right after the branch went its *actual* way: the
        # recovery point if/when this branch resolves
        entry.snapshot = machine.snapshot()
        # redirect the front end down the predicted (wrong) path
        if entry.prediction.taken:
            machine.pc = inst.imm
        else:
            machine.pc = entry.pc + 1
