"""Per-branch records produced by the pipeline simulator.

Every *fetched* conditional branch -- committed or wrong-path -- gets a
record, because the paper's §3.1 point is exactly that the processor
cannot tell those populations apart at prediction time and the §4
clustering analysis needs both views.

Records live in a :class:`BranchRecordStore`: append-only columnar
buffers (one flat python list per field, the
:class:`~repro.engine.columnar.ColumnarTrace` convention), because the
pipeline hot loop appends one record per fetched branch and a
dataclass allocation per branch is measurable there.  Consumers that
want objects call :meth:`BranchRecordStore.materialize`, which builds
:class:`BranchRecord` views on demand and memoises them against a
mutation stamp, so analysis code and tests keep the ergonomic
attribute API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Store slots that survive pickling (the view memo does not).
_STORE_SLOTS = (
    "sequence",
    "pc",
    "predicted_taken",
    "actual_taken",
    "fetch_cycle",
    "resolve_cycle",
    "committed",
    "precise_distance",
    "perceived_distance",
    "wrong_path",
    "assessments",
)


@dataclass
class BranchRecord:
    """One fetched conditional branch as the pipeline saw it."""

    __slots__ = (
        "sequence",
        "pc",
        "predicted_taken",
        "actual_taken",
        "fetch_cycle",
        "resolve_cycle",
        "committed",
        "precise_distance",
        "perceived_distance",
        "wrong_path",
        "assessments",
    )

    sequence: int
    pc: int
    predicted_taken: bool
    #: Outcome in the context the branch executed in (for wrong-path
    #: branches this is the outcome *down that wrong path*).
    actual_taken: bool
    fetch_cycle: int
    #: Cycle the branch resolved/committed; None if squashed.
    resolve_cycle: Optional[int]
    #: True iff the branch eventually committed (was never squashed).
    committed: bool
    #: Fetched branches since the last *actually mispredicted* branch
    #: was fetched (the paper's "precise" distance, Figures 6/7).
    precise_distance: int
    #: Fetched branches since the last *detected* (resolved)
    #: misprediction (the paper's "perceived" distance, Figures 8/9).
    perceived_distance: int
    #: True iff fetched while an older misprediction was unresolved.
    wrong_path: bool
    #: Confidence estimates at fetch: estimator name -> high confidence.
    assessments: Dict[str, bool]

    @property
    def mispredicted(self) -> bool:
        return self.predicted_taken != self.actual_taken


class BranchRecordStore:
    """Append-only columnar buffers of every fetched branch.

    One python list per :class:`BranchRecord` field, indexed by append
    order.  ``assessments`` stores ``None`` for branches fetched with
    no estimators attached (the common pipeline-artifact case) and a
    plain dict otherwise; views materialise ``None`` as ``{}``.
    """

    __slots__ = _STORE_SLOTS + ("_views", "_stamp")

    def __init__(self):
        self.sequence: List[int] = []
        self.pc: List[int] = []
        self.predicted_taken: List[bool] = []
        self.actual_taken: List[bool] = []
        self.fetch_cycle: List[int] = []
        self.resolve_cycle: List[Optional[int]] = []
        self.committed: List[bool] = []
        self.precise_distance: List[int] = []
        self.perceived_distance: List[int] = []
        self.wrong_path: List[bool] = []
        self.assessments: List[Optional[Dict[str, bool]]] = []
        self._views = None  # (stamp, [BranchRecord, ...]) memo
        self._stamp = 0

    def __len__(self) -> int:
        return len(self.sequence)

    def append(
        self,
        sequence: int,
        pc: int,
        predicted_taken: bool,
        actual_taken: bool,
        fetch_cycle: int,
        precise_distance: int,
        perceived_distance: int,
        wrong_path: bool,
        assessments: Optional[Dict[str, bool]],
    ) -> int:
        """Append one fetched branch (unresolved); return its index."""
        index = len(self.sequence)
        self.sequence.append(sequence)
        self.pc.append(pc)
        self.predicted_taken.append(predicted_taken)
        self.actual_taken.append(actual_taken)
        self.fetch_cycle.append(fetch_cycle)
        self.resolve_cycle.append(None)
        self.committed.append(False)
        self.precise_distance.append(precise_distance)
        self.perceived_distance.append(perceived_distance)
        self.wrong_path.append(wrong_path)
        self.assessments.append(assessments)
        self._stamp += 1
        return index

    def resolve(self, index: int, cycle: int) -> None:
        """Mark the branch at ``index`` committed at ``cycle``."""
        self.committed[index] = True
        self.resolve_cycle[index] = cycle
        self._stamp += 1

    def squash(self, index: int) -> None:
        """Mark the branch at ``index`` squashed (never committed)."""
        self.committed[index] = False
        self._stamp += 1

    def materialize(self) -> List[BranchRecord]:
        """Dataclass views of every record (memoised per mutation)."""
        memo = self._views
        if memo is not None and memo[0] == self._stamp:
            return memo[1]
        views = [
            BranchRecord(
                sequence=self.sequence[i],
                pc=self.pc[i],
                predicted_taken=self.predicted_taken[i],
                actual_taken=self.actual_taken[i],
                fetch_cycle=self.fetch_cycle[i],
                resolve_cycle=self.resolve_cycle[i],
                committed=self.committed[i],
                precise_distance=self.precise_distance[i],
                perceived_distance=self.perceived_distance[i],
                wrong_path=self.wrong_path[i],
                assessments=self.assessments[i] or {},
            )
            for i in range(len(self.sequence))
        ]
        self._views = (self._stamp, views)
        return views

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in _STORE_SLOTS}

    def __setstate__(self, state) -> None:
        for slot in _STORE_SLOTS:
            setattr(self, slot, state[slot])
        self._views = None
        self._stamp = 0


@dataclass
class PipelineStats:
    """Aggregate counters of one pipeline run (Table 1 inputs)."""

    cycles: int = 0
    fetched_instructions: int = 0
    committed_instructions: int = 0
    squashed_instructions: int = 0
    fetched_branches: int = 0
    committed_branches: int = 0
    committed_mispredictions: int = 0
    fetched_mispredictions: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # The four ratio properties keep their 0.0 defaults for arithmetic
    # compatibility; report renderers must use the ``*_or_none``
    # variants so empty runs print ``n/a`` rather than a misleading
    # zero (the PR 2 ``metric_or_none`` policy for quadrant metrics).

    @property
    def fetch_to_commit_ratio(self) -> float:
        """The paper's "all/committed" instruction ratio (>= 1)."""
        value = self.fetch_to_commit_ratio_or_none()
        return 0.0 if value is None else value

    def fetch_to_commit_ratio_or_none(self) -> Optional[float]:
        """The fetch/commit ratio, or ``None`` if nothing committed."""
        if not self.committed_instructions:
            return None
        return self.fetched_instructions / self.committed_instructions

    @property
    def committed_accuracy(self) -> float:
        value = self.committed_accuracy_or_none()
        return 0.0 if value is None else value

    def committed_accuracy_or_none(self) -> Optional[float]:
        """Committed-branch accuracy, or ``None`` with no such branches."""
        if not self.committed_branches:
            return None
        return 1.0 - self.committed_mispredictions / self.committed_branches

    @property
    def all_accuracy(self) -> float:
        value = self.all_accuracy_or_none()
        return 0.0 if value is None else value

    def all_accuracy_or_none(self) -> Optional[float]:
        """All-fetched-branch accuracy, or ``None`` with no branches."""
        if not self.fetched_branches:
            return None
        return 1.0 - self.fetched_mispredictions / self.fetched_branches

    @property
    def ipc(self) -> float:
        value = self.ipc_or_none()
        return 0.0 if value is None else value

    def ipc_or_none(self) -> Optional[float]:
        """Committed IPC, or ``None`` for a run that saw no cycles."""
        if not self.cycles:
            return None
        return self.committed_instructions / self.cycles
