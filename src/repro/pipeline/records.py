"""Per-branch records produced by the pipeline simulator.

Every *fetched* conditional branch -- committed or wrong-path -- gets a
record, because the paper's §3.1 point is exactly that the processor
cannot tell those populations apart at prediction time and the §4
clustering analysis needs both views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class BranchRecord:
    """One fetched conditional branch as the pipeline saw it."""

    __slots__ = (
        "sequence",
        "pc",
        "predicted_taken",
        "actual_taken",
        "fetch_cycle",
        "resolve_cycle",
        "committed",
        "precise_distance",
        "perceived_distance",
        "wrong_path",
        "assessments",
    )

    sequence: int
    pc: int
    predicted_taken: bool
    #: Outcome in the context the branch executed in (for wrong-path
    #: branches this is the outcome *down that wrong path*).
    actual_taken: bool
    fetch_cycle: int
    #: Cycle the branch resolved/committed; None if squashed.
    resolve_cycle: Optional[int]
    #: True iff the branch eventually committed (was never squashed).
    committed: bool
    #: Fetched branches since the last *actually mispredicted* branch
    #: was fetched (the paper's "precise" distance, Figures 6/7).
    precise_distance: int
    #: Fetched branches since the last *detected* (resolved)
    #: misprediction (the paper's "perceived" distance, Figures 8/9).
    perceived_distance: int
    #: True iff fetched while an older misprediction was unresolved.
    wrong_path: bool
    #: Confidence estimates at fetch: estimator name -> high confidence.
    assessments: Dict[str, bool]

    @property
    def mispredicted(self) -> bool:
        return self.predicted_taken != self.actual_taken


@dataclass
class PipelineStats:
    """Aggregate counters of one pipeline run (Table 1 inputs)."""

    cycles: int = 0
    fetched_instructions: int = 0
    committed_instructions: int = 0
    squashed_instructions: int = 0
    fetched_branches: int = 0
    committed_branches: int = 0
    committed_mispredictions: int = 0
    fetched_mispredictions: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def fetch_to_commit_ratio(self) -> float:
        """The paper's "all/committed" instruction ratio (>= 1)."""
        if not self.committed_instructions:
            return 0.0
        return self.fetched_instructions / self.committed_instructions

    @property
    def committed_accuracy(self) -> float:
        if not self.committed_branches:
            return 0.0
        return 1.0 - self.committed_mispredictions / self.committed_branches

    @property
    def all_accuracy(self) -> float:
        if not self.fetched_branches:
            return 0.0
        return 1.0 - self.fetched_mispredictions / self.fetched_branches

    @property
    def ipc(self) -> float:
        return self.committed_instructions / self.cycles if self.cycles else 0.0
