"""R10K-style out-of-order pipeline backend.

:class:`OutOfOrderSimulator` keeps the shared speculative *front end*
of :class:`~repro.pipeline.core.PipelineSimulator` -- fetch through the
I-cache, functional execution at decode on the journaled machine,
branch prediction + confidence tagging, wrong-path fetch until
resolution, the gating/eager hooks -- and replaces the fixed
5-stage *back end* timing with a MIPS R10000-flavoured out-of-order
execution model:

* **register rename**: a 32-entry rename map carries architectural ->
  physical mappings over a physical register file sized
  ``NUM_REGISTERS + window`` (so the free list can never run dry while
  the active list bounds in-flight work); ``r0`` is never renamed,
* **active list**: the in-flight deque itself, bounded by the
  configurable ``window`` (instructions, not groups -- this backend
  always fetches per-instruction on the reference path), with each
  entry's previous mapping kept for in-order release at retire,
* **issue queue**: every dispatched instruction computes its wakeup
  cycle from its source operands' physical-register ready cycles, then
  claims the first issue slot at or after wakeup with free bandwidth
  (``issue_width`` per cycle, oldest first -- dispatch order *is* age
  order),
* **in-order wide commit**: the inherited commit stage already retires
  from the head of the window when the head's ``ready_cycle`` has
  passed, up to ``commit_width`` per cycle, so completion out of order
  never commits out of order,
* **squash on mispredict**: recovery walks the active list youngest ->
  oldest undoing rename-map updates and returning freshly allocated
  physical registers (the R10K's exception-rollback walk, applied to
  branches), then defers to the front end's machine-snapshot restore.

Because branches now *resolve at their data-dependent completion
cycle* rather than a fixed ``resolve_stage`` after fetch, wrong-path
fetch runs as deep as the window and the issue queue allow -- exactly
the regime where the paper's perceived-distance figures (8/9) and the
speculation-control applications get interesting.  The window depth
observed at every misprediction recovery is accumulated in
``stats.extra`` (see :data:`DEPTH_HISTOGRAM_KEY`) so reports can put
the two backends' distance distributions side by side.

The backend deliberately runs the **reference fetch path only**
(``fast=False``): per-instruction entries are what rename and issue
model, and with a single engine the fast/slow byte-identity question
disappears by construction.  All timing state is plain lists/dicts, so
the whole-simulator pickle snapshots of
:mod:`repro.pipeline.snapshot` -- and therefore segmented runs and
``--resume`` -- work unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..confidence.base import ConfidenceEstimator
from ..isa import Program
from ..isa.instructions import (
    LINK_REG,
    NUM_REGISTERS,
    ZERO_REG,
    Instruction,
    OpCategory,
    Opcode,
)
from ..predictors.base import BranchPredictor
from .config import PipelineConfig
from .core import PipelineSimulator, _Inflight

#: Default out-of-order active-list capacity (instructions in flight).
OOO_WINDOW = 256
#: Default issue bandwidth (instructions entering execution per cycle).
OOO_ISSUE_WIDTH = 8
#: Default retire bandwidth (instructions leaving the window per cycle).
OOO_COMMIT_WIDTH = 8
#: ``stats.extra`` key holding the {window depth -> mispredict count}
#: histogram recorded at every misprediction recovery.
DEPTH_HISTOGRAM_KEY = "ooo_mispredict_window_depth"


class OutOfOrderSimulator(PipelineSimulator):
    """Out-of-order (R10K-style) backend behind the shared front end.

    ``window``/``issue_width``/``commit_width`` size the active list,
    the issue bandwidth and the retire bandwidth; the base
    :class:`~repro.pipeline.config.PipelineConfig` supplies everything
    else (fetch width, caches, penalties).  ``decoded``/``fast`` are
    accepted for interface compatibility but ignored: this backend
    always fetches on the per-instruction reference path.
    """

    def __init__(
        self,
        program: Program,
        predictor: BranchPredictor,
        config: Optional[PipelineConfig] = None,
        estimators: Optional[Mapping[str, ConfidenceEstimator]] = None,
        decoded=None,
        fast: Optional[bool] = None,
        window: int = OOO_WINDOW,
        issue_width: int = OOO_ISSUE_WIDTH,
        commit_width: int = OOO_COMMIT_WIDTH,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1 (got {window})")
        if issue_width < 1:
            raise ValueError(f"issue_width must be >= 1 (got {issue_width})")
        if commit_width < 1:
            raise ValueError(f"commit_width must be >= 1 (got {commit_width})")
        base = config or PipelineConfig()
        # The inherited window/commit checks read ``self.config``, so
        # the OoO capacities slot straight into the shared front end.
        super().__init__(
            program,
            predictor,
            config=replace(base, window=window, commit_width=commit_width),
            estimators=estimators,
            decoded=None,
            fast=False,
        )
        self.issue_width = issue_width
        num_phys = NUM_REGISTERS + window
        #: Architectural -> physical register mapping (``r0`` fixed).
        self._rename_map: List[int] = list(range(NUM_REGISTERS))
        #: Cycle at which each physical register's value is available.
        self._phys_ready: List[int] = [0] * num_phys
        #: Physical registers not bound by the map or an active entry.
        self._free_regs: Deque[int] = deque(range(NUM_REGISTERS, num_phys))
        #: sequence -> (arch reg, new phys, previous phys) for every
        #: in-flight register writer (the active-list rename columns).
        self._rename_of: Dict[int, Tuple[int, int, int]] = {}
        #: cycle -> instructions issued that cycle (issue-port ledger).
        self._issue_slots: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # backend hooks
    # ------------------------------------------------------------------

    def _dispatch(self, entry: _Inflight, inst: Instruction) -> None:
        """Rename + enqueue one fetched instruction; re-time its entry."""
        cycle = self._cycle
        reads, writes, is_memory = _operand_shape(inst)
        latency = self.config.cache_hit_latency if is_memory else 1
        rename_map = self._rename_map
        phys_ready = self._phys_ready
        # wakeup: earliest cycle every source operand is available
        # (dispatch itself takes the cycle after fetch)
        wakeup = cycle + 1
        for reg in reads:
            if reg == ZERO_REG:
                continue
            ready = phys_ready[rename_map[reg]]
            if ready > wakeup:
                wakeup = ready
        # claim the first issue slot with spare bandwidth; dispatch
        # order is age order, so greedy slotting is oldest-first issue
        slots = self._issue_slots
        width = self.issue_width
        issue = wakeup
        while slots.get(issue, 0) >= width:
            issue += 1
        slots[issue] = slots.get(issue, 0) + 1
        complete = issue + latency
        if writes != ZERO_REG and writes >= 0:
            new_phys = self._free_regs.popleft()
            self._rename_of[entry.sequence] = (
                writes,
                new_phys,
                rename_map[writes],
            )
            rename_map[writes] = new_phys
            phys_ready[new_phys] = complete
        # the front end's ready cycle (resolve depth + any congestion
        # charge) is the floor; data dependences can only delay it
        if complete > entry.ready_cycle:
            entry.ready_cycle = complete
        if len(slots) > 4 * self.config.window:
            self._prune_issue_slots(cycle)

    def _retire_entry(self, entry: _Inflight) -> None:
        """Free the retiring writer's previous physical register."""
        info = self._rename_of.pop(entry.sequence, None)
        if info is not None:
            self._free_regs.append(info[2])

    def _recover_from(self, entry: _Inflight) -> None:
        """Roll the rename state back, then run front-end recovery.

        The active list is walked youngest -> oldest (the R10K
        exception-rollback walk): each squashed writer's map entry is
        restored to its previous mapping and its freshly allocated
        physical register is returned to the free list, leaving the
        rename state exactly as the mispredicted branch saw it.
        """
        histogram = self.stats.extra.setdefault(DEPTH_HISTOGRAM_KEY, {})
        depth = self._inflight_count
        histogram[depth] = histogram.get(depth, 0) + 1
        rename_map = self._rename_map
        rename_of = self._rename_of
        for younger in reversed(self._inflight):
            info = rename_of.pop(younger.sequence, None)
            if info is None:
                continue
            arch, new_phys, old_phys = info
            rename_map[arch] = old_phys
            self._free_regs.appendleft(new_phys)
        # squashed instructions release their claimed issue ports
        self._prune_issue_slots(self._cycle, future=True)
        super()._recover_from(entry)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _prune_issue_slots(self, cycle: int, future: bool = False) -> None:
        """Drop spent (< ``cycle``) -- and, on squash, reserved future
        (> ``cycle``) -- entries from the issue-port ledger."""
        slots = self._issue_slots
        if future:
            stale = [c for c in slots if c > cycle]
        else:
            stale = [c for c in slots if c < cycle]
        for c in stale:
            del slots[c]


def _operand_shape(inst: Instruction) -> Tuple[Tuple[int, ...], int, bool]:
    """(source regs, destination reg or -1, goes through the D-cache)."""
    category = inst.opcode.category
    if category is OpCategory.ALU_RRR:
        return (inst.rs1, inst.rs2), inst.rd, False
    if category is OpCategory.ALU_RRI:
        return (inst.rs1,), inst.rd, False
    if category is OpCategory.LUI:
        return (), inst.rd, False
    if category is OpCategory.LOAD:
        return (inst.rs1,), inst.rd, True
    if category is OpCategory.STORE:
        return (inst.rs1, inst.rs2), -1, True
    if category is OpCategory.BRANCH:
        return (inst.rs1, inst.rs2), -1, False
    if category is OpCategory.JUMP:
        if inst.opcode is Opcode.JAL:
            return (), LINK_REG, False
        return (), -1, False
    if category is OpCategory.JUMP_REGISTER:
        return (inst.rs1,), -1, False
    return (), -1, False  # SYSTEM: halt/nop
