"""Picklable mid-run pipeline checkpoints (segment snapshots).

A :class:`PipelineSnapshot` freezes a paused
:class:`~repro.pipeline.core.PipelineSimulator` -- machine registers,
journaled memory, pc, predictor tables, estimator state,
:class:`~repro.pipeline.records.PipelineStats`, the columnar
:class:`~repro.pipeline.records.BranchRecordStore`, and any in-flight
entries -- so a later process can resume the simulation
cycle-for-cycle identically to one that never paused.  This is what
makes long pipeline runs shardable: :mod:`repro.harness.shard` splits
each (workload, predictor) cell into fixed instruction-budget segments
and stores one snapshot per segment as a content-addressed
``pipeline-segment`` artifact.

The whole simulator is captured as a single pickle so every shared
reference survives intact (estimator objects are aliased from the
in-flight entries' assessment tuples; the dual-path simulator's active
fork aliases its deque entry).  Capture pickles immediately --
``capture_snapshot`` returns a deep, frozen copy by construction, so
continuing the live simulator afterwards cannot mutate the checkpoint.
The simulator's ``fast``/``decoded`` machinery cooperates:
:class:`~repro.pipeline.decode.DecodedProgram` drops its closures on
pickling and rebuilds them lazily, ``BranchRecordStore`` resets its
materialise memo, and the machine's undo-log ``_MISSING`` sentinel is
pickle-stable (see :mod:`repro.isa.machine`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

#: Bump when the snapshot payload layout changes; restores refuse
#: mismatched schemas instead of resuming from garbage.
SNAPSHOT_SCHEMA = "pipeline-snapshot/1"


class SnapshotError(RuntimeError):
    """A snapshot could not be restored (wrong schema or payload)."""


@dataclass(frozen=True)
class PipelineSnapshot:
    """One frozen segment boundary of a pipeline simulation.

    The metadata fields describe the paused run without unpickling it,
    so schedulers can pick the furthest usable snapshot cheaply;
    ``payload`` is the pickled simulator itself.
    """

    schema: str
    committed_instructions: int
    cycle: int
    done: bool
    fetched_branches: int
    payload: bytes


def capture_snapshot(simulator) -> PipelineSnapshot:
    """Freeze ``simulator`` at its current (paused) state."""
    return PipelineSnapshot(
        schema=SNAPSHOT_SCHEMA,
        committed_instructions=simulator.stats.committed_instructions,
        cycle=simulator.cycle,
        done=simulator.done,
        fetched_branches=simulator.stats.fetched_branches,
        payload=pickle.dumps(simulator, protocol=pickle.HIGHEST_PROTOCOL),
    )


def restore_snapshot(snapshot: PipelineSnapshot):
    """Thaw a simulator that resumes exactly where ``snapshot`` paused."""
    if snapshot.schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot schema {snapshot.schema!r} != {SNAPSHOT_SCHEMA!r}"
        )
    try:
        simulator = pickle.loads(snapshot.payload)
    except Exception as error:  # corrupt payload: caller recomputes
        raise SnapshotError(f"unreadable snapshot payload: {error}") from error
    if (
        simulator.stats.committed_instructions
        != snapshot.committed_instructions
    ):
        raise SnapshotError(
            "snapshot metadata disagrees with payload:"
            f" {simulator.stats.committed_instructions} committed"
            f" != {snapshot.committed_instructions}"
        )
    return simulator
