"""Pipeline configuration (the paper's sim-outorder-derived machine).

Paper §3.1: a 5-stage pipeline with an additional 3-cycle misprediction
recovery penalty, a 64 kB L1 data cache and a 128 kB L1 instruction
cache, both with 2-cycle access latency.  Those are the defaults here;
everything is a knob so the benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache (word-granular addresses)."""

    size_words: int
    line_words: int = 8
    associativity: int = 2
    miss_penalty: int = 10

    def __post_init__(self) -> None:
        for name in ("size_words", "line_words", "associativity"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name}={value} must be a positive power of two")
        if self.size_words < self.line_words * self.associativity:
            raise ValueError("cache smaller than one set")
        if self.miss_penalty < 0:
            raise ValueError("miss_penalty must be non-negative")

    @property
    def num_lines(self) -> int:
        return self.size_words // self.line_words

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class PipelineConfig:
    """Machine model parameters.

    ``resolve_stage`` is the fetch-to-branch-resolution depth in cycles
    (IF to EX of the 5-stage pipe); ``mispredict_penalty`` is the
    paper's *additional* 3-cycle recovery charge on top of the natural
    refill.  ``window`` bounds in-flight instructions (fetch stalls when
    full).  Data-cache misses feed a congestion counter (decaying one
    cycle per cycle) that delays subsequent branch resolution, modelling
    the variable resolution time the paper points to when explaining the
    perceived-distance skew of Figures 8/9.
    """

    fetch_width: int = 4
    commit_width: int = 4
    window: int = 64
    resolve_stage: int = 3
    mispredict_penalty: int = 3
    icache: CacheConfig = CacheConfig(size_words=32768, line_words=8)  # 128 kB
    dcache: CacheConfig = CacheConfig(size_words=16384, line_words=8)  # 64 kB
    cache_hit_latency: int = 2
    congestion_cap: int = 24

    def __post_init__(self) -> None:
        if self.fetch_width < 1:
            raise ValueError("fetch_width must be >= 1")
        if self.commit_width < 1:
            raise ValueError("commit_width must be >= 1")
        if self.window < self.fetch_width:
            raise ValueError("window must hold at least one fetch group")
        if self.resolve_stage < 1:
            raise ValueError("resolve_stage must be >= 1")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be non-negative")
        if self.cache_hit_latency < 1:
            raise ValueError("cache_hit_latency must be >= 1")
        if self.congestion_cap < 0:
            raise ValueError("congestion_cap must be non-negative")
