"""Functional simulator for the mini RISC ISA.

:class:`Machine` executes one instruction at a time and is the *golden
reference* for architectural state: the speculative pipeline in
:mod:`repro.pipeline` must commit exactly the instruction stream this
machine produces (an invariant checked by the integration tests).

The machine supports **journaled speculation**: callers may take a
:meth:`Machine.snapshot` before executing down a predicted path and
:meth:`Machine.restore` it when the prediction turns out wrong.  Memory
writes are undo-logged, so snapshots are O(register file) and restores
are O(wrong-path stores), which keeps pipeline simulation fast even
though wrong paths execute real instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .instructions import (
    LINK_REG,
    NUM_REGISTERS,
    WORD_MASK,
    Instruction,
    OpCategory,
    Opcode,
    branch_taken,
    evaluate_alu,
)
from .program import Program


class MachineFault(RuntimeError):
    """Raised when execution leaves the program image.

    On the correct path this indicates a broken program.  On a wrong
    (speculative) path it is an expected event -- real hardware would
    fetch garbage; the pipeline model treats the faulting path as
    stalled until the misprediction that led there is repaired.
    """


class _MissingSentinel:
    """Undo-log marker for "address was unmapped before this store".

    A plain ``object()`` would lose its identity across pickling, and
    :meth:`Machine.restore` compares with ``is`` -- so a machine that
    went through a snapshot/pickle round trip (pipeline segment
    checkpoints) would silently stop unmapping addresses on rollback.
    ``__reduce__`` pins every unpickle to the module-level singleton.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<missing>"

    def __reduce__(self):
        return (_missing_sentinel, ())


_MISSING = _MissingSentinel()


def _missing_sentinel() -> "_MissingSentinel":
    return _MISSING


@dataclass(frozen=True)
class StepResult:
    """Outcome of executing a single instruction."""

    pc: int
    instruction: Instruction
    next_pc: int
    #: For conditional branches: the evaluated direction, else ``None``.
    taken: Optional[bool] = None
    halted: bool = False

    @property
    def is_conditional_branch(self) -> bool:
        return self.taken is not None


@dataclass(frozen=True)
class Snapshot:
    """Opaque machine checkpoint (register state + undo-log position)."""

    regs: Tuple[int, ...]
    pc: int
    halted: bool
    journal_length: int
    instructions_retired: int


class Machine:
    """Architectural state plus a single-instruction executor."""

    def __init__(self, program: Program):
        self.program = program
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.memory: Dict[int, int] = dict(program.data)
        self.pc: int = program.entry
        self.halted: bool = False
        self.instructions_retired: int = 0
        #: Undo log of (address, previous value or _MISSING) pairs.
        self._journal: List[Tuple[int, object]] = []

    # ------------------------------------------------------------------
    # speculation support
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Capture the architectural state for a later :meth:`restore`."""
        return Snapshot(
            regs=tuple(self.regs),
            pc=self.pc,
            halted=self.halted,
            journal_length=len(self._journal),
            instructions_retired=self.instructions_retired,
        )

    def restore(self, snap: Snapshot) -> None:
        """Roll architectural state back to ``snap``.

        Any snapshot taken *after* ``snap`` becomes invalid.
        """
        journal = self._journal
        if snap.journal_length > len(journal):
            raise ValueError("snapshot is newer than current state")
        memory = self.memory
        while len(journal) > snap.journal_length:
            address, old = journal.pop()
            if old is _MISSING:
                memory.pop(address, None)
            else:
                memory[address] = old
        self.regs = list(snap.regs)
        self.pc = snap.pc
        self.halted = snap.halted
        self.instructions_retired = snap.instructions_retired

    def trim_journal(self) -> None:
        """Discard the undo log (valid once no snapshots are live)."""
        self._journal.clear()

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def store_word(self, address: int, value: int) -> None:
        """Journaled memory write used by ``sw`` (and tests)."""
        memory = self.memory
        self._journal.append((address, memory.get(address, _MISSING)))
        memory[address] = value & WORD_MASK

    def load_word(self, address: int) -> int:
        """Memory read; unmapped addresses read as zero.

        Reading zeros for unmapped addresses makes wrong-path loads
        well-defined, mirroring hardware that returns whatever the
        memory system holds.
        """
        return self.memory.get(address, 0)

    def step(self) -> StepResult:
        """Execute the instruction at ``pc`` and advance state."""
        if self.halted:
            raise MachineFault("machine is halted")
        pc = self.pc
        try:
            inst = self.program.instructions[pc]
        except IndexError:
            raise MachineFault(f"fetch outside program at pc={pc}") from None
        opcode = inst.opcode
        category = opcode.category
        regs = self.regs
        next_pc = pc + 1
        taken: Optional[bool] = None
        halted = False

        if category is OpCategory.ALU_RRR:
            if inst.rd:
                regs[inst.rd] = evaluate_alu(opcode, regs[inst.rs1], regs[inst.rs2])
        elif category is OpCategory.ALU_RRI:
            if inst.rd:
                regs[inst.rd] = evaluate_alu(
                    opcode, regs[inst.rs1], inst.imm & WORD_MASK
                )
        elif category is OpCategory.LUI:
            if inst.rd:
                regs[inst.rd] = (inst.imm << 16) & WORD_MASK
        elif category is OpCategory.LOAD:
            if inst.rd:
                regs[inst.rd] = self.load_word((regs[inst.rs1] + inst.imm) & WORD_MASK)
        elif category is OpCategory.STORE:
            self.store_word((regs[inst.rs1] + inst.imm) & WORD_MASK, regs[inst.rs2])
        elif category is OpCategory.BRANCH:
            taken = branch_taken(opcode, regs[inst.rs1], regs[inst.rs2])
            if taken:
                next_pc = inst.imm
        elif category is OpCategory.JUMP:
            if opcode is Opcode.JAL:
                regs[LINK_REG] = next_pc
            next_pc = inst.imm
        elif category is OpCategory.JUMP_REGISTER:
            next_pc = regs[inst.rs1]
        else:  # SYSTEM
            if opcode is Opcode.HALT:
                halted = True
                self.halted = True

        self.pc = next_pc
        self.instructions_retired += 1
        return StepResult(
            pc=pc, instruction=inst, next_pc=next_pc, taken=taken, halted=halted
        )

    def run(self, max_steps: int = 10_000_000) -> int:
        """Run until ``halt`` or ``max_steps``; return instructions retired."""
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        return steps

    def register_dump(self) -> Dict[str, int]:
        """Registers as a name -> value mapping (debugging aid)."""
        return {f"r{i}": value for i, value in enumerate(self.regs)}
