"""Mini RISC ISA: instruction set, assembler, program image, simulator."""

from .assembler import Assembler, AssemblyError, assemble
from .instructions import (
    Instruction,
    OpCategory,
    Opcode,
    branch_taken,
    evaluate_alu,
    to_signed,
    to_unsigned,
)
from .machine import Machine, MachineFault, Snapshot, StepResult
from .program import Program

__all__ = [
    "Assembler",
    "AssemblyError",
    "assemble",
    "Instruction",
    "OpCategory",
    "Opcode",
    "branch_taken",
    "evaluate_alu",
    "to_signed",
    "to_unsigned",
    "Machine",
    "MachineFault",
    "Snapshot",
    "StepResult",
    "Program",
]
