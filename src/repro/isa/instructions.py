"""Instruction set of the mini RISC machine used as execution substrate.

The paper evaluated confidence estimators on SPECint95 binaries running
under SimpleScalar.  This repository replaces that substrate with a small
but complete 32-register RISC ISA.  The ISA is deliberately conventional
(MIPS-flavoured) so that the synthetic workloads in
:mod:`repro.workloads` are ordinary programs: they have loops, calls,
data-dependent branches, and -- crucially for the paper's Section 4 --
meaningful *wrong-path* instructions that a speculative pipeline can
fetch and execute before a misprediction is detected.

All arithmetic is 32-bit two's complement.  Registers are named ``r0`` ..
``r31``; ``r0`` is hard-wired to zero, as in MIPS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

NUM_REGISTERS = 32
WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
SIGN_BIT = 1 << (WORD_BITS - 1)

#: Register index of the hard-wired zero register.
ZERO_REG = 0
#: Conventional link register used by ``jal``.
LINK_REG = 31


def to_signed(value: int) -> int:
    """Interpret ``value`` (any int) as a signed 32-bit quantity."""
    value &= WORD_MASK
    return value - (1 << WORD_BITS) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit quantity."""
    return value & WORD_MASK


class Opcode(enum.Enum):
    """Every operation understood by the machine.

    The ``category`` property groups opcodes by their operand shape,
    which the assembler and the simulators dispatch on.
    """

    # three-register ALU
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    # register-immediate ALU
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LUI = "lui"
    # memory
    LW = "lw"
    SW = "sw"
    # control transfer
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    JAL = "jal"
    JR = "jr"
    # machine control
    HALT = "halt"
    NOP = "nop"

    @property
    def category(self) -> "OpCategory":
        return _OP_CATEGORY[self]

    @property
    def is_conditional_branch(self) -> bool:
        return _OP_CATEGORY[self] is OpCategory.BRANCH

    @property
    def is_control(self) -> bool:
        return _OP_CATEGORY[self] in (
            OpCategory.BRANCH,
            OpCategory.JUMP,
            OpCategory.JUMP_REGISTER,
        )


class OpCategory(enum.Enum):
    """Operand/behaviour class of an opcode."""

    ALU_RRR = "alu_rrr"  # rd, rs1, rs2
    ALU_RRI = "alu_rri"  # rd, rs1, imm
    LUI = "lui"  # rd, imm
    LOAD = "load"  # rd, imm(rs1)
    STORE = "store"  # rs2, imm(rs1)
    BRANCH = "branch"  # rs1, rs2, target
    JUMP = "jump"  # target (JAL also writes LINK_REG)
    JUMP_REGISTER = "jump_register"  # rs1
    SYSTEM = "system"  # no operands


_OP_CATEGORY = {
    Opcode.ADD: OpCategory.ALU_RRR,
    Opcode.SUB: OpCategory.ALU_RRR,
    Opcode.MUL: OpCategory.ALU_RRR,
    Opcode.AND: OpCategory.ALU_RRR,
    Opcode.OR: OpCategory.ALU_RRR,
    Opcode.XOR: OpCategory.ALU_RRR,
    Opcode.SLL: OpCategory.ALU_RRR,
    Opcode.SRL: OpCategory.ALU_RRR,
    Opcode.SRA: OpCategory.ALU_RRR,
    Opcode.SLT: OpCategory.ALU_RRR,
    Opcode.SLTU: OpCategory.ALU_RRR,
    Opcode.ADDI: OpCategory.ALU_RRI,
    Opcode.ANDI: OpCategory.ALU_RRI,
    Opcode.ORI: OpCategory.ALU_RRI,
    Opcode.XORI: OpCategory.ALU_RRI,
    Opcode.SLTI: OpCategory.ALU_RRI,
    Opcode.SLLI: OpCategory.ALU_RRI,
    Opcode.SRLI: OpCategory.ALU_RRI,
    Opcode.SRAI: OpCategory.ALU_RRI,
    Opcode.LUI: OpCategory.LUI,
    Opcode.LW: OpCategory.LOAD,
    Opcode.SW: OpCategory.STORE,
    Opcode.BEQ: OpCategory.BRANCH,
    Opcode.BNE: OpCategory.BRANCH,
    Opcode.BLT: OpCategory.BRANCH,
    Opcode.BGE: OpCategory.BRANCH,
    Opcode.J: OpCategory.JUMP,
    Opcode.JAL: OpCategory.JUMP,
    Opcode.JR: OpCategory.JUMP_REGISTER,
    Opcode.HALT: OpCategory.SYSTEM,
    Opcode.NOP: OpCategory.SYSTEM,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded machine instruction.

    Fields that do not apply to an opcode's category are ``0``/``None``.
    ``imm`` holds the signed immediate for ALU/memory forms and the
    *absolute* target address for branches and jumps (the assembler
    resolves labels to absolute instruction indices; a real encoding
    would use PC-relative offsets, which changes nothing observable).
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    #: Optional label this instruction's target came from (for listings).
    target_label: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < NUM_REGISTERS:
                raise ValueError(f"{name}={reg} out of range for {self.opcode}")

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode.is_conditional_branch

    @property
    def is_control(self) -> bool:
        return self.opcode.is_control

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cat = self.opcode.category
        name = self.opcode.value
        if cat is OpCategory.ALU_RRR:
            return f"{name} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if cat is OpCategory.ALU_RRI:
            return f"{name} r{self.rd}, r{self.rs1}, {self.imm}"
        if cat is OpCategory.LUI:
            return f"{name} r{self.rd}, {self.imm}"
        if cat is OpCategory.LOAD:
            return f"{name} r{self.rd}, {self.imm}(r{self.rs1})"
        if cat is OpCategory.STORE:
            return f"{name} r{self.rs2}, {self.imm}(r{self.rs1})"
        if cat is OpCategory.BRANCH:
            tgt = self.target_label or str(self.imm)
            return f"{name} r{self.rs1}, r{self.rs2}, {tgt}"
        if cat is OpCategory.JUMP:
            return f"{name} {self.target_label or self.imm}"
        if cat is OpCategory.JUMP_REGISTER:
            return f"{name} r{self.rs1}"
        return name


def evaluate_alu(opcode: Opcode, a: int, b: int) -> int:
    """Compute the 32-bit result of an ALU operation on operands a, b.

    ``a`` and ``b`` are unsigned 32-bit register values; the result is an
    unsigned 32-bit value.  Immediate forms reuse the base operation of
    their register form (e.g. ``ADDI`` -> ``ADD``).
    """
    if opcode in (Opcode.ADD, Opcode.ADDI):
        return (a + b) & WORD_MASK
    if opcode is Opcode.SUB:
        return (a - b) & WORD_MASK
    if opcode is Opcode.MUL:
        return (a * b) & WORD_MASK
    if opcode in (Opcode.AND, Opcode.ANDI):
        return (a & b) & WORD_MASK
    if opcode in (Opcode.OR, Opcode.ORI):
        return (a | b) & WORD_MASK
    if opcode in (Opcode.XOR, Opcode.XORI):
        return (a ^ b) & WORD_MASK
    if opcode in (Opcode.SLL, Opcode.SLLI):
        return (a << (b & 31)) & WORD_MASK
    if opcode in (Opcode.SRL, Opcode.SRLI):
        return (a & WORD_MASK) >> (b & 31)
    if opcode in (Opcode.SRA, Opcode.SRAI):
        return (to_signed(a) >> (b & 31)) & WORD_MASK
    if opcode in (Opcode.SLT, Opcode.SLTI):
        return 1 if to_signed(a) < to_signed(b) else 0
    if opcode is Opcode.SLTU:
        return 1 if (a & WORD_MASK) < (b & WORD_MASK) else 0
    raise ValueError(f"{opcode} is not an ALU opcode")


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch's condition on register values."""
    if opcode is Opcode.BEQ:
        return (a & WORD_MASK) == (b & WORD_MASK)
    if opcode is Opcode.BNE:
        return (a & WORD_MASK) != (b & WORD_MASK)
    if opcode is Opcode.BLT:
        return to_signed(a) < to_signed(b)
    if opcode is Opcode.BGE:
        return to_signed(a) >= to_signed(b)
    raise ValueError(f"{opcode} is not a conditional branch")
