"""Two-pass assembler for the mini RISC ISA.

The assembler accepts a conventional textual assembly dialect::

    .data
    table:  .word 1, 2, 3, 4          ; labelled words
    buf:    .space 64                 ; 64 zero-initialised words

    .text
    start:  addi r1, r0, 10
    loop:   lw   r2, 0(r3)
            beq  r2, r0, done
            addi r1, r1, -1
            bne  r1, r0, loop
    done:   halt

Comments start with ``;`` or ``#``.  Labels may appear on their own
line.  Branch/jump targets may be labels or literal instruction
indices.  ``la rd, label`` is a pseudo-op that loads a data label's word
address.

The synthetic workload generator emits this dialect, so the whole
workload path (generator -> text -> assembler -> program -> machine) is
exercised exactly as a user porting their own kernels would exercise it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction, OpCategory, Opcode
from .program import Program


class AssemblyError(ValueError):
    """Raised for any syntactic or semantic error in assembly source."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


_REGISTER_RE = re.compile(r"^r(\d{1,2})$")
_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((r\d{1,2})\)$")

_OPCODES_BY_NAME = {op.value: op for op in Opcode}


def parse_register(token: str, line_no: int) -> int:
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblyError(f"expected register, got {token!r}", line_no)
    reg = int(match.group(1))
    if reg >= 32:
        raise AssemblyError(f"register r{reg} out of range", line_no)
    return reg


def parse_immediate(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected immediate, got {token!r}", line_no) from None


@dataclass
class _PendingInstruction:
    """Instruction text captured in pass one, resolved in pass two."""

    mnemonic: str
    operands: List[str]
    line_no: int


@dataclass
class Assembler:
    """Two-pass assembler producing a :class:`Program`.

    Pass one collects labels and sizes segments; pass two resolves
    label references and emits :class:`Instruction` objects.
    """

    name: str = "program"
    _code: List[_PendingInstruction] = field(default_factory=list)
    _code_labels: Dict[str, int] = field(default_factory=dict)
    _data_labels: Dict[str, int] = field(default_factory=dict)
    _data: Dict[int, int] = field(default_factory=dict)
    _data_cursor: int = 0
    #: .word entries naming labels: (word address, label, line) fixups
    #: resolved once all code labels are known (jump tables).
    _data_fixups: List[Tuple[int, str, int]] = field(default_factory=list)

    def assemble(self, source: str) -> Program:
        self._pass_one(source)
        instructions = [self._resolve(pending) for pending in self._code]
        for address, label, line_no in self._data_fixups:
            if label in self._code_labels:
                self._data[address] = self._code_labels[label]
            elif label in self._data_labels:
                self._data[address] = self._data_labels[label]
            else:
                raise AssemblyError(f"undefined label {label!r} in .word", line_no)
        labels = dict(self._data_labels)
        labels.update(self._code_labels)
        entry = self._code_labels.get("start", 0)
        return Program(
            instructions=instructions,
            data=dict(self._data),
            labels=labels,
            entry=entry,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # pass one: tokenise, track segments, record labels
    # ------------------------------------------------------------------

    def _pass_one(self, source: str) -> None:
        segment = "text"
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            # peel off any leading labels ("foo: bar: addi ...")
            while True:
                head, sep, rest = line.partition(":")
                if sep and _LABEL_RE.match(head.strip()):
                    self._define_label(head.strip(), segment, line_no)
                    line = rest.strip()
                    if not line:
                        break
                else:
                    break
            if not line:
                continue
            if line.startswith("."):
                segment = self._directive(line, segment, line_no)
                continue
            if segment != "text":
                raise AssemblyError("instruction outside .text segment", line_no)
            mnemonic, __, operand_text = line.partition(" ")
            operands = [
                tok.strip() for tok in operand_text.split(",") if tok.strip()
            ]
            self._code.append(
                _PendingInstruction(mnemonic.lower(), operands, line_no)
            )

    def _define_label(self, label: str, segment: str, line_no: int) -> None:
        if label in self._code_labels or label in self._data_labels:
            raise AssemblyError(f"duplicate label {label!r}", line_no)
        if segment == "text":
            self._code_labels[label] = len(self._code)
        else:
            self._data_labels[label] = self._data_cursor

    def _directive(self, line: str, segment: str, line_no: int) -> str:
        directive, __, arg_text = line.partition(" ")
        if directive == ".text":
            return "text"
        if directive == ".data":
            return "data"
        if directive == ".word":
            if segment != "data":
                raise AssemblyError(".word outside .data segment", line_no)
            for token in arg_text.split(","):
                token = token.strip()
                if _LABEL_RE.match(token) and not token.lstrip("-").isdigit():
                    # label reference (e.g. a jump-table entry): fixed up
                    # after pass two, when code labels are final
                    self._data_fixups.append((self._data_cursor, token, line_no))
                    self._data[self._data_cursor] = 0
                else:
                    value = parse_immediate(token, line_no)
                    self._data[self._data_cursor] = value & 0xFFFFFFFF
                self._data_cursor += 1
            return segment
        if directive == ".space":
            if segment != "data":
                raise AssemblyError(".space outside .data segment", line_no)
            count = parse_immediate(arg_text.strip(), line_no)
            if count < 0:
                raise AssemblyError(".space with negative size", line_no)
            self._data_cursor += count
            return segment
        raise AssemblyError(f"unknown directive {directive!r}", line_no)

    # ------------------------------------------------------------------
    # pass two: resolve operands and emit instructions
    # ------------------------------------------------------------------

    def _resolve(self, pending: _PendingInstruction) -> Instruction:
        mnemonic = pending.mnemonic
        ops = pending.operands
        line_no = pending.line_no
        if mnemonic == "la":  # pseudo-op: load data address
            self._expect(ops, 2, mnemonic, line_no)
            rd = parse_register(ops[0], line_no)
            address = self._data_address(ops[1], line_no)
            return Instruction(Opcode.ADDI, rd=rd, rs1=0, imm=address)
        if mnemonic == "li":  # pseudo-op: load immediate
            self._expect(ops, 2, mnemonic, line_no)
            rd = parse_register(ops[0], line_no)
            return Instruction(
                Opcode.ADDI, rd=rd, rs1=0, imm=parse_immediate(ops[1], line_no)
            )
        if mnemonic == "mv":  # pseudo-op: register move
            self._expect(ops, 2, mnemonic, line_no)
            rd = parse_register(ops[0], line_no)
            rs1 = parse_register(ops[1], line_no)
            return Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=0)
        opcode = _OPCODES_BY_NAME.get(mnemonic)
        if opcode is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)
        cat = opcode.category
        if cat is OpCategory.ALU_RRR:
            self._expect(ops, 3, mnemonic, line_no)
            return Instruction(
                opcode,
                rd=parse_register(ops[0], line_no),
                rs1=parse_register(ops[1], line_no),
                rs2=parse_register(ops[2], line_no),
            )
        if cat is OpCategory.ALU_RRI:
            self._expect(ops, 3, mnemonic, line_no)
            return Instruction(
                opcode,
                rd=parse_register(ops[0], line_no),
                rs1=parse_register(ops[1], line_no),
                imm=parse_immediate(ops[2], line_no),
            )
        if cat is OpCategory.LUI:
            self._expect(ops, 2, mnemonic, line_no)
            return Instruction(
                opcode,
                rd=parse_register(ops[0], line_no),
                imm=parse_immediate(ops[1], line_no),
            )
        if cat in (OpCategory.LOAD, OpCategory.STORE):
            self._expect(ops, 2, mnemonic, line_no)
            offset, base = self._memory_operand(ops[1], line_no)
            if cat is OpCategory.LOAD:
                return Instruction(
                    opcode,
                    rd=parse_register(ops[0], line_no),
                    rs1=base,
                    imm=offset,
                )
            return Instruction(
                opcode,
                rs2=parse_register(ops[0], line_no),
                rs1=base,
                imm=offset,
            )
        if cat is OpCategory.BRANCH:
            self._expect(ops, 3, mnemonic, line_no)
            target, label = self._code_target(ops[2], line_no)
            return Instruction(
                opcode,
                rs1=parse_register(ops[0], line_no),
                rs2=parse_register(ops[1], line_no),
                imm=target,
                target_label=label,
            )
        if cat is OpCategory.JUMP:
            self._expect(ops, 1, mnemonic, line_no)
            target, label = self._code_target(ops[0], line_no)
            rd = 31 if opcode is Opcode.JAL else 0
            return Instruction(opcode, rd=rd, imm=target, target_label=label)
        if cat is OpCategory.JUMP_REGISTER:
            self._expect(ops, 1, mnemonic, line_no)
            return Instruction(opcode, rs1=parse_register(ops[0], line_no))
        # SYSTEM
        self._expect(ops, 0, mnemonic, line_no)
        return Instruction(opcode)

    @staticmethod
    def _expect(ops: List[str], count: int, mnemonic: str, line_no: int) -> None:
        if len(ops) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operand(s), got {len(ops)}", line_no
            )

    def _memory_operand(self, token: str, line_no: int) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(token)
        if not match:
            raise AssemblyError(
                f"expected offset(base) operand, got {token!r}", line_no
            )
        offset_text, base_text = match.groups()
        if _LABEL_RE.match(offset_text) and not offset_text.lstrip("-").isdigit():
            offset = self._data_address(offset_text, line_no)
        else:
            offset = parse_immediate(offset_text, line_no)
        return offset, parse_register(base_text, line_no)

    def _code_target(self, token: str, line_no: int) -> Tuple[int, Optional[str]]:
        if token in self._code_labels:
            return self._code_labels[token], token
        if token.lstrip("-").isdigit():
            return int(token), None
        raise AssemblyError(f"undefined code label {token!r}", line_no)

    def _data_address(self, token: str, line_no: int) -> int:
        if token in self._data_labels:
            return self._data_labels[token]
        raise AssemblyError(f"undefined data label {token!r}", line_no)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` text into a runnable :class:`Program`."""
    return Assembler(name=name).assemble(source)
