"""Assembled program image: code, initial data and symbol table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .instructions import Instruction


@dataclass
class Program:
    """A fully linked program ready to run on the machine.

    Addresses are *instruction indices* for code and *word addresses*
    for data; the machine keeps code and data in separate spaces
    (a Harvard layout), which keeps the pipeline's instruction cache
    model independent of the data cache.
    """

    instructions: List[Instruction]
    #: Initial data memory image: word address -> 32-bit value.
    data: Dict[int, int] = field(default_factory=dict)
    #: Symbol table: label -> instruction index (code) or word address (data).
    labels: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("a program must contain at least one instruction")
        if not 0 <= self.entry < len(self.instructions):
            raise ValueError(f"entry point {self.entry} outside program")

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at instruction index ``pc``.

        Raises :class:`IndexError` for out-of-range fetches; the
        speculative pipeline catches this to model wrong-path fetches
        that run off the end of the code segment.
        """
        if pc < 0 or pc >= len(self.instructions):
            raise IndexError(f"instruction fetch outside program: pc={pc}")
        return self.instructions[pc]

    def static_branch_sites(self) -> List[int]:
        """Instruction indices of all conditional branches in the image."""
        return [
            pc
            for pc, inst in enumerate(self.instructions)
            if inst.is_conditional_branch
        ]

    def listing(self, limit: int = None) -> str:
        """Human-readable disassembly listing (for debugging/examples)."""
        index_to_label: Dict[int, List[str]] = {}
        for label, addr in self.labels.items():
            index_to_label.setdefault(addr, []).append(label)
        lines: List[str] = []
        body: Sequence[Instruction] = self.instructions
        if limit is not None:
            body = body[:limit]
        for pc, inst in enumerate(body):
            for label in sorted(index_to_label.get(pc, ())):
                lines.append(f"{label}:")
            lines.append(f"  {pc:6d}: {inst}")
        if limit is not None and limit < len(self.instructions):
            lines.append(f"  ... ({len(self.instructions) - limit} more)")
        return "\n".join(lines)
