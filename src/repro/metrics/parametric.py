"""Closed-form relations between SENS, SPEC, accuracy, PVP and PVN.

These are the Bayes-rule identities behind the paper's Figure 1.  With
prediction accuracy ``p`` (the prior of a *correct* prediction):

    PVP = SENS*p / (SENS*p + (1-SPEC)*(1-p))
    PVN = SPEC*(1-p) / (SPEC*(1-p) + (1-SENS)*p)

Figure 1 plots (PVP, PVN) trajectories while two of the three inputs
are held fixed and the third sweeps 0..1, with decile markers.  The
same phenomenon as Gastwirth's ELISA example falls out: with very high
accuracy (rare "disease" = misprediction) even an excellent SPEC gives
a modest PVN -- the reason every estimator's PVN sinks when moving from
gshare to McFarling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name}={value} outside [0, 1]")


def pvp_from(sens: float, spec: float, accuracy: float) -> float:
    """Predictive value of a positive (HC) test via Bayes' rule."""
    _check_unit("sens", sens)
    _check_unit("spec", spec)
    _check_unit("accuracy", accuracy)
    numerator = sens * accuracy
    denominator = numerator + (1.0 - spec) * (1.0 - accuracy)
    return numerator / denominator if denominator else 0.0


def pvn_from(sens: float, spec: float, accuracy: float) -> float:
    """Predictive value of a negative (LC) test via Bayes' rule."""
    _check_unit("sens", sens)
    _check_unit("spec", spec)
    _check_unit("accuracy", accuracy)
    numerator = spec * (1.0 - accuracy)
    denominator = numerator + (1.0 - sens) * accuracy
    return numerator / denominator if denominator else 0.0


def quadrant_from_rates(
    sens: float, spec: float, accuracy: float
) -> Tuple[float, float, float, float]:
    """Normalised (C_HC, I_HC, C_LC, I_LC) implied by the three rates."""
    _check_unit("sens", sens)
    _check_unit("spec", spec)
    _check_unit("accuracy", accuracy)
    c_hc = sens * accuracy
    c_lc = (1.0 - sens) * accuracy
    i_lc = spec * (1.0 - accuracy)
    i_hc = (1.0 - spec) * (1.0 - accuracy)
    return c_hc, i_hc, c_lc, i_lc


@dataclass(frozen=True)
class ParametricCurve:
    """One Figure-1 line: (PVP, PVN) as one parameter sweeps 0..1."""

    label: str
    varying: str  # which of sens/spec is swept
    fixed: Tuple[Tuple[str, float], ...]
    points: Tuple[Tuple[float, float, float], ...]  # (param, pvp, pvn)

    def decile_markers(self) -> List[Tuple[float, float, float]]:
        """Points at parameter deciles (the markers in Figure 1)."""
        markers = []
        for decile in range(11):
            target = decile / 10.0
            closest = min(self.points, key=lambda point: abs(point[0] - target))
            markers.append(closest)
        return markers


def figure1_curve(
    varying: str,
    sens: float = None,
    spec: float = None,
    accuracy: float = None,
    steps: int = 100,
) -> ParametricCurve:
    """Build one parametric curve, sweeping ``varying`` over [0, 1].

    Exactly one of ``sens``/``spec`` must be left ``None`` (the swept
    one); ``accuracy`` is always fixed.
    """
    if varying not in ("sens", "spec"):
        raise ValueError("varying must be 'sens' or 'spec'")
    if accuracy is None:
        raise ValueError("accuracy must be fixed for a Figure-1 curve")
    fixed_values = {"sens": sens, "spec": spec}
    if fixed_values[varying] is not None:
        raise ValueError(f"{varying} is swept and must be None")
    del fixed_values[varying]
    (fixed_name, fixed_value), = fixed_values.items()
    if fixed_value is None:
        raise ValueError(f"{fixed_name} must be fixed")
    points = []
    for step in range(steps + 1):
        value = step / steps
        rates = {varying: value, fixed_name: fixed_value}
        points.append(
            (
                value,
                pvp_from(rates["sens"], rates["spec"], accuracy),
                pvn_from(rates["sens"], rates["spec"], accuracy),
            )
        )
    label = (
        f"vary {varying}; {fixed_name}={fixed_value:.0%}, p={accuracy:.0%}"
    )
    return ParametricCurve(
        label=label,
        varying=varying,
        fixed=((fixed_name, fixed_value), ("accuracy", accuracy)),
        points=tuple(points),
    )


def figure1_family() -> List[ParametricCurve]:
    """The representative curve family discussed with Figure 1."""
    return [
        figure1_curve("sens", spec=0.70, accuracy=0.70),
        figure1_curve("sens", spec=0.70, accuracy=0.90),
        figure1_curve("sens", spec=0.99, accuracy=0.90),
        figure1_curve("spec", sens=0.70, accuracy=0.70),
        figure1_curve("spec", sens=0.70, accuracy=0.90),
    ]
