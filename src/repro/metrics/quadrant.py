"""The 2x2 quadrant table and the paper's four diagnostic-test metrics.

Section 2 of the paper recasts confidence estimation as a screening
test: every dynamic branch lands in one quadrant of

    =====  =========  =========
    .      correct    incorrect
    HC     C_HC       I_HC
    LC     C_LC       I_LC
    =====  =========  =========

and four "higher is better" statistics summarise an estimator:

* SENS = P[HC|C]  -- correct predictions tagged high-confidence
* PVP  = P[C|HC]  -- high-confidence tags that are right
* SPEC = P[LC|I]  -- mispredictions tagged low-confidence
* PVN  = P[I|LC]  -- low-confidence tags that are right

SENS and SPEC are properties of the correct / incorrect populations
alone and therefore independent of predictor accuracy; PVP and PVN mix
in the accuracy ``p`` (see :mod:`repro.metrics.parametric` for the
closed forms behind the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: metric name -> (numerator cell/property, denominator population).
#: A metric is *undefined* when its denominator population is empty --
#: e.g. PVN for an estimator that never emits a low-confidence tag.
METRIC_POPULATIONS = {
    "sens": ("c_hc", "correct"),
    "spec": ("i_lc", "incorrect"),
    "pvp": ("c_hc", "high_confidence"),
    "pvn": ("i_lc", "low_confidence"),
    "accuracy": ("correct", "total"),
    "misprediction_rate": ("incorrect", "total"),
    "coverage": ("low_confidence", "total"),
}


@dataclass
class QuadrantCounts:
    """Counts (or normalised frequencies) of the four outcomes."""

    c_hc: float = 0.0
    i_hc: float = 0.0
    c_lc: float = 0.0
    i_lc: float = 0.0

    def __post_init__(self) -> None:
        for name in ("c_hc", "i_hc", "c_lc", "i_lc"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    # population sums
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        return self.c_hc + self.i_hc + self.c_lc + self.i_lc

    @property
    def correct(self) -> float:
        """Correctly predicted branches (irrespective of confidence)."""
        return self.c_hc + self.c_lc

    @property
    def incorrect(self) -> float:
        return self.i_hc + self.i_lc

    @property
    def high_confidence(self) -> float:
        return self.c_hc + self.i_hc

    @property
    def low_confidence(self) -> float:
        return self.c_lc + self.i_lc

    # ------------------------------------------------------------------
    # the paper's four metrics
    # ------------------------------------------------------------------

    @property
    def sens(self) -> float:
        """Sensitivity P[HC|C]; 0 when there are no correct predictions."""
        return _ratio(self.c_hc, self.correct)

    @property
    def pvp(self) -> float:
        """Predictive value of a positive test, P[C|HC]."""
        return _ratio(self.c_hc, self.high_confidence)

    @property
    def spec(self) -> float:
        """Specificity P[LC|I]; 0 when there are no mispredictions."""
        return _ratio(self.i_lc, self.incorrect)

    @property
    def pvn(self) -> float:
        """Predictive value of a negative test, P[I|LC]."""
        return _ratio(self.i_lc, self.low_confidence)

    # ------------------------------------------------------------------
    # auxiliary statistics
    # ------------------------------------------------------------------

    @property
    def accuracy(self) -> float:
        """Branch prediction accuracy p (independent of the estimator)."""
        return _ratio(self.correct, self.total)

    @property
    def misprediction_rate(self) -> float:
        return _ratio(self.incorrect, self.total)

    @property
    def coverage(self) -> float:
        """Jacobsen et al.'s coverage: fraction of branches tagged LC."""
        return _ratio(self.low_confidence, self.total)

    @property
    def confidence_misprediction_rate(self) -> float:
        """Jacobsen et al.'s single-number metric (estimator "wrong"
        whenever it disagrees with the eventual outcome); kept for
        comparison, the paper argues it conflates HC and LC uses."""
        return _ratio(self.i_hc + self.c_lc, self.total)

    # ------------------------------------------------------------------
    # construction and arithmetic
    # ------------------------------------------------------------------

    def record(self, correct: bool, high_confidence: bool, weight: float = 1.0) -> None:
        """Accumulate one assessed branch into the table."""
        if high_confidence:
            if correct:
                self.c_hc += weight
            else:
                self.i_hc += weight
        elif correct:
            self.c_lc += weight
        else:
            self.i_lc += weight

    def normalized(self) -> "QuadrantCounts":
        """Frequencies summing to one (the paper's presentation)."""
        total = self.total
        if total == 0:
            return QuadrantCounts()
        return QuadrantCounts(
            c_hc=self.c_hc / total,
            i_hc=self.i_hc / total,
            c_lc=self.c_lc / total,
            i_lc=self.i_lc / total,
        )

    def __add__(self, other: "QuadrantCounts") -> "QuadrantCounts":
        return QuadrantCounts(
            c_hc=self.c_hc + other.c_hc,
            i_hc=self.i_hc + other.i_hc,
            c_lc=self.c_lc + other.c_lc,
            i_lc=self.i_lc + other.i_lc,
        )

    # ------------------------------------------------------------------
    # undefined-aware access
    # ------------------------------------------------------------------

    def metric(self, name: str, default: float = 0.0) -> float:
        """Metric ``name`` with an *explicit* value for the undefined
        case (empty denominator population).

        The plain properties (``.pvn`` etc.) keep returning 0.0 for
        backward compatibility; callers that must distinguish "no LC
        tags ever" from "every LC tag was wrong" pass their own
        ``default`` or use :meth:`metric_or_none`.
        """
        numerator_name, denominator_name = _metric_populations(name)
        return _ratio(
            getattr(self, numerator_name), getattr(self, denominator_name), default
        )

    def metric_or_none(self, name: str) -> Optional[float]:
        """Metric ``name``, or ``None`` when it is undefined.

        Renderers map ``None`` to ``n/a`` (see
        :func:`repro.harness.tables.pct`) instead of printing a
        misleading ``0.0%``.
        """
        numerator_name, denominator_name = _metric_populations(name)
        denominator = getattr(self, denominator_name)
        if not denominator:
            return None
        return getattr(self, numerator_name) / denominator

    def defined(self, name: str) -> bool:
        """Whether metric ``name`` has a non-empty denominator."""
        return self.metric_or_none(name) is not None

    def summary(self) -> str:
        """One-line rendering used by examples and the CLI.

        Undefined metrics render as ``n/a`` rather than ``0.0%``: an
        estimator that never emits LC has *no* PVN, which the paper
        treats as undefined, not as zero.
        """

        def fmt(name: str, decimals: int = 1) -> str:
            value = self.metric_or_none(name)
            return "   n/a" if value is None else f"{value:6.{decimals}%}"

        return (
            f"sens={fmt('sens')} spec={fmt('spec')} "
            f"pvp={fmt('pvp')} pvn={fmt('pvn')} "
            f"(accuracy={fmt('accuracy', 2)}, n={self.total:.0f})"
        )


def _metric_populations(name: str) -> tuple:
    try:
        return METRIC_POPULATIONS[name]
    except KeyError:
        raise ValueError(
            f"metric must be one of {sorted(METRIC_POPULATIONS)}, got {name!r}"
        ) from None


def _ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator``, or ``default`` when the denominator
    is empty -- the undefined case the caller must choose a value for."""
    return numerator / denominator if denominator else default
