"""Statistical machinery for quadrant metrics.

Every paper metric (SENS/SPEC/PVP/PVN, accuracy) is a binomial
proportion over some sub-population of branches, so standard interval
and test machinery applies:

* :func:`wilson_interval` -- the Wilson score interval, well-behaved at
  the extreme proportions confidence estimators produce (PVP near 1);
* :func:`metric_interval` -- interval for a named metric of a
  :class:`~repro.metrics.quadrant.QuadrantCounts`, using the metric's
  actual denominator population;
* :func:`two_proportion_z` / :func:`proportions_differ` -- are two
  estimators' metrics distinguishable at the given confidence, given
  their sample sizes?

These make the harness's comparisons honest: a 1-point PVN difference
on 40k branches is real; on 400 it is noise.
"""

from __future__ import annotations

import math
from typing import Tuple

from .quadrant import QuadrantCounts

#: z for the conventional confidence levels.
Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return Z_VALUES[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(Z_VALUES)}, got {confidence}"
        ) from None


def wilson_interval(
    successes: float, trials: float, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    z = _z_for(confidence)
    proportion = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (proportion + z2 / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1.0 - proportion) / trials + z2 / (4.0 * trials * trials)
        )
        / denominator
    )
    # the exact bounds at the extremes are 0/1; floating point can land
    # a hair inside them and exclude the point estimate itself
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return (low, high)


#: metric -> (numerator cell, denominator population) on QuadrantCounts.
_METRIC_POPULATIONS = {
    "sens": ("c_hc", "correct"),
    "spec": ("i_lc", "incorrect"),
    "pvp": ("c_hc", "high_confidence"),
    "pvn": ("i_lc", "low_confidence"),
    "accuracy": ("correct", "total"),
}


def metric_interval(
    quadrant: QuadrantCounts, metric: str, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson interval for one quadrant metric.

    Only meaningful on *raw counts* (a normalised table has lost its
    sample sizes, and this function will treat it as n <= 1).
    """
    try:
        numerator_name, denominator_name = _METRIC_POPULATIONS[metric]
    except KeyError:
        raise ValueError(
            f"metric must be one of {sorted(_METRIC_POPULATIONS)}, got {metric!r}"
        ) from None
    numerator = getattr(quadrant, numerator_name)
    denominator = getattr(quadrant, denominator_name)
    return wilson_interval(numerator, denominator, confidence)


def two_proportion_z(
    successes_a: float,
    trials_a: float,
    successes_b: float,
    trials_b: float,
) -> float:
    """Two-proportion pooled z statistic (0 when either sample is empty)."""
    if trials_a <= 0 or trials_b <= 0:
        return 0.0
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if variance <= 0.0:
        return 0.0
    return (p_a - p_b) / math.sqrt(variance)


def proportions_differ(
    successes_a: float,
    trials_a: float,
    successes_b: float,
    trials_b: float,
    confidence: float = 0.95,
) -> bool:
    """Two-sided test: are the two proportions distinguishable?"""
    z = abs(two_proportion_z(successes_a, trials_a, successes_b, trials_b))
    return z > _z_for(confidence)


def metrics_differ(
    quadrant_a: QuadrantCounts,
    quadrant_b: QuadrantCounts,
    metric: str,
    confidence: float = 0.95,
) -> bool:
    """Is ``metric`` significantly different between two estimators?

    Both quadrants must hold raw counts from (possibly the same)
    measured runs; the metric's own denominator population supplies the
    sample sizes.
    """
    numerator_name, denominator_name = _METRIC_POPULATIONS[metric]
    return proportions_differ(
        getattr(quadrant_a, numerator_name),
        getattr(quadrant_a, denominator_name),
        getattr(quadrant_b, numerator_name),
        getattr(quadrant_b, denominator_name),
        confidence,
    )


def format_with_interval(
    quadrant: QuadrantCounts, metric: str, confidence: float = 0.95
) -> str:
    """'30.1% ±1.2%' style rendering for harness output.

    An undefined metric (empty denominator population, e.g. PVN when
    the estimator never emitted LC) renders as ``n/a``: there is no
    proportion to put an interval around.
    """
    value = quadrant.metric_or_none(metric)
    if value is None:
        return "n/a"
    low, high = metric_interval(quadrant, metric, confidence)
    margin = max(value - low, high - value)
    return f"{value:.1%} ±{margin:.1%}"
