"""Cross-benchmark aggregation of quadrant tables.

The paper is explicit about its averaging discipline (§3.2): *"when
computing the average for the PVP, we take the mean for C_HC and C_LC
and compute C_HC/(C_HC+C_LC), rather than averaging the existing
PVPs"*.  :func:`average_quadrants` implements exactly that -- average
the four normalised quadrant frequencies across benchmarks, then let
the metric properties take their ratios.  :func:`metric_means` (plain
per-benchmark metric averaging) is provided for the averaging-method
ablation bench.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from .quadrant import QuadrantCounts


def average_quadrants(quadrants: Sequence[QuadrantCounts]) -> QuadrantCounts:
    """Paper-style average: mean of normalised quadrant frequencies."""
    if not quadrants:
        raise ValueError("cannot average an empty set of quadrant tables")
    normalized = [quadrant.normalized() for quadrant in quadrants]
    count = len(normalized)
    return QuadrantCounts(
        c_hc=sum(quadrant.c_hc for quadrant in normalized) / count,
        i_hc=sum(quadrant.i_hc for quadrant in normalized) / count,
        c_lc=sum(quadrant.c_lc for quadrant in normalized) / count,
        i_lc=sum(quadrant.i_lc for quadrant in normalized) / count,
    )


def metric_means(quadrants: Sequence[QuadrantCounts]) -> Dict[str, float]:
    """Arithmetic mean of each per-benchmark metric (ablation only)."""
    if not quadrants:
        raise ValueError("cannot average an empty set of quadrant tables")
    metrics: Dict[str, List[float]] = {"sens": [], "spec": [], "pvp": [], "pvn": []}
    for quadrant in quadrants:
        metrics["sens"].append(quadrant.sens)
        metrics["spec"].append(quadrant.spec)
        metrics["pvp"].append(quadrant.pvp)
        metrics["pvn"].append(quadrant.pvn)
    return {name: sum(values) / len(values) for name, values in metrics.items()}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero if any value is zero (as for rates)."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(value < 0 for value in values):
        raise ValueError("geometric mean requires non-negative values")
    if any(value == 0 for value in values):
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))
