"""Diagnostic-test metrics for confidence estimation (paper §1.1, §2)."""

from .aggregate import average_quadrants, geometric_mean, metric_means
from .parametric import (
    ParametricCurve,
    figure1_curve,
    figure1_family,
    pvn_from,
    pvp_from,
    quadrant_from_rates,
)
from .quadrant import QuadrantCounts
from .stats import (
    format_with_interval,
    metric_interval,
    metrics_differ,
    proportions_differ,
    two_proportion_z,
    wilson_interval,
)

__all__ = [
    "average_quadrants",
    "geometric_mean",
    "metric_means",
    "ParametricCurve",
    "figure1_curve",
    "figure1_family",
    "pvn_from",
    "pvp_from",
    "quadrant_from_rates",
    "QuadrantCounts",
    "format_with_interval",
    "metric_interval",
    "metrics_differ",
    "proportions_differ",
    "two_proportion_z",
    "wilson_interval",
]
