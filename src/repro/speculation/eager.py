"""Eager (dual-path) execution cost model (paper §2.2).

Eager-execution architectures fork down both targets of a
low-confidence branch so that a misprediction costs (almost) nothing.
Forking is not free: while two paths are live they split the front
end's bandwidth.  Whether an estimator pays its way is therefore a
direct function of the paper's metrics -- every covered misprediction
(SPEC) earns the recovery penalty back, every false alarm (1 - PVN)
pays the fork tax for nothing.

Rather than simulating a full dual-path front end, this module prices
a pipeline run's branch records under the standard eager-execution
accounting; it makes the PVN/SPEC trade-off quantitative and lets the
example compare estimators on identical branch streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..pipeline.config import PipelineConfig
from ..pipeline.records import BranchRecord


@dataclass(frozen=True)
class EagerOutcome:
    """Cycle accounting for eager execution driven by one estimator."""

    estimator: str
    #: Committed branches the model forked on (tagged low-confidence).
    forks: int
    #: Forks that covered a real misprediction (penalty avoided).
    covered_mispredictions: int
    #: Mispredictions not forked on (still pay the full penalty).
    uncovered_mispredictions: int
    #: Cycles recovered per covered misprediction.
    penalty_per_misprediction: int
    #: Bandwidth-dilution cost charged per fork.
    cost_per_fork: float

    @property
    def cycles_saved(self) -> float:
        return self.covered_mispredictions * self.penalty_per_misprediction

    @property
    def cycles_spent(self) -> float:
        return self.forks * self.cost_per_fork

    @property
    def net_cycles(self) -> float:
        """Positive = eager execution pays off under this estimator."""
        return self.cycles_saved - self.cycles_spent

    @property
    def fork_precision(self) -> float:
        """Fraction of forks that covered a misprediction (the PVN!)."""
        return self.covered_mispredictions / self.forks if self.forks else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of mispredictions covered (the SPEC!)."""
        total = self.covered_mispredictions + self.uncovered_mispredictions
        return self.covered_mispredictions / total if total else 0.0


def evaluate_eager_execution(
    records: Sequence[BranchRecord],
    estimator: str,
    config: PipelineConfig = None,
    dilution: float = 0.5,
) -> EagerOutcome:
    """Price eager execution over committed branch records.

    A fork on a mispredicted branch earns back the full misprediction
    penalty (branch-resolution depth plus the extra recovery charge).
    Every fork costs ``dilution * resolve_stage`` cycles of lost fetch
    bandwidth while both paths are live.
    """
    config = config or PipelineConfig()
    if not 0.0 <= dilution <= 1.0:
        raise ValueError("dilution must be in [0, 1]")
    penalty = config.resolve_stage + config.mispredict_penalty
    forks = 0
    covered = 0
    uncovered = 0
    for record in records:
        if not record.committed:
            continue
        try:
            high_confidence = record.assessments[estimator]
        except KeyError:
            raise KeyError(
                f"records carry no assessments for estimator {estimator!r}"
            ) from None
        if not high_confidence:
            forks += 1
            if record.mispredicted:
                covered += 1
        elif record.mispredicted:
            uncovered += 1
    return EagerOutcome(
        estimator=estimator,
        forks=forks,
        covered_mispredictions=covered,
        uncovered_mispredictions=uncovered,
        penalty_per_misprediction=penalty,
        cost_per_fork=dilution * config.resolve_stage,
    )
