"""Speculation-control applications built on confidence estimation."""

from .dualpath import (
    EagerComparison,
    EagerOutOfOrderSimulator,
    EagerPipelineSimulator,
    compare_eager_execution,
)
from .eager import EagerOutcome, evaluate_eager_execution
from .gating import (
    GatedOutOfOrderSimulator,
    GatedPipelineSimulator,
    GatingComparison,
    compare_gating,
    count_low_confidence_inflight,
)
from .inversion import InversionResult, InvertingPredictor, evaluate_inversion
from .smt import POLICIES, SMTResult, SMTSimulator, compare_policies

__all__ = [
    "EagerComparison",
    "EagerOutOfOrderSimulator",
    "EagerPipelineSimulator",
    "compare_eager_execution",
    "EagerOutcome",
    "evaluate_eager_execution",
    "GatedOutOfOrderSimulator",
    "GatedPipelineSimulator",
    "GatingComparison",
    "compare_gating",
    "count_low_confidence_inflight",
    "InversionResult",
    "InvertingPredictor",
    "evaluate_inversion",
    "POLICIES",
    "SMTResult",
    "SMTSimulator",
    "compare_policies",
]
