"""Pipeline gating for power conservation (paper §2.2, reference [11]).

The companion application the authors describe (Manne et al., "Pipeline
Gating: Speculation Control for Energy Reduction"): stop fetching when
the number of *unresolved low-confidence branches* in flight exceeds a
gating threshold.  Wrong-path instructions cost energy but can never
help performance, so a good estimator (high SPEC to catch most
mispredictions, decent PVN to avoid false alarms) trades a tiny
slowdown for a large cut in wasted (squashed) work.

:class:`GatedPipelineSimulator` implements the mechanism on top of the
speculative pipeline; :func:`compare_gating` runs gated vs. ungated
configurations and reports the paper's figures of merit: extra-work
reduction and performance loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..confidence.base import ConfidenceEstimator
from ..isa import Program
from ..pipeline.backends import create_simulator, normalize_backend
from ..pipeline.config import PipelineConfig
from ..pipeline.core import PipelineResult, PipelineSimulator
from ..pipeline.decode import DecodedProgram
from ..pipeline.ooo import OutOfOrderSimulator
from ..predictors.base import BranchPredictor


def count_low_confidence_inflight(simulator: PipelineSimulator, name: str) -> int:
    """Unresolved branches currently tagged low-confidence by ``name``."""
    count = 0
    for entry in simulator._inflight:
        if not entry.is_branch:
            continue
        for estimator_name, __, assessment in entry.assessments:
            if estimator_name == name and not assessment.high_confidence:
                count += 1
                break
    return count


class GatedPipelineSimulator(PipelineSimulator):
    """Pipeline whose front end gates on low-confidence branch count.

    Fetch is suppressed in any cycle where more than ``gate_threshold``
    unresolved low-confidence branches (as judged by the estimator
    named ``gate_on``) are in flight.
    """

    def __init__(
        self,
        program: Program,
        predictor: BranchPredictor,
        config: Optional[PipelineConfig] = None,
        estimators: Optional[Mapping[str, ConfidenceEstimator]] = None,
        gate_on: Optional[str] = None,
        gate_threshold: int = 1,
        decoded: Optional[DecodedProgram] = None,
        fast: Optional[bool] = None,
    ):
        super().__init__(
            program,
            predictor,
            config=config,
            estimators=estimators,
            decoded=decoded,
            fast=fast,
        )
        available = ", ".join(sorted(self.estimators)) or "<none attached>"
        if gate_on is None or gate_on not in self.estimators:
            raise ValueError(
                f"gate_on must name one of the attached estimators "
                f"({available}), got {gate_on!r}"
            )
        if gate_threshold < 1:
            raise ValueError(
                f"gate_threshold must be >= 1 (got {gate_threshold}); it is "
                f"the number of unresolved low-confidence branches, judged "
                f"by estimator {gate_on!r}, that stalls fetch"
            )
        self.gate_on = gate_on
        self.gate_threshold = gate_threshold
        self.gated_cycles = 0

    def _fetch_stage(self) -> None:
        if (
            count_low_confidence_inflight(self, self.gate_on)
            >= self.gate_threshold
        ):
            self.gated_cycles += 1
            return
        super()._fetch_stage()


class GatedOutOfOrderSimulator(GatedPipelineSimulator, OutOfOrderSimulator):
    """Gated front end over the out-of-order backend.

    The gating override (``_fetch_stage``) and the OoO backend hooks
    (``_dispatch``/``_retire_entry``/``_recover_from``) are disjoint,
    so plain cooperative inheritance composes them.
    """


#: Gated simulator class per pipeline backend name.
GATED_SIMULATORS = {
    "inorder": GatedPipelineSimulator,
    "ooo": GatedOutOfOrderSimulator,
}


@dataclass(frozen=True)
class GatingComparison:
    """Gated vs. ungated run of the same program/predictor/estimator."""

    baseline: PipelineResult
    gated: PipelineResult
    gated_cycles: int

    @property
    def baseline_extra_work(self) -> float:
        """Squashed (wasted) fraction of fetched instructions, ungated."""
        stats = self.baseline.stats
        if not stats.fetched_instructions:
            return 0.0
        return stats.squashed_instructions / stats.fetched_instructions

    @property
    def gated_extra_work(self) -> float:
        stats = self.gated.stats
        if not stats.fetched_instructions:
            return 0.0
        return stats.squashed_instructions / stats.fetched_instructions

    @property
    def extra_work_reduction(self) -> float:
        """Relative cut in squashed instructions (the power win)."""
        base = self.baseline.stats.squashed_instructions
        if not base:
            return 0.0
        return 1.0 - self.gated.stats.squashed_instructions / base

    @property
    def slowdown(self) -> float:
        """Relative increase in cycles to complete the same work."""
        base = self.baseline.stats.cycles
        if not base:
            return 0.0
        return self.gated.stats.cycles / base - 1.0


def compare_gating(
    program: Program,
    predictor_factory: Callable[[], BranchPredictor],
    estimator_factory: Callable[[BranchPredictor], ConfidenceEstimator],
    gate_threshold: int = 1,
    config: Optional[PipelineConfig] = None,
    max_instructions: Optional[int] = None,
    decoded: Optional[DecodedProgram] = None,
    backend: Optional[str] = None,
) -> GatingComparison:
    """Run the same workload gated and ungated and compare.

    Factories are used (rather than instances) because the two runs
    need independent predictor/estimator state.  ``decoded`` optionally
    shares one pre-decoded program between both runs.  ``backend``
    selects the pipeline backend for *both* runs (default in-order).
    """
    backend = normalize_backend(backend)
    baseline_predictor = predictor_factory()
    baseline = create_simulator(
        program,
        baseline_predictor,
        backend=backend,
        config=config,
        estimators={"gate": estimator_factory(baseline_predictor)},
        decoded=decoded,
    ).run(max_instructions=max_instructions)

    gated_predictor = predictor_factory()
    gated_simulator = GATED_SIMULATORS[backend](
        program,
        gated_predictor,
        config=config,
        estimators={"gate": estimator_factory(gated_predictor)},
        gate_on="gate",
        gate_threshold=gate_threshold,
        decoded=decoded,
    )
    gated = gated_simulator.run(max_instructions=max_instructions)
    return GatingComparison(
        baseline=baseline, gated=gated, gated_cycles=gated_simulator.gated_cycles
    )
