"""Prediction inversion -- the paper's §2.2 negative result.

Jacobsen et al. suggested a confidence estimator could *improve* a
branch predictor: if PVN > 50%, inverting the prediction of every
low-confidence branch wins on net (and symmetrically for PVP < 50% on
high-confidence branches).  The paper reports: *"We have examined many
confidence estimators in many configurations, but have not found a
situation where these conditions hold across a range of programs."*

This module implements the mechanism so that the negative result can
be measured rather than asserted:

* :class:`InvertingPredictor` wraps a predictor + estimator and flips
  the exported direction of low-confidence predictions.  The wrapped
  predictor trains on actual outcomes exactly as before (the inversion
  is an override stage after prediction, as hardware would do it);
* :func:`evaluate_inversion` measures base vs inverted accuracy and
  the flip ledger, making the PVN-50% break-even explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..confidence.base import ConfidenceEstimator
from ..predictors.base import BranchPredictor, Prediction


class InvertingPredictor(BranchPredictor):
    """Flip low-confidence predictions of an underlying predictor.

    ``predict`` returns a :class:`Prediction` whose ``taken`` field is
    the possibly-inverted direction; the original direction is what the
    underlying predictor pushed into its speculative history and what
    its tables train toward, so the substrate's behaviour is unchanged
    -- only the direction handed to the front end differs.
    """

    def __init__(self, base: BranchPredictor, estimator: ConfidenceEstimator):
        self.base = base
        self.estimator = estimator
        self.counter_bits = base.counter_bits
        self.name = f"invert({base.name})"
        self.flips = 0

    def predict(self, pc: int) -> Prediction:
        inner = self.base.predict(pc)
        assessment = self.estimator.estimate(pc, inner)
        taken = inner.taken
        if not assessment.high_confidence:
            taken = not taken
            self.flips += 1
        prediction = Prediction(
            taken=taken,
            index=inner.index,
            history=inner.history,
            counters=inner.counters,
            snapshot=inner.snapshot,
        )
        # keep what resolve needs: the inner prediction and assessment
        prediction.app_state = (inner, assessment)
        return prediction

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        inner, assessment = prediction.app_state
        self.base.resolve(pc, taken, inner)
        self.estimator.resolve(pc, inner, taken, assessment)

    def reset(self) -> None:
        self.base.reset()
        self.estimator.reset()
        self.flips = 0


@dataclass(frozen=True)
class InversionResult:
    """Ledger of what inverting low-confidence predictions did."""

    branches: int
    base_correct: int
    flips: int
    #: Flips that fixed a would-be misprediction (LC and wrong).
    flips_helped: int
    #: Flips that broke a would-be correct prediction (LC but right).
    flips_hurt: int

    @property
    def base_accuracy(self) -> float:
        return self.base_correct / self.branches if self.branches else 0.0

    @property
    def inverted_accuracy(self) -> float:
        correct = self.base_correct + self.flips_helped - self.flips_hurt
        return correct / self.branches if self.branches else 0.0

    @property
    def accuracy_delta(self) -> float:
        """Positive iff inversion improved the predictor."""
        return self.inverted_accuracy - self.base_accuracy

    @property
    def flip_pvn(self) -> float:
        """PVN of the flipped population -- the break-even is 50%."""
        return self.flips_helped / self.flips if self.flips else 0.0


def evaluate_inversion(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimator: ConfidenceEstimator,
) -> InversionResult:
    """Measure what LC-inversion would do over ``trace``.

    Runs the ordinary predict/estimate/resolve loop (no behavioural
    change to the substrate) and accounts each low-confidence branch as
    a flip that either fixed a misprediction or broke a correct one.
    """
    branches = 0
    base_correct = 0
    flips = 0
    helped = 0
    hurt = 0
    predict = predictor.predict
    resolve = predictor.resolve
    for pc, taken in trace:
        prediction = predict(pc)
        assessment = estimator.estimate(pc, prediction)
        correct = prediction.taken == taken
        branches += 1
        if correct:
            base_correct += 1
        if not assessment.high_confidence:
            flips += 1
            if correct:
                hurt += 1
            else:
                helped += 1
        resolve(pc, taken, prediction)
        estimator.resolve(pc, prediction, taken, assessment)
    return InversionResult(
        branches=branches,
        base_correct=base_correct,
        flips=flips,
        flips_helped=helped,
        flips_hurt=hurt,
    )
