"""SMT fetch-policy control with confidence estimation (paper §2).

The paper's motivating SMT scenario: when the current thread's next
instructions sit behind a low-confidence branch, the fetch slot is
probably being wasted on work that will not commit -- give it to
another thread instead.

:class:`SMTSimulator` time-multiplexes one fetch port across several
independent :class:`~repro.pipeline.core.PipelineSimulator` back ends
(a deliberately simple SMT model: private windows and predictors,
shared fetch bandwidth -- the resource the fetch policy arbitrates).
Policies:

* ``round_robin`` -- rotate the port among ready threads (baseline).
* ``confidence`` -- among ready threads, fetch from the one with the
  fewest unresolved low-confidence branches in flight (ties broken
  round-robin).  With a good estimator this steers fetch slots toward
  work that will commit and raises aggregate IPC; the win grows with
  the branch-resolution depth, since that is how long a wrong path can
  monopolise the port.
* ``adaptive`` -- the §5 "adaptive control of multithreaded processors"
  direction: combine the instantaneous confidence signal with a
  short-horizon decayed average of each thread's *observed* squash
  rate, so threads whose estimator under-reports their wrong-path
  behaviour still get deprioritised during a misprediction burst (a
  long horizon would persistently starve hard threads and hurt the
  makespan instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..confidence.base import ConfidenceEstimator
from ..isa import Program
from ..pipeline.config import PipelineConfig
from ..pipeline.core import PipelineResult, PipelineSimulator
from ..predictors.base import BranchPredictor
from .gating import count_low_confidence_inflight

POLICIES = ("round_robin", "confidence", "adaptive")

#: Estimator slot name used for the fetch policy on every thread.
ESTIMATOR_SLOT = "fetch-policy"


@dataclass
class SMTResult:
    """Aggregate and per-thread outcome of one SMT run."""

    policy: str
    cycles: int
    thread_results: List[PipelineResult]

    @property
    def committed_instructions(self) -> int:
        return sum(
            result.stats.committed_instructions for result in self.thread_results
        )

    @property
    def squashed_instructions(self) -> int:
        return sum(
            result.stats.squashed_instructions for result in self.thread_results
        )

    @property
    def aggregate_ipc(self) -> float:
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def wasted_fetch_fraction(self) -> float:
        fetched = sum(
            result.stats.fetched_instructions for result in self.thread_results
        )
        return self.squashed_instructions / fetched if fetched else 0.0


class SMTSimulator:
    """One shared fetch port over several pipeline back ends."""

    def __init__(
        self,
        programs: Sequence[Program],
        predictor_factory: Callable[[], BranchPredictor],
        estimator_factory: Callable[[BranchPredictor], ConfidenceEstimator],
        policy: str = "round_robin",
        config: PipelineConfig = None,
    ):
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if not programs:
            raise ValueError("need at least one thread program")
        self.policy = policy
        self.threads: List[PipelineSimulator] = []
        for program in programs:
            predictor = predictor_factory()
            self.threads.append(
                PipelineSimulator(
                    program,
                    predictor,
                    config=config,
                    estimators={ESTIMATOR_SLOT: estimator_factory(predictor)},
                )
            )
        self._rotor = 0
        #: Per-thread EWMA of squashed instructions (adaptive policy).
        self._squash_ewma = [0.0] * len(self.threads)
        self._last_squashed = [0] * len(self.threads)

    #: EWMA decay per cycle for the adaptive policy.  Deliberately a
    #: short horizon (~a few branch-resolution windows): the signal
    #: should mean "currently in a misprediction burst", not
    #: "historically slow thread" -- a long horizon persistently
    #: starves hard threads and *hurts* the makespan, since every
    #: thread must still finish.
    EWMA_DECAY = 0.7
    #: Weight of the squash history against one in-flight LC branch.
    EWMA_WEIGHT = 0.1

    def _update_squash_ewma(self) -> None:
        for index, thread in enumerate(self.threads):
            squashed = thread.stats.squashed_instructions
            delta = squashed - self._last_squashed[index]
            self._last_squashed[index] = squashed
            self._squash_ewma[index] = (
                self.EWMA_DECAY * self._squash_ewma[index] + delta
            )

    def _choose_fetch_thread(self) -> int:
        """Index of the thread that gets this cycle's fetch slot (-1: none)."""
        ready = [
            index for index, thread in enumerate(self.threads) if thread.wants_fetch()
        ]
        if not ready:
            return -1
        if self.policy == "round_robin":
            for offset in range(len(self.threads)):
                candidate = (self._rotor + offset) % len(self.threads)
                if candidate in ready:
                    self._rotor = (candidate + 1) % len(self.threads)
                    return candidate
            return -1
        # confidence/adaptive: fewest unresolved low-confidence
        # branches (adaptive adds the squash-history term), ties broken
        # round-robin
        def score(index: int) -> float:
            lc = count_low_confidence_inflight(self.threads[index], ESTIMATOR_SLOT)
            if self.policy == "adaptive":
                return lc + self.EWMA_WEIGHT * self._squash_ewma[index]
            return float(lc)

        scored = [(score(index), index) for index in ready]
        best_score = min(score for score, __ in scored)
        tied = [index for score, index in scored if score == best_score]
        for offset in range(len(self.threads)):
            candidate = (self._rotor + offset) % len(self.threads)
            if candidate in tied:
                self._rotor = (candidate + 1) % len(self.threads)
                return candidate
        return tied[0]

    def run(self, max_cycles: int = 5_000_000) -> SMTResult:
        """Simulate until every thread finishes (or the cycle limit)."""
        cycles = 0
        while cycles < max_cycles and not all(
            thread.done for thread in self.threads
        ):
            if self.policy == "adaptive":
                self._update_squash_ewma()
            chosen = self._choose_fetch_thread()
            for index, thread in enumerate(self.threads):
                if thread.done:
                    continue
                thread.step_cycle(fetch_allowed=index == chosen)
            cycles += 1
        return SMTResult(
            policy=self.policy,
            cycles=cycles,
            thread_results=[thread.result() for thread in self.threads],
        )


def compare_policies(
    programs: Sequence[Program],
    predictor_factory: Callable[[], BranchPredictor],
    estimator_factory: Callable[[BranchPredictor], ConfidenceEstimator],
    config: PipelineConfig = None,
    max_cycles: int = 5_000_000,
) -> dict:
    """Run both fetch policies on the same thread mix."""
    results = {}
    for policy in POLICIES:
        simulator = SMTSimulator(
            programs,
            predictor_factory,
            estimator_factory,
            policy=policy,
            config=config,
        )
        results[policy] = simulator.run(max_cycles=max_cycles)
    return results
