"""Dual-path (eager) execution pipeline (paper §2.2, refs [16, 9, 15, 6, 8]).

A selective dual-path front end on top of the speculative pipeline:
when a branch is tagged **low confidence** (and no fork is already
live), the machine *forks* -- both targets are fetched until the branch
resolves.  Concretely in this model:

* while a fork is live the fetch bandwidth is halved (the alternate
  path consumes the other half -- its instructions are pure overhead
  and are accounted as ``eager_wasted_slots``);
* if the forked branch turns out **mispredicted**, the correct path was
  already being fetched, so there is no squash and no refill: the
  misprediction penalty is replaced by a small ``fork_switch_penalty``
  (default 1 cycle to retire the losing path's resources);
* if it was predicted correctly, the fork bought nothing and the
  dilution was the price of insurance.

One fork may be live at a time (selective eager execution), and forks
are only taken on the architecturally known-good path -- matching the
simple dual-path proposals the paper cites.

Whether this wins is exactly the paper's metric story: every *covered*
misprediction (SPEC) converts a full pipeline flush into one cycle;
every false alarm (1 - PVN) pays the dilution for nothing.  A good
estimator turns eager execution from a loss into a gain;
:func:`compare_eager_execution` measures both ends against the
single-path baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..confidence.base import ConfidenceEstimator
from ..isa import Program
from ..pipeline.backends import create_simulator, normalize_backend
from ..pipeline.config import PipelineConfig
from ..pipeline.core import PipelineResult, PipelineSimulator
from ..pipeline.decode import DecodedProgram
from ..pipeline.ooo import OutOfOrderSimulator
from ..predictors.base import BranchPredictor


class EagerPipelineSimulator(PipelineSimulator):
    """Pipeline with selective dual-path execution on LC branches."""

    def __init__(
        self,
        program: Program,
        predictor: BranchPredictor,
        config: Optional[PipelineConfig] = None,
        estimators: Optional[Mapping[str, ConfidenceEstimator]] = None,
        fork_on: Optional[str] = None,
        fork_switch_penalty: int = 1,
        decoded: Optional[DecodedProgram] = None,
        fast: Optional[bool] = None,
    ):
        super().__init__(
            program,
            predictor,
            config=config,
            estimators=estimators,
            decoded=decoded,
            fast=fast,
        )
        available = ", ".join(sorted(self.estimators)) or "<none attached>"
        if fork_on is None or fork_on not in self.estimators:
            raise ValueError(
                f"fork_on must name one of the attached estimators "
                f"({available}), got {fork_on!r}"
            )
        if fork_switch_penalty < 0:
            raise ValueError("fork_switch_penalty must be non-negative")
        self.fork_on = fork_on
        self.fork_switch_penalty = fork_switch_penalty
        self._active_fork = None  # the in-flight forked branch entry
        #: Branch predictions made since the fork (= how deep the
        #: forked branch's speculative-history bit has shifted).
        self._branches_since_fork = 0
        self.eager_forks = 0
        self.eager_covered = 0  # forks that hid a misprediction
        self.eager_wasted_slots = 0  # fetch slots fed to losing paths

    # ------------------------------------------------------------------
    # fork bookkeeping
    # ------------------------------------------------------------------

    def _entry_low_confidence(self, entry) -> bool:
        for name, __, assessment in entry.assessments:
            if name == self.fork_on:
                return not assessment.high_confidence
        return False

    def _fork_eligible(self, entry) -> bool:
        return (
            self._active_fork is None
            and self._unresolved_mispredictions == 0
            and self._entry_low_confidence(entry)
        )

    def _activate_fork(self, entry) -> None:
        self._active_fork = entry
        self._branches_since_fork = 0
        self.eager_forks += 1

    # ------------------------------------------------------------------
    # pipeline hooks
    # ------------------------------------------------------------------

    def _fetch_width(self) -> int:
        width = self.config.fetch_width
        if self._active_fork is not None:
            # the alternate path consumes the other half of the port
            diluted = max(1, width // 2)
            self.eager_wasted_slots += width - diluted
            return diluted
        return width

    def _front_end_mispredict(self, entry, target) -> None:
        if self._fork_eligible(entry):
            # fork: the alternate context is fetching the *correct*
            # path, which is the one the journaled machine already
            # follows -- so no redirect and no snapshot are needed;
            # the predicted (wrong) path is the one we model as the
            # diluted half of the port
            self._activate_fork(entry)
            # hardware forks the history register per path: the
            # alternate (surviving) context carries the complement
            # direction bit, so flip it for the stream we simulate
            history = getattr(self.predictor, "history", None)
            if history is not None and getattr(
                self.predictor, "speculative_history", False
            ):
                history.set(history.value ^ 1)
            return
        super()._front_end_mispredict(entry, target)

    def _fetch_branch(self, entry, taken, target) -> None:
        already_forked = self._active_fork is not None
        super()._fetch_branch(entry, taken, target)
        if already_forked and entry is not self._active_fork:
            self._branches_since_fork += 1
        elif (
            entry.is_branch
            and not entry.mispredicted
            and self._fork_eligible(entry)
        ):
            # correctly predicted LC branch: fork anyway (hardware
            # cannot know), paying dilution for nothing
            self._activate_fork(entry)

    def _after_mispredicted_resolve(self, entry) -> None:
        if entry is self._active_fork:
            # the alternate (correct) path wins: swap it in for the
            # cost of a switch, not a flush
            self._active_fork = None
            self.eager_covered += 1
            self._fetch_stalled_until = max(
                self._fetch_stalled_until,
                self._cycle + self.fork_switch_penalty,
            )
            return
        super()._after_mispredicted_resolve(entry)

    def _resolve_branch(self, entry) -> None:
        fork = entry is self._active_fork
        if fork and entry.mispredicted:
            # The surviving path's history was already corrected at fork
            # time (per-path history registers), and the younger branches
            # in flight are the surviving path -- so the single-path
            # *repair* inside the predictor's resolve, which rewinds to
            # the fork's snapshot, must be a no-op here: preserve the
            # register across the table-training call.
            history = getattr(self.predictor, "history", None)
            speculative = getattr(self.predictor, "speculative_history", False)
            if history is not None and speculative:
                preserved = history.value
                super()._resolve_branch(entry)  # tables train; repair clobbers
                history.set(preserved)
            else:
                super()._resolve_branch(entry)  # non-speculative: nothing to fix
        else:
            super()._resolve_branch(entry)
        if fork and entry is self._active_fork:
            # correctly predicted fork: the insurance expires unused
            self._active_fork = None


class EagerOutOfOrderSimulator(EagerPipelineSimulator, OutOfOrderSimulator):
    """Selective dual-path front end over the out-of-order backend.

    The eager overrides (fetch width/steering/resolution) and the OoO
    backend hooks (``_dispatch``/``_retire_entry``/``_recover_from``)
    are disjoint, so cooperative inheritance composes them.
    """


#: Eager simulator class per pipeline backend name.
EAGER_SIMULATORS = {
    "inorder": EagerPipelineSimulator,
    "ooo": EagerOutOfOrderSimulator,
}


@dataclass(frozen=True)
class EagerComparison:
    """Single-path baseline vs dual-path run of the same workload."""

    baseline: PipelineResult
    eager: PipelineResult
    forks: int
    covered_mispredictions: int
    wasted_slots: int

    @property
    def speedup(self) -> float:
        """Cycle-count improvement of eager execution (positive = wins)."""
        if not self.eager.stats.cycles:
            return 0.0
        return self.baseline.stats.cycles / self.eager.stats.cycles - 1.0

    @property
    def fork_precision(self) -> float:
        """Fraction of forks that covered a misprediction (the PVN)."""
        return self.covered_mispredictions / self.forks if self.forks else 0.0

    @property
    def coverage(self) -> float:
        """Covered fraction of the baseline's mispredictions (~SPEC)."""
        total = self.eager.stats.committed_mispredictions
        return self.covered_mispredictions / total if total else 0.0


def compare_eager_execution(
    program: Program,
    predictor_factory: Callable[[], BranchPredictor],
    estimator_factory: Callable[[BranchPredictor], ConfidenceEstimator],
    config: Optional[PipelineConfig] = None,
    max_instructions: Optional[int] = None,
    fork_switch_penalty: int = 1,
    decoded: Optional[DecodedProgram] = None,
    backend: Optional[str] = None,
) -> EagerComparison:
    """Run the same workload single-path and dual-path and compare.

    ``decoded`` optionally shares one pre-decoded program between runs.
    ``backend`` selects the pipeline backend for both runs.
    """
    backend = normalize_backend(backend)
    baseline_predictor = predictor_factory()
    baseline = create_simulator(
        program,
        baseline_predictor,
        backend=backend,
        config=config,
        estimators={"fork": estimator_factory(baseline_predictor)},
        decoded=decoded,
    ).run(max_instructions=max_instructions)

    eager_predictor = predictor_factory()
    eager_simulator = EAGER_SIMULATORS[backend](
        program,
        eager_predictor,
        config=config,
        estimators={"fork": estimator_factory(eager_predictor)},
        fork_on="fork",
        fork_switch_penalty=fork_switch_penalty,
        decoded=decoded,
    )
    eager = eager_simulator.run(max_instructions=max_instructions)
    return EagerComparison(
        baseline=baseline,
        eager=eager,
        forks=eager_simulator.eager_forks,
        covered_mispredictions=eager_simulator.eager_covered,
        wasted_slots=eager_simulator.eager_wasted_slots,
    )
