"""Misprediction-distance analysis (paper §4.1, Figures 6-9).

Given the pipeline's per-branch records, build "misprediction rate vs.
distance since the previous misprediction" curves -- the presentation
the paper prefers over Heil & Smith's PDF plot.  If branch outcomes
were independent the curve would be flat at the average misprediction
rate; clustering shows up as elevated rates at small distances.

Two distance definitions (both recorded by the pipeline):

* **precise** -- branches since the last *actually mispredicted* branch
  was fetched.  Only a simulator (or oracle) knows this at fetch time.
* **perceived** -- branches since the last misprediction was *detected*
  (resolved).  This is what real hardware can know, and it is skewed
  toward larger distances by the resolution delay.

Each curve can be computed over **all** fetched branches or only the
**committed** ones (the trace view Heil & Smith used); the committed
precise curve is recomputed from scratch over the committed sub-stream
so that distances are counted in committed branches, exactly as a
trace-based analysis would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..pipeline.records import BranchRecord


@dataclass(frozen=True)
class DistanceBucket:
    """Aggregate at one distance (the last bucket absorbs the tail)."""

    distance: int
    branches: int
    mispredictions: int

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0


@dataclass(frozen=True)
class DistanceCurve:
    """Misprediction rate as a function of misprediction distance."""

    label: str
    buckets: Tuple[DistanceBucket, ...]
    total_branches: int
    total_mispredictions: int

    @property
    def average_rate(self) -> float:
        """The flat line the curve would be without clustering."""
        return (
            self.total_mispredictions / self.total_branches
            if self.total_branches
            else 0.0
        )

    def rate_at(self, distance: int) -> float:
        index = min(distance, len(self.buckets) - 1)
        return self.buckets[index].misprediction_rate

    @property
    def clustering_ratio(self) -> float:
        """rate(distance 0..1) / average rate; > 1 means clustered."""
        near = [bucket for bucket in self.buckets[:2] if bucket.branches]
        if not near or not self.average_rate:
            return 0.0
        branches = sum(bucket.branches for bucket in near)
        misses = sum(bucket.mispredictions for bucket in near)
        return (misses / branches) / self.average_rate if branches else 0.0


def _curve_from_pairs(
    pairs: Iterable[Tuple[int, bool]], label: str, max_distance: int
) -> DistanceCurve:
    branches = [0] * (max_distance + 1)
    misses = [0] * (max_distance + 1)
    total = 0
    total_misses = 0
    for distance, mispredicted in pairs:
        bucket = min(distance, max_distance)
        branches[bucket] += 1
        total += 1
        if mispredicted:
            misses[bucket] += 1
            total_misses += 1
    buckets = tuple(
        DistanceBucket(distance=d, branches=branches[d], mispredictions=misses[d])
        for d in range(max_distance + 1)
    )
    return DistanceCurve(
        label=label,
        buckets=buckets,
        total_branches=total,
        total_mispredictions=total_misses,
    )


def precise_distance_curve(
    records: Sequence[BranchRecord],
    population: str = "all",
    max_distance: int = 15,
) -> DistanceCurve:
    """Figures 6/7: precise distances, over all or committed branches."""
    if population == "all":
        pairs = (
            (record.precise_distance, record.mispredicted) for record in records
        )
        return _curve_from_pairs(pairs, "precise/all", max_distance)
    if population == "committed":
        # recount distances within the committed sub-stream (trace view)
        def committed_pairs():
            distance = 0
            for record in records:
                if not record.committed:
                    continue
                yield distance, record.mispredicted
                distance = 0 if record.mispredicted else distance + 1

        return _curve_from_pairs(committed_pairs(), "precise/committed", max_distance)
    raise ValueError("population must be 'all' or 'committed'")


def perceived_distance_curve(
    records: Sequence[BranchRecord],
    population: str = "all",
    max_distance: int = 15,
) -> DistanceCurve:
    """Figures 8/9: distances from the last *detected* misprediction."""
    if population == "all":
        selected: Iterable[BranchRecord] = records
    elif population == "committed":
        selected = (record for record in records if record.committed)
    else:
        raise ValueError("population must be 'all' or 'committed'")
    pairs = ((record.perceived_distance, record.mispredicted) for record in selected)
    return _curve_from_pairs(pairs, f"perceived/{population}", max_distance)


def distance_pdf(curve: DistanceCurve) -> List[float]:
    """Heil & Smith's presentation: P[distance = d] over mispredictions.

    The probability distribution of the misprediction distance (how
    many branches sit between consecutive mispredictions), computed
    from the same bucket populations as the rate curve: a misprediction
    recorded at distance d is exactly a gap of length d.
    """
    total = curve.total_mispredictions
    if not total:
        return [0.0] * len(curve.buckets)
    return [bucket.mispredictions / total for bucket in curve.buckets]


def geometric_reference_pdf(curve: DistanceCurve) -> List[float]:
    """The PDF a *non-clustered* branch stream would show.

    If branch outcomes were independent Bernoulli trials with the
    curve's average misprediction rate p, the misprediction distance
    would be geometric: P[d] = (1-p)^d * p (the paper's §4.1 remark).
    The final bucket absorbs the tail mass so the reference sums to 1
    over the same support as :func:`distance_pdf`.
    """
    p = curve.average_rate
    depth = len(curve.buckets)
    if not 0.0 < p <= 1.0 or depth == 0:
        return [0.0] * depth
    pdf = [((1.0 - p) ** d) * p for d in range(depth - 1)]
    pdf.append(1.0 - sum(pdf))  # tail bucket
    return pdf


def clustering_divergence(curve: DistanceCurve) -> float:
    """Total-variation distance between the measured distance PDF and
    the geometric (independence) reference -- 0 means no clustering."""
    measured = distance_pdf(curve)
    reference = geometric_reference_pdf(curve)
    return 0.5 * sum(abs(m - r) for m, r in zip(measured, reference))


def render_curves(curves: Sequence[DistanceCurve], width: int = 8) -> str:
    """Text rendering of several curves side by side (harness output)."""
    if not curves:
        return ""
    lines: List[str] = []
    header = "dist".ljust(6) + "".join(
        curve.label.rjust(width + 12) for curve in curves
    )
    lines.append(header)
    depth = max(len(curve.buckets) for curve in curves)
    for distance in range(depth):
        cells = []
        for curve in curves:
            if distance < len(curve.buckets):
                bucket = curve.buckets[distance]
                cells.append(
                    f"{bucket.misprediction_rate:7.2%} (n={bucket.branches:6d})"
                )
            else:
                cells.append("".rjust(width + 12))
        tag = f">={distance}" if distance == depth - 1 else f"{distance}"
        lines.append(tag.ljust(6) + "".join(cell.rjust(width + 12) for cell in cells))
    lines.append(
        "avg".ljust(6)
        + "".join(f"{curve.average_rate:7.2%}".rjust(width + 12) for curve in curves)
    )
    return "\n".join(lines)
