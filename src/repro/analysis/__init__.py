"""Temporal analyses: distance curves, clustering, design-space sweeps."""

from .clustering import (
    BoostingObserver,
    MisestimationDistanceObserver,
    measure_boosting,
    misestimation_distance,
)
from .distance import (
    DistanceBucket,
    DistanceCurve,
    clustering_divergence,
    distance_pdf,
    geometric_reference_pdf,
    perceived_distance_curve,
    precise_distance_curve,
    render_curves,
)
from .sweeps import (
    SweepLine,
    SweepPoint,
    ValueHistogram,
    average_sweep_lines,
    distance_value_histogram,
    jrs_value_histogram,
    render_sweep,
)

__all__ = [
    "BoostingObserver",
    "MisestimationDistanceObserver",
    "measure_boosting",
    "misestimation_distance",
    "DistanceBucket",
    "DistanceCurve",
    "clustering_divergence",
    "distance_pdf",
    "geometric_reference_pdf",
    "perceived_distance_curve",
    "precise_distance_curve",
    "render_curves",
    "SweepLine",
    "SweepPoint",
    "ValueHistogram",
    "average_sweep_lines",
    "distance_value_histogram",
    "jrs_value_histogram",
    "render_sweep",
]
