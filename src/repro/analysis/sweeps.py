"""Design-space sweeps for threshold-based estimators (Figures 3-5,
Table 4).

Both the JRS estimator and the misprediction-distance estimator
classify a branch by comparing a counter value against a threshold,
and *the counter's update is threshold-independent*.  One simulation
pass can therefore serve every threshold at once: record, per branch,
the counter value consulted and whether the prediction was correct;
any threshold's quadrant table is then a partial sum over that
(value, correctness) histogram.  This turns the paper's
thresholds x table-sizes design-space plots from dozens of slow
simulations into one pass per table size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..engine import distance_value_counts, jrs_value_counts
from ..metrics.quadrant import QuadrantCounts
from ..predictors.base import BranchPredictor
from ..predictors.counters import CounterTable


@dataclass(frozen=True)
class SweepPoint:
    """One (threshold, quadrant) point of a sweep line."""

    threshold: int
    quadrant: QuadrantCounts


@dataclass(frozen=True)
class SweepLine:
    """One line of a design-space figure (e.g. one MDC table size)."""

    label: str
    points: Tuple[SweepPoint, ...]

    def point(self, threshold: int) -> SweepPoint:
        for point in self.points:
            if point.threshold == threshold:
                return point
        raise KeyError(f"no threshold {threshold} in sweep {self.label!r}")


class ValueHistogram:
    """(counter value, prediction correct) counts for one configuration.

    ``quadrant(threshold)`` classifies value >= threshold as high
    confidence, exactly as the threshold estimators do.
    """

    def __init__(self, max_value: int):
        self.max_value = max_value
        self.correct = [0] * (max_value + 1)
        self.incorrect = [0] * (max_value + 1)

    def record(self, value: int, prediction_correct: bool) -> None:
        value = min(value, self.max_value)
        if prediction_correct:
            self.correct[value] += 1
        else:
            self.incorrect[value] += 1

    def quadrant(self, threshold: int) -> QuadrantCounts:
        c_hc = sum(self.correct[threshold:]) if threshold <= self.max_value else 0
        i_hc = sum(self.incorrect[threshold:]) if threshold <= self.max_value else 0
        return QuadrantCounts(
            c_hc=c_hc,
            i_hc=i_hc,
            c_lc=sum(self.correct) - c_hc,
            i_lc=sum(self.incorrect) - i_hc,
        )

    def sweep(self, thresholds: Sequence[int], label: str) -> SweepLine:
        return SweepLine(
            label=label,
            points=tuple(
                SweepPoint(threshold=t, quadrant=self.quadrant(t))
                for t in thresholds
            ),
        )


def jrs_value_histogram(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    table_size: int = 4096,
    counter_bits: int = 4,
    enhanced: bool = True,
) -> ValueHistogram:
    """One pass of the JRS MDC machinery recording consulted values.

    Mirrors :class:`~repro.confidence.jrs.JRSEstimator` (including the
    enhanced prediction-bit index) but defers thresholding to the
    histogram.
    """
    counts = jrs_value_counts(trace, predictor, table_size, counter_bits, enhanced)
    if counts is not None:
        histogram = ValueHistogram(max_value=(1 << counter_bits) - 1)
        histogram.correct, histogram.incorrect = counts
        return histogram
    table = CounterTable(table_size, bits=counter_bits, initial=0)
    histogram = ValueHistogram(max_value=table.max_value)
    values = table.values
    index_mask = table.index_mask
    max_value = table.max_value
    predict = predictor.predict
    resolve = predictor.resolve
    for pc, taken in trace:
        prediction = predict(pc)
        history = prediction.history
        if enhanced:
            history = (history << 1) | (1 if prediction.taken else 0)
        index = (pc ^ history) & index_mask
        value = values[index]
        correct = prediction.taken == taken
        histogram.record(value, correct)
        resolve(pc, taken, prediction)
        if correct:
            if value < max_value:
                values[index] = value + 1
        else:
            values[index] = 0
    return histogram


def distance_value_histogram(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    max_distance: int = 64,
) -> ValueHistogram:
    """One pass of the misprediction-distance counter (Table 4 sweeps).

    ``quadrant(t)`` of the result corresponds to the paper's
    "Distance > t-1" rows (high confidence iff distance >= t).
    """
    counts = distance_value_counts(trace, predictor, max_distance)
    if counts is not None:
        histogram = ValueHistogram(max_value=max_distance)
        histogram.correct, histogram.incorrect = counts
        return histogram
    histogram = ValueHistogram(max_value=max_distance)
    distance = 0
    predict = predictor.predict
    resolve = predictor.resolve
    for pc, taken in trace:
        correct_prediction = None
        prediction = predict(pc)
        correct_prediction = prediction.taken == taken
        histogram.record(distance, correct_prediction)
        distance += 1
        resolve(pc, taken, prediction)
        if not correct_prediction:
            distance = 0
    return histogram


def average_sweep_lines(lines: Sequence[SweepLine], label: str) -> SweepLine:
    """Average the same sweep measured on several benchmarks
    (paper-style: mean of normalised quadrants, then ratios)."""
    if not lines:
        raise ValueError("no sweep lines to average")
    thresholds = [point.threshold for point in lines[0].points]
    for line in lines:
        if [point.threshold for point in line.points] != thresholds:
            raise ValueError("sweep lines have mismatched thresholds")
    from ..metrics.aggregate import average_quadrants

    points = []
    for position, threshold in enumerate(thresholds):
        quadrant = average_quadrants(
            [line.points[position].quadrant for line in lines]
        )
        points.append(SweepPoint(threshold=threshold, quadrant=quadrant))
    return SweepLine(label=label, points=tuple(points))


def render_sweep(lines: Sequence[SweepLine]) -> str:
    """Text rendering of sweep lines (PVP/PVN per threshold)."""
    rendered: List[str] = []
    for line in lines:
        rendered.append(f"[{line.label}]")
        rendered.append(
            f"{'thr':>4s} {'sens':>7s} {'spec':>7s} {'pvp':>7s} {'pvn':>7s}"
        )
        for point in line.points:
            quadrant = point.quadrant
            rendered.append(
                f"{point.threshold:4d} {quadrant.sens:7.1%} {quadrant.spec:7.1%} "
                f"{quadrant.pvp:7.1%} {quadrant.pvn:7.1%}"
            )
    return "\n".join(rendered)
