"""Clustering analyses of estimator behaviour (paper §4.1-4.2).

Two measurements back the paper's boosting argument:

* :func:`misestimation_distance` -- are confidence *mis-estimations*
  clustered the way branch mispredictions are?  The paper finds only
  slight clustering (45% mis-estimation rate right after a
  mis-estimation, decaying to ~33% past distance 8), which is what
  licenses treating consecutive estimates as near-Bernoulli trials.
* :func:`measure_boosting` -- the empirical PVN of "k consecutive
  low-confidence estimates" events versus the Bernoulli prediction
  ``1 - (1 - PVN)^k``.

Both are built on small observer classes that track *one* estimator by
name in the flag mapping :func:`repro.engine.measure.measure` hands
every observer.  Earlier versions unpacked ``flags.values()`` and
assumed exactly one estimator was attached, which crashed any
measurement carrying zero or several estimators -- exactly what the
speculation-control sweeps do.  The observers skip branches measured
without their estimator attached, so they compose with arbitrary
multi-estimator measurements.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Tuple

from ..confidence.base import ConfidenceEstimator
from ..confidence.boosting import BoostingAccumulator, BoostingResult
from ..engine import boosting_counts, misestimation_pairs, record_simulation
from ..engine.measure import measure
from ..predictors.base import BranchPredictor
from .distance import DistanceCurve, _curve_from_pairs

#: Estimator slot the single-estimator convenience wrappers use.
DEFAULT_SLOT = "est"


class MisestimationDistanceObserver:
    """Collect (distance, misestimated) pairs for one named estimator.

    A branch is *mis-estimated* when the confidence estimate disagrees
    with the eventual outcome (HC but mispredicted, or LC but correct).
    Branches whose flag mapping does not carry ``estimator_name`` (the
    estimator was not attached to that measurement) are ignored.
    """

    def __init__(self, estimator_name: str = DEFAULT_SLOT):
        self.estimator_name = estimator_name
        self.pairs: List[Tuple[int, bool]] = []
        self._distance = 0

    def __call__(
        self, pc: int, predicted: bool, actual: bool, flags: Dict[str, bool]
    ) -> None:
        high = flags.get(self.estimator_name)
        if high is None:
            return
        correct_prediction = predicted == actual
        misestimated = high != correct_prediction
        self.pairs.append((self._distance, misestimated))
        self._distance = 0 if misestimated else self._distance + 1


class BoostingObserver:
    """Feed one named estimator's stream into a :class:`BoostingAccumulator`.

    Like :class:`MisestimationDistanceObserver`, branches measured
    without the named estimator attached are skipped.
    """

    def __init__(
        self,
        accumulator: BoostingAccumulator,
        estimator_name: str = DEFAULT_SLOT,
    ):
        self.accumulator = accumulator
        self.estimator_name = estimator_name

    def __call__(
        self, pc: int, predicted: bool, actual: bool, flags: Dict[str, bool]
    ) -> None:
        high = flags.get(self.estimator_name)
        if high is None:
            return
        self.accumulator.observe(
            low_confidence=not high, mispredicted=predicted != actual
        )


def misestimation_distance(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimator: ConfidenceEstimator,
    max_distance: int = 12,
) -> DistanceCurve:
    """Mis-estimation rate vs. distance since the last mis-estimation.

    The flatter this curve, the better the Bernoulli approximation
    behind boosting.
    """
    started = time.perf_counter()
    pairs = misestimation_pairs(trace, predictor, estimator)
    if pairs is not None:
        record_simulation(len(pairs), time.perf_counter() - started)
        return _curve_from_pairs(pairs, "mis-estimation", max_distance)
    observer = MisestimationDistanceObserver(DEFAULT_SLOT)
    measure(trace, predictor, {DEFAULT_SLOT: estimator}, observers=[observer])
    return _curve_from_pairs(observer.pairs, "mis-estimation", max_distance)


def measure_boosting(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimator: ConfidenceEstimator,
    ks: List[int] = (1, 2, 3),
) -> List[BoostingResult]:
    """Empirical boosted PVN of ``estimator`` for each window size."""
    started = time.perf_counter()
    counted = boosting_counts(trace, predictor, estimator, list(ks))
    if counted is not None:
        rows, lc_branches, lc_mispredictions, branches = counted
        record_simulation(branches, time.perf_counter() - started)
        base_pvn = lc_mispredictions / lc_branches if lc_branches else 0.0
        return [
            BoostingResult(
                k=k,
                base_pvn=base_pvn,
                events=events,
                events_with_misprediction=hits,
            )
            for k, events, hits in rows
        ]
    accumulator = BoostingAccumulator(list(ks))
    observer = BoostingObserver(accumulator, DEFAULT_SLOT)
    measure(trace, predictor, {DEFAULT_SLOT: estimator}, observers=[observer])
    return accumulator.results()
