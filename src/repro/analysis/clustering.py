"""Clustering analyses of estimator behaviour (paper §4.1-4.2).

Two measurements back the paper's boosting argument:

* :func:`misestimation_distance` -- are confidence *mis-estimations*
  clustered the way branch mispredictions are?  The paper finds only
  slight clustering (45% mis-estimation rate right after a
  mis-estimation, decaying to ~33% past distance 8), which is what
  licenses treating consecutive estimates as near-Bernoulli trials.
* :func:`measure_boosting` -- the empirical PVN of "k consecutive
  low-confidence estimates" events versus the Bernoulli prediction
  ``1 - (1 - PVN)^k``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..confidence.base import ConfidenceEstimator
from ..confidence.boosting import BoostingAccumulator, BoostingResult
from ..engine.measure import measure
from ..predictors.base import BranchPredictor
from .distance import DistanceCurve, _curve_from_pairs


def misestimation_distance(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimator: ConfidenceEstimator,
    max_distance: int = 12,
) -> DistanceCurve:
    """Mis-estimation rate vs. distance since the last mis-estimation.

    A branch is *mis-estimated* when the confidence estimate disagrees
    with the eventual outcome (HC but mispredicted, or LC but correct).
    The flatter this curve, the better the Bernoulli approximation
    behind boosting.
    """
    pairs: List[Tuple[int, bool]] = []
    state = {"distance": 0}

    def observer(pc: int, predicted: bool, actual: bool, flags) -> None:
        (high,) = flags.values()
        correct_prediction = predicted == actual
        misestimated = high != correct_prediction
        pairs.append((state["distance"], misestimated))
        state["distance"] = 0 if misestimated else state["distance"] + 1

    measure(trace, predictor, {"est": estimator}, observers=[observer])
    return _curve_from_pairs(pairs, "mis-estimation", max_distance)


def measure_boosting(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimator: ConfidenceEstimator,
    ks: List[int] = (1, 2, 3),
) -> List[BoostingResult]:
    """Empirical boosted PVN of ``estimator`` for each window size."""
    accumulator = BoostingAccumulator(list(ks))

    def observer(pc: int, predicted: bool, actual: bool, flags) -> None:
        (high,) = flags.values()
        accumulator.observe(
            low_confidence=not high, mispredicted=predicted != actual
        )

    measure(trace, predictor, {"est": estimator}, observers=[observer])
    return accumulator.results()
