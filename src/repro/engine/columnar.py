"""Columnar branch-trace representation (the vector engine's substrate).

A :class:`~repro.workloads.trace.BranchTrace` stores one python object
pair per dynamic branch; replaying it through the measurement engine
costs a python-level loop iteration per branch.  This module lowers a
trace once into packed numpy columns -- pc / taken / branch target /
site index -- so the vectorized kernels in :mod:`repro.engine.vector`
can process whole workloads as array scans.

The lowering is cached as a first-class artifact kind
(``trace-columnar``) in :mod:`repro.engine.cache`, keyed exactly like
the ``trace`` artifact it derives from, so the DAG scheduler warms it
once per workload and every consumer (estimator bank, sweeps,
clustering, static profiling) shares the same arrays.

A :class:`ColumnarTrace` additionally carries two in-process memo
dictionaries (predictor passes and estimator flag columns, managed by
:mod:`repro.engine.vector`).  They are deliberately excluded from
pickling: a cache-loaded instance starts with empty memos.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Optional, Tuple

try:  # numpy is a core dependency, but degrade loudly, not at import
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Slots that survive pickling (the two trailing memo dicts do not).
_STATE_SLOTS = ("name", "pcs", "taken", "targets", "sites", "site_index")


class ColumnarTrace:
    """One workload's branch stream as packed numpy columns.

    Attributes
    ----------
    pcs:
        ``int64[n]`` instruction index of each dynamic branch.
    taken:
        ``bool[n]`` actual direction of each dynamic branch.
    targets:
        ``int64[len(sites)]`` taken-target instruction index per static
        site (``-1`` when unknown -- e.g. the lowering had no program).
    sites:
        ``int64[s]`` sorted distinct static branch sites.
    site_index:
        ``int64[n]`` index into ``sites`` per dynamic branch.
    """

    __slots__ = _STATE_SLOTS + ("_predict_memo", "_flag_memo")

    def __init__(self, name, pcs, taken, targets, sites, site_index):
        self.name = name
        self.pcs = pcs
        self.taken = taken
        self.targets = targets
        self.sites = sites
        self.site_index = site_index
        self._predict_memo = {}
        self._flag_memo = {}

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    def __iter__(self) -> Iterator[Tuple[int, bool]]:
        """Iterate as ``(pc, taken)`` pairs (scalar-engine compatible)."""
        return zip(self.pcs.tolist(), self.taken.tolist())

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in _STATE_SLOTS}

    def __setstate__(self, state) -> None:
        for slot in _STATE_SLOTS:
            setattr(self, slot, state[slot])
        self._predict_memo = {}
        self._flag_memo = {}


def lower_trace(trace, program=None, name: Optional[str] = None) -> ColumnarTrace:
    """Lower a :class:`BranchTrace` into a :class:`ColumnarTrace`.

    ``program`` (the traced :class:`~repro.isa.Program`) supplies the
    per-site taken targets; without it targets are ``-1``.  The input
    trace is copied -- mutating it afterwards cannot corrupt the
    columns.
    """
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError("numpy is required to lower traces to columns")
    pcs = np.asarray(trace.pcs, dtype=np.int64)
    taken = np.frombuffer(bytes(trace.outcomes), dtype=np.uint8).astype(bool)
    if pcs.shape[0] != taken.shape[0]:
        raise ValueError("trace pcs and outcomes length mismatch")
    sites, site_index = np.unique(pcs, return_inverse=True)
    targets = np.full(sites.shape[0], -1, dtype=np.int64)
    if program is not None:
        from ..isa import OpCategory

        instructions = program.instructions
        for position, pc in enumerate(sites.tolist()):
            if 0 <= pc < len(instructions):
                instruction = instructions[pc]
                if instruction.opcode.category is OpCategory.BRANCH:
                    targets[position] = instruction.imm
    return ColumnarTrace(
        name=name or getattr(trace, "name", "trace"),
        pcs=pcs,
        taken=taken,
        targets=targets,
        sites=sites,
        site_index=site_index.astype(np.int64),
    )


@lru_cache(maxsize=64)
def columnar_run(name: str, iterations: Optional[int] = None) -> ColumnarTrace:
    """The columnar form of workload ``name``'s committed branch stream.

    Memoised in process (so all consumers share one instance and its
    kernel memos) and persisted in the artifact cache as kind
    ``trace-columnar``, keyed like the ``trace`` artifact it lowers.
    """
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError("numpy is required for columnar traces")
    # imported here: corpus -> measure -> vector -> columnar at package
    # init time, so a module-level import would be circular
    from .cache import get_cache
    from .corpus import profile_fingerprint, workload_program, workload_run

    def compute() -> ColumnarTrace:
        run = workload_run(name, iterations)
        return lower_trace(
            run.trace,
            program=workload_program(name, iterations),
            name=name,
        )

    return get_cache().cached(
        "trace-columnar",
        compute,
        workload=name,
        iterations=iterations,
        profile=profile_fingerprint(name),
    )


def clear_columnar_cache() -> None:
    """Drop memoised columnar traces (and their kernel memos)."""
    columnar_run.cache_clear()
