"""Fast functional tracer: program -> committed branch stream.

The trace-driven experiments (Tables 2-4, Figures 3-5) only need the
committed conditional-branch stream, which is independent of any
predictor.  :func:`trace_branches` produces it with a specialised
interpreter loop that works directly on register/memory state instead
of going through :meth:`repro.isa.machine.Machine.step`; it is several
times faster, which matters because the experiment harness replays
every workload under many predictor/estimator configurations.

Equivalence with the golden :class:`~repro.isa.Machine` semantics is
enforced by an integration test over every workload profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa import Program
from ..isa.instructions import (
    LINK_REG,
    WORD_MASK,
    OpCategory,
    Opcode,
    branch_taken,
    evaluate_alu,
)
from ..isa.machine import MachineFault
from ..workloads.trace import BranchTrace


@dataclass(frozen=True)
class TraceRunStats:
    """Execution statistics of one tracer run."""

    instructions: int
    branches: int
    taken_branches: int
    halted: bool

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0


def trace_branches(
    program: Program,
    max_steps: int = 50_000_000,
    max_branches: Optional[int] = None,
) -> "TracedRun":
    """Execute ``program`` to completion; record its branch stream."""
    instructions = program.instructions
    code_length = len(instructions)
    regs = [0] * 32
    memory: Dict[int, int] = dict(program.data)
    pc = program.entry

    trace = BranchTrace.empty(program.name)
    push_pc = trace.pcs.append
    push_outcome = trace.outcomes.append

    alu_rrr = OpCategory.ALU_RRR
    alu_rri = OpCategory.ALU_RRI
    lui = OpCategory.LUI
    load = OpCategory.LOAD
    store = OpCategory.STORE
    branch = OpCategory.BRANCH
    jump = OpCategory.JUMP
    jump_register = OpCategory.JUMP_REGISTER
    jal = Opcode.JAL
    halt = Opcode.HALT

    steps = 0
    branches = 0
    taken_branches = 0
    halted = False
    while steps < max_steps:
        if pc < 0 or pc >= code_length:
            raise MachineFault(f"fetch outside program at pc={pc}")
        inst = instructions[pc]
        opcode = inst.opcode
        category = opcode.category
        steps += 1
        if category is alu_rri:
            if inst.rd:
                regs[inst.rd] = evaluate_alu(
                    opcode, regs[inst.rs1], inst.imm & WORD_MASK
                )
            pc += 1
        elif category is branch:
            taken = branch_taken(opcode, regs[inst.rs1], regs[inst.rs2])
            push_pc(pc)
            push_outcome(1 if taken else 0)
            branches += 1
            if taken:
                taken_branches += 1
                pc = inst.imm
            else:
                pc += 1
            if max_branches is not None and branches >= max_branches:
                break
        elif category is alu_rrr:
            if inst.rd:
                regs[inst.rd] = evaluate_alu(opcode, regs[inst.rs1], regs[inst.rs2])
            pc += 1
        elif category is load:
            if inst.rd:
                regs[inst.rd] = memory.get((regs[inst.rs1] + inst.imm) & WORD_MASK, 0)
            pc += 1
        elif category is store:
            memory[(regs[inst.rs1] + inst.imm) & WORD_MASK] = regs[inst.rs2]
            pc += 1
        elif category is jump:
            if opcode is jal:
                regs[LINK_REG] = pc + 1
            pc = inst.imm
        elif category is jump_register:
            pc = regs[inst.rs1]
        elif category is lui:
            if inst.rd:
                regs[inst.rd] = (inst.imm << 16) & WORD_MASK
            pc += 1
        else:  # SYSTEM
            if opcode is halt:
                halted = True
                break
            pc += 1

    stats = TraceRunStats(
        instructions=steps,
        branches=branches,
        taken_branches=taken_branches,
        halted=halted,
    )
    return TracedRun(trace=trace, stats=stats)


@dataclass(frozen=True)
class TracedRun:
    """A branch trace together with its run statistics."""

    trace: BranchTrace
    stats: TraceRunStats
