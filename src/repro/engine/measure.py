"""Trace-driven measurement: predictor + estimators -> quadrant tables.

Replays a committed branch stream through one branch predictor while
any number of confidence estimators assess each prediction, exactly the
measurement the paper describes in §2: *"we can measure C_HC, I_HC,
C_LC and I_LC using a branch predictor for each branch and concurrently
estimate the confidence"*.

Running all estimators of an experiment in one pass keeps every
estimator's view identical (same predictor state stream) and amortises
the predictor simulation, which dominates the cost.

Two engines produce bit-identical results: the scalar per-branch loop
(:func:`measure`) and the vectorized columnar path
(:func:`measure_bank_vectorized`, built on
:mod:`repro.engine.vector`).  :func:`measure_bank` dispatches between
them automatically -- columnar traces take the vector path when every
piece has a kernel, and anything unsupported falls back to the scalar
loop, wholesale or per estimator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Sequence, Tuple

from ..confidence.base import ConfidenceEstimator
from ..metrics.quadrant import QuadrantCounts
from ..obs.registry import REGISTRY
from ..predictors.base import BranchPredictor
from .columnar import ColumnarTrace
from .vector import (
    UnsupportedVectorization,
    estimator_flags,
    fallback_flags,
    predict_columns,
    supports_estimator,
    supports_predictor,
    vector_enabled,
)

try:  # pragma: no cover - numpy presence is environment-dependent
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Registry metric names every *measurement replay* reports into.
#: ``sim.branches`` counts branches actually re-measured this process
#: (cache hits replay nothing and so count nothing).
BRANCHES_METRIC = "sim.branches"
REPLAY_TIMER = "sim.replay"

#: Workload trace *generation* is not replay: it is accounted
#: separately so branches/s reflects measurement throughput only.
TRACE_BRANCHES_METRIC = "sim.trace_branches"
TRACE_TIMER = "sim.tracegen"

#: How many branch measurements each engine served: branches processed
#: by vector kernels vs. branches that fell back to the scalar loop
#: inside an otherwise-vectorized bank.
VECTOR_BRANCHES_METRIC = "sim.vector_branches"
SCALAR_FALLBACK_METRIC = "sim.scalar_fallback_branches"

#: Cycle-level pipeline simulation is accounted apart from trace
#: replay: ``sim.pipeline_branches`` counts branches *fetched* by the
#: pipeline (wrong path included -- that is the work the simulator
#: does), and ``sim.pipeline`` accumulates simulator wall time.  The
#: ``repro bench`` pipeline section derives branches/s from these.
PIPELINE_BRANCHES_METRIC = "sim.pipeline_branches"
PIPELINE_TIMER = "sim.pipeline"

#: Estimator-bank session metrics: how many one-pass bank measurements
#: ran, and how many single-purpose passes they subsumed beyond the one
#: actually executed (the battery's simulation savings).
BANK_PASSES_METRIC = "session.bank_passes"
PASSES_SAVED_METRIC = "session.passes_saved"


def record_simulation(branches: int, seconds: float) -> None:
    """Count one measurement replay's work into the process registry."""
    REGISTRY.count(BRANCHES_METRIC, branches)
    REGISTRY.observe_seconds(REPLAY_TIMER, seconds)


def record_trace_generation(branches: int, seconds: float) -> None:
    """Count one workload trace *generation* into the process registry.

    Kept separate from :func:`record_simulation` so replay throughput
    (``sim.branches`` / ``sim.replay``) is never inflated by the
    one-time cost of producing the trace being replayed.
    """
    REGISTRY.count(TRACE_BRANCHES_METRIC, branches)
    REGISTRY.observe_seconds(TRACE_TIMER, seconds)


def record_pipeline_simulation(branches: int, seconds: float) -> None:
    """Count one cycle-level pipeline run into the process registry."""
    REGISTRY.count(PIPELINE_BRANCHES_METRIC, branches)
    REGISTRY.observe_seconds(PIPELINE_TIMER, seconds)


#: Observer signature: (pc, predicted_taken, actual_taken,
#: {estimator name: high_confidence}).  Called once per branch, after
#: estimation but before any resolve -- prediction-time information only.
Observer = Callable[[int, bool, bool, Dict[str, bool]], None]


@dataclass
class MeasurementResult:
    """Quadrant tables and predictor statistics for one measured run."""

    predictor_name: str
    branches: int
    mispredictions: int
    quadrants: Dict[str, QuadrantCounts] = field(default_factory=dict)
    #: Wall time the measurement loop took, for throughput reporting.
    elapsed_s: float = 0.0

    @property
    def accuracy(self) -> float:
        return (
            (self.branches - self.mispredictions) / self.branches
            if self.branches
            else 0.0
        )

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def branches_per_second(self) -> float:
        return self.branches / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def quadrant(self, estimator_name: str) -> QuadrantCounts:
        return self.quadrants[estimator_name]


def measure(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimators: Mapping[str, ConfidenceEstimator],
    observers: Sequence[Observer] = (),
) -> MeasurementResult:
    """Measure every estimator in ``estimators`` over ``trace``.

    The predictor and estimators are consumed (their state evolves);
    pass fresh instances for independent measurements.
    """
    quadrants = {name: QuadrantCounts() for name in estimators}
    estimator_items = list(estimators.items())
    predict = predictor.predict
    predictor_resolve = predictor.resolve
    branches = 0
    mispredictions = 0
    started = time.perf_counter()

    for pc, taken in trace:
        prediction = predict(pc)
        assessments = [
            (name, estimator, estimator.estimate(pc, prediction))
            for name, estimator in estimator_items
        ]
        if observers:
            flags = {
                name: assessment.high_confidence
                for name, __, assessment in assessments
            }
            for observer in observers:
                observer(pc, prediction.taken, taken, flags)
        correct = prediction.taken == taken
        branches += 1
        if not correct:
            mispredictions += 1
        predictor_resolve(pc, taken, prediction)
        for name, estimator, assessment in assessments:
            estimator.resolve(pc, prediction, taken, assessment)
            quadrants[name].record(correct, assessment.high_confidence)

    elapsed = time.perf_counter() - started
    record_simulation(branches=branches, seconds=elapsed)
    return MeasurementResult(
        predictor_name=predictor.name,
        branches=branches,
        mispredictions=mispredictions,
        quadrants=quadrants,
        elapsed_s=elapsed,
    )


def measure_accuracy(
    trace: Iterable[Tuple[int, bool]], predictor: BranchPredictor
) -> MeasurementResult:
    """Predictor-only measurement (no estimators attached)."""
    return measure(trace, predictor, {})


def measure_bank_vectorized(
    trace: ColumnarTrace,
    predictor: BranchPredictor,
    estimators: Mapping[str, ConfidenceEstimator],
    subsumes: int = 1,
    observers: Sequence[Observer] = (),
) -> MeasurementResult:
    """One-pass estimator bank over a columnar trace via array kernels.

    Bit-identical to :func:`measure_bank` over the same branch stream:
    identical :class:`QuadrantCounts` (including float representation),
    misprediction counts, and observer callbacks in trace order.
    Raises :class:`UnsupportedVectorization` -- before consuming any
    state -- when the predictor has no vector scan; estimators without
    a kernel are driven per branch via :func:`fallback_flags` and
    accounted under ``sim.scalar_fallback_branches``.
    """
    if not vector_enabled() or not isinstance(trace, ColumnarTrace):
        raise UnsupportedVectorization("vector engine disabled")
    if not supports_predictor(predictor):
        raise UnsupportedVectorization(type(predictor).__name__)
    started = time.perf_counter()
    columns = predict_columns(trace, predictor)
    branch_count = columns.branches
    vector_branches = branch_count
    fallback_branches = 0
    flag_columns: Dict[str, object] = {}
    for name, estimator in estimators.items():
        if supports_estimator(estimator):
            flag_columns[name] = estimator_flags(columns, estimator)
            vector_branches += branch_count
        else:
            flag_columns[name] = fallback_flags(columns, estimator)
            fallback_branches += branch_count
    if observers:
        names = list(estimators)
        flag_lists = [flag_columns[name].tolist() for name in names]
        pcs = columns.pcs.tolist()
        predicted = columns.pred.tolist()
        actual = columns.taken.tolist()
        for i in range(branch_count):
            flags = {name: flag_lists[j][i] for j, name in enumerate(names)}
            for observer in observers:
                observer(pcs[i], predicted[i], actual[i], flags)
    correct = columns.correct
    quadrants = {}
    for name in estimators:
        high = flag_columns[name]
        quadrants[name] = QuadrantCounts(
            c_hc=float(np.count_nonzero(correct & high)),
            i_hc=float(np.count_nonzero(~correct & high)),
            c_lc=float(np.count_nonzero(correct & ~high)),
            i_lc=float(np.count_nonzero(~correct & ~high)),
        )
    elapsed = time.perf_counter() - started
    record_simulation(branches=branch_count, seconds=elapsed)
    REGISTRY.count(VECTOR_BRANCHES_METRIC, vector_branches)
    if fallback_branches:
        REGISTRY.count(SCALAR_FALLBACK_METRIC, fallback_branches)
    REGISTRY.count(BANK_PASSES_METRIC)
    if subsumes > 1:
        REGISTRY.count(PASSES_SAVED_METRIC, subsumes - 1)
    return MeasurementResult(
        predictor_name=predictor.name,
        branches=branch_count,
        mispredictions=columns.mispredictions,
        quadrants=quadrants,
        elapsed_s=elapsed,
    )


def measure_bank(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimators: Mapping[str, ConfidenceEstimator],
    subsumes: int = 1,
    observers: Sequence[Observer] = (),
) -> MeasurementResult:
    """One-pass estimator-bank measurement with session accounting.

    Identical to :func:`measure` -- estimators never perturb the
    predictor or each other, so co-measuring more of them changes no
    per-estimator quadrant -- but it additionally accounts the *bank
    effect*: ``subsumes`` is the number of single-purpose
    :func:`measure` passes this bank replaces (each former consumer
    group of the same (workload, predictor) trace), and ``subsumes - 1``
    is credited to the ``session.passes_saved`` counter.  The journal's
    ``metrics_snapshot`` and the report's Battery-performance section
    surface the saving.

    Columnar traces dispatch to :func:`measure_bank_vectorized` when
    the vector engine is enabled; predictors without a vector scan
    (e.g. speculation wrapper predictors) silently take the scalar
    loop, which iterates columnar traces just as well.
    """
    if vector_enabled() and isinstance(trace, ColumnarTrace):
        try:
            return measure_bank_vectorized(
                trace, predictor, estimators, subsumes=subsumes, observers=observers
            )
        except UnsupportedVectorization:
            pass
    result = measure(trace, predictor, estimators, observers)
    REGISTRY.count(BANK_PASSES_METRIC)
    if subsumes > 1:
        REGISTRY.count(PASSES_SAVED_METRIC, subsumes - 1)
    return result
