"""Trace-driven measurement: predictor + estimators -> quadrant tables.

Replays a committed branch stream through one branch predictor while
any number of confidence estimators assess each prediction, exactly the
measurement the paper describes in §2: *"we can measure C_HC, I_HC,
C_LC and I_LC using a branch predictor for each branch and concurrently
estimate the confidence"*.

Running all estimators of an experiment in one pass keeps every
estimator's view identical (same predictor state stream) and amortises
the predictor simulation, which dominates the cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Sequence, Tuple

from ..confidence.base import ConfidenceEstimator
from ..metrics.quadrant import QuadrantCounts
from ..obs.registry import REGISTRY
from ..predictors.base import BranchPredictor

#: Registry metric names every simulation loop reports into.
BRANCHES_METRIC = "sim.branches"
REPLAY_TIMER = "sim.replay"

#: Estimator-bank session metrics: how many one-pass bank measurements
#: ran, and how many single-purpose passes they subsumed beyond the one
#: actually executed (the battery's simulation savings).
BANK_PASSES_METRIC = "session.bank_passes"
PASSES_SAVED_METRIC = "session.passes_saved"


def record_simulation(branches: int, seconds: float) -> None:
    """Count one simulation loop's work into the process registry."""
    REGISTRY.count(BRANCHES_METRIC, branches)
    REGISTRY.observe_seconds(REPLAY_TIMER, seconds)

#: Observer signature: (pc, predicted_taken, actual_taken,
#: {estimator name: high_confidence}).  Called once per branch, after
#: estimation but before any resolve -- prediction-time information only.
Observer = Callable[[int, bool, bool, Dict[str, bool]], None]


@dataclass
class MeasurementResult:
    """Quadrant tables and predictor statistics for one measured run."""

    predictor_name: str
    branches: int
    mispredictions: int
    quadrants: Dict[str, QuadrantCounts] = field(default_factory=dict)
    #: Wall time the measurement loop took, for throughput reporting.
    elapsed_s: float = 0.0

    @property
    def accuracy(self) -> float:
        return (
            (self.branches - self.mispredictions) / self.branches
            if self.branches
            else 0.0
        )

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def branches_per_second(self) -> float:
        return self.branches / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def quadrant(self, estimator_name: str) -> QuadrantCounts:
        return self.quadrants[estimator_name]


def measure(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimators: Mapping[str, ConfidenceEstimator],
    observers: Sequence[Observer] = (),
) -> MeasurementResult:
    """Measure every estimator in ``estimators`` over ``trace``.

    The predictor and estimators are consumed (their state evolves);
    pass fresh instances for independent measurements.
    """
    quadrants = {name: QuadrantCounts() for name in estimators}
    estimator_items = list(estimators.items())
    predict = predictor.predict
    predictor_resolve = predictor.resolve
    branches = 0
    mispredictions = 0
    started = time.perf_counter()

    for pc, taken in trace:
        prediction = predict(pc)
        assessments = [
            (name, estimator, estimator.estimate(pc, prediction))
            for name, estimator in estimator_items
        ]
        if observers:
            flags = {
                name: assessment.high_confidence
                for name, __, assessment in assessments
            }
            for observer in observers:
                observer(pc, prediction.taken, taken, flags)
        correct = prediction.taken == taken
        branches += 1
        if not correct:
            mispredictions += 1
        predictor_resolve(pc, taken, prediction)
        for name, estimator, assessment in assessments:
            estimator.resolve(pc, prediction, taken, assessment)
            quadrants[name].record(correct, assessment.high_confidence)

    elapsed = time.perf_counter() - started
    record_simulation(branches=branches, seconds=elapsed)
    return MeasurementResult(
        predictor_name=predictor.name,
        branches=branches,
        mispredictions=mispredictions,
        quadrants=quadrants,
        elapsed_s=elapsed,
    )


def measure_accuracy(
    trace: Iterable[Tuple[int, bool]], predictor: BranchPredictor
) -> MeasurementResult:
    """Predictor-only measurement (no estimators attached)."""
    return measure(trace, predictor, {})


def measure_bank(
    trace: Iterable[Tuple[int, bool]],
    predictor: BranchPredictor,
    estimators: Mapping[str, ConfidenceEstimator],
    subsumes: int = 1,
    observers: Sequence[Observer] = (),
) -> MeasurementResult:
    """One-pass estimator-bank measurement with session accounting.

    Identical to :func:`measure` -- estimators never perturb the
    predictor or each other, so co-measuring more of them changes no
    per-estimator quadrant -- but it additionally accounts the *bank
    effect*: ``subsumes`` is the number of single-purpose
    :func:`measure` passes this bank replaces (each former consumer
    group of the same (workload, predictor) trace), and ``subsumes - 1``
    is credited to the ``session.passes_saved`` counter.  The journal's
    ``metrics_snapshot`` and the report's Battery-performance section
    surface the saving.
    """
    result = measure(trace, predictor, estimators, observers)
    REGISTRY.count(BANK_PASSES_METRIC)
    if subsumes > 1:
        REGISTRY.count(PASSES_SAVED_METRIC, subsumes - 1)
    return result
