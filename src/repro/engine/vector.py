"""Vectorized predictor and estimator kernels over columnar traces.

The scalar measurement loop replays one python-level iteration per
dynamic branch.  This module re-expresses the same computation as numpy
array scans over a :class:`~repro.engine.columnar.ColumnarTrace`:

* **Predictor passes** (:func:`predict_columns`): the serial chain of
  saturating-counter updates is broken per table entry by a stable
  sort-by-index segmentation, then each segment's update chain is
  played as a segmented inclusive scan of *clamp-shift maps*
  ``x -> clip(x + s, lo, hi)``.  Such maps are closed and **exact**
  under composition, so every branch recovers the precise counter value
  it consulted, and the table's final state falls out of the last map
  per segment.  History registers (global or per-site) are serial but
  cheap: their columns are built with ``O(history_bits)`` shifted-OR
  passes, not per-branch python.
* **Estimator kernels**: each estimator family that the scalar bank
  supports has a matching array kernel (JRS tables reuse the clamped
  scan with reset expressed as a ``-max`` shift; saturating-counters,
  pattern and static families are pure masked ops; distance and
  boosting are prefix-maximum recurrences).  A small registry maps
  estimator *types* to kernels; anything unknown raises
  :class:`UnsupportedVectorization` so callers can fall back to the
  scalar loop -- either wholesale or per estimator via
  :func:`fallback_flags`, which drives the ordinary ``estimate`` /
  ``resolve`` protocol from the precomputed prediction columns.

Every kernel consumes predictor/estimator state exactly like the scalar
engine: post-pass tables, history registers and counters are installed
on the passed objects, so interleaving vector and scalar passes over
the same instances stays bit-identical.

Pristine passes are memoised: a predictor pass over uniform power-on
state is keyed by configuration and cached on the trace, and estimator
flag columns are cached per predictor pass.  Sweeps that re-measure the
same workload under many fresh estimator configurations then pay for
one predictor scan total.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

try:  # pragma: no cover - numpy presence is environment-dependent
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from ..predictors.gshare import GsharePredictor
from ..predictors.mcfarling import McFarlingPredictor
from ..predictors.sag import SAgPredictor
from .columnar import ColumnarTrace

#: Environment switch: set to 0/false/no/off to force the scalar engine.
VECTOR_ENV = "REPRO_VECTOR"

_DISABLED_VALUES = {"0", "false", "no", "off"}


class UnsupportedVectorization(Exception):
    """No vector kernel exists for this predictor/estimator combination."""


def vector_enabled() -> bool:
    """True when the numpy vector engine may be used."""
    if np is None:
        return False
    return os.environ.get(VECTOR_ENV, "").strip().lower() not in _DISABLED_VALUES


def _vector_ready(trace) -> bool:
    return vector_enabled() and isinstance(trace, ColumnarTrace)


# ----------------------------------------------------------------------
# segmented saturating-counter scan
# ----------------------------------------------------------------------


def _segments(keys):
    """Stable sort ``keys`` and describe the equal-key segments."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    n = keys.shape[0]
    pos = np.arange(n, dtype=np.int64)
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = sorted_keys[1:] != sorted_keys[:-1]
    seg_start = np.maximum.accumulate(np.where(change, pos, 0))
    is_last = np.empty(n, dtype=bool)
    is_last[:-1] = change[1:]
    is_last[-1] = True
    return order, sorted_keys, pos, seg_start, is_last


def _saturating_scan(indices, deltas, values, max_value):
    """Play per-entry saturating-counter chains as a segmented scan.

    ``values`` (an int64 table) is updated in place to its final state;
    the returned int64 array holds, in trace order, the counter value
    each branch *observed* (before its own update).

    Every update is the monotone map ``x -> clip(x + d, 0, M)`` with
    ``d`` the signed delta (``-M`` expresses reset-to-zero).  Writing a
    single update as the clamp-shift triple ``(s, lo, hi) =
    (d, clip(d, 0, M), clip(d + M, 0, M))``, composition stays in the
    family: ``b after a`` is ``(s_a + s_b, clip(lo_a + s_b, lo_b, hi_b),
    clip(hi_a + s_b, lo_b, hi_b))`` -- exactly, for any inputs in
    ``[0, M]``.  A Hillis-Steele doubling pass over each same-index
    segment therefore yields every prefix map, and applying prefix
    ``i-1``'s map to the segment's initial value gives branch ``i``'s
    observed counter.
    """
    n = indices.shape[0]
    before = np.empty(n, dtype=np.int64)
    if n == 0:
        return before
    order, sorted_keys, pos, seg_start, is_last = _segments(indices)
    shift = deltas[order].astype(np.int64)
    lo = np.clip(shift, 0, max_value)
    hi = np.clip(shift + max_value, 0, max_value)
    longest = int((pos - seg_start).max()) + 1
    offset = 1
    while offset < longest:
        prev = pos - offset
        valid = prev >= seg_start
        source = np.where(valid, prev, 0)
        prev_shift = shift[source]
        prev_lo = lo[source]
        prev_hi = hi[source]
        new_shift = prev_shift + shift
        new_lo = np.minimum(hi, np.maximum(lo, prev_lo + shift))
        new_hi = np.minimum(hi, np.maximum(lo, prev_hi + shift))
        shift = np.where(valid, new_shift, shift)
        lo = np.where(valid, new_lo, lo)
        hi = np.where(valid, new_hi, hi)
        offset <<= 1
    initial = values[sorted_keys]
    after = np.minimum(hi, np.maximum(lo, initial + shift))
    observed = np.empty(n, dtype=np.int64)
    first = seg_start == pos
    observed[first] = initial[first]
    rest = ~first
    observed[rest] = after[np.flatnonzero(rest) - 1]
    before[order] = observed
    values[sorted_keys[is_last]] = after[is_last]
    return before


# ----------------------------------------------------------------------
# history columns
# ----------------------------------------------------------------------


def _history_column(taken, bits, initial, mask):
    """Global-history value observed by each branch.

    ``hist[i]`` packs the previous outcomes with the newest in the low
    bit, seeded from ``initial``: ``h[i+1] = ((h[i] << 1) | t[i]) &
    mask``.  (The committed stream is the same whether the register is
    updated speculatively with repair or non-speculatively.)
    """
    n = taken.shape[0]
    hist = np.zeros(n, dtype=np.int64)
    if n == 0:
        return hist
    outcomes = taken.astype(np.int64)
    for bit in range(min(bits, n - 1)):
        # branch i-1-bit's outcome lands at bit `bit` of hist[i]
        hist[bit + 1 :] |= outcomes[: n - 1 - bit] << bit
    if initial:
        for position in range(min(bits, n)):
            hist[position] |= (initial << position) & mask
    return hist


def _final_history(taken, bits, initial, mask):
    """History register value after the whole trace resolved."""
    value = initial & mask
    tail = taken[max(0, taken.shape[0] - bits) :].tolist()
    for outcome in tail:
        value = ((value << 1) | (1 if outcome else 0)) & mask
    return value


def _uniform_value(values) -> Optional[int]:
    """The single value a table holds everywhere, or None if mixed."""
    if not values:
        return None
    first = values[0]
    return first if values.count(first) == len(values) else None


# ----------------------------------------------------------------------
# predictor passes
# ----------------------------------------------------------------------


class PredictColumns:
    """One predictor's full pass over a columnar trace.

    Column-oriented equivalent of the per-branch
    :class:`~repro.predictors.base.Prediction` stream: parallel arrays
    for predicted direction, consulted history/index/counters, plus the
    estimator flag memo shared by every consumer of this pass.
    """

    __slots__ = (
        "pcs",
        "taken",
        "pred",
        "correct",
        "history",
        "index",
        "counters",
        "snapshot_is_history",
        "_flag_memo",
    )

    def __init__(
        self, pcs, taken, pred, correct, history, index, counters, snapshot_is_history
    ):
        self.pcs = pcs
        self.taken = taken
        self.pred = pred
        self.correct = correct
        self.history = history
        self.index = index
        self.counters = counters
        self.snapshot_is_history = snapshot_is_history
        self._flag_memo = {}

    @property
    def branches(self) -> int:
        return int(self.pcs.shape[0])

    @property
    def mispredictions(self) -> int:
        return int(np.count_nonzero(~self.correct))


def _gshare_key(predictor):
    uniform = _uniform_value(predictor.table.values)
    if uniform is None:
        return None
    return (
        "gshare",
        predictor.table.size,
        predictor.table.bits,
        predictor.history.bits,
        uniform,
        predictor.history.value,
    )


def _scan_gshare(trace, predictor):
    table = predictor.table
    history = predictor.history
    taken = trace.taken
    hist = _history_column(taken, history.bits, history.value, history.mask)
    index = (trace.pcs ^ hist) & table.index_mask
    deltas = np.where(taken, 1, -1)
    values = np.asarray(table.values, dtype=np.int64)
    before = _saturating_scan(index, deltas, values, table.max_value)
    pred = before >= table.midpoint
    columns = PredictColumns(
        pcs=trace.pcs,
        taken=taken,
        pred=pred,
        correct=pred == taken,
        history=hist,
        index=index,
        counters=(before,),
        snapshot_is_history=True,
    )
    finals = (
        tuple(values.tolist()),
        _final_history(taken, history.bits, history.value, history.mask),
    )
    return columns, finals


def _apply_gshare(predictor, finals):
    table_values, history_value = finals
    predictor.table.values[:] = list(table_values)
    predictor.history.value = history_value


def _mcfarling_key(predictor):
    uniforms = tuple(
        _uniform_value(table.values)
        for table in (
            predictor.gshare_table,
            predictor.bimodal_table,
            predictor.meta_table,
        )
    )
    if any(value is None for value in uniforms):
        return None
    return (
        "mcfarling",
        predictor.gshare_table.size,
        predictor.gshare_table.bits,
        predictor.history.bits,
        uniforms,
        predictor.history.value,
    )


def _scan_mcfarling(trace, predictor):
    gshare_table = predictor.gshare_table
    bimodal_table = predictor.bimodal_table
    meta_table = predictor.meta_table
    history = predictor.history
    taken = trace.taken
    hist = _history_column(taken, history.bits, history.value, history.mask)
    gshare_index = (trace.pcs ^ hist) & gshare_table.index_mask
    pc_index = trace.pcs & bimodal_table.index_mask
    deltas = np.where(taken, 1, -1)
    gshare_values = np.asarray(gshare_table.values, dtype=np.int64)
    bimodal_values = np.asarray(bimodal_table.values, dtype=np.int64)
    meta_values = np.asarray(meta_table.values, dtype=np.int64)
    gshare_before = _saturating_scan(
        gshare_index, deltas, gshare_values, gshare_table.max_value
    )
    bimodal_before = _saturating_scan(
        pc_index, deltas, bimodal_values, bimodal_table.max_value
    )
    gshare_pred = gshare_before >= gshare_table.midpoint
    bimodal_pred = bimodal_before >= bimodal_table.midpoint
    gshare_right = gshare_pred == taken
    bimodal_right = bimodal_pred == taken
    # meta trains only when the components disagree (delta 0 = identity)
    meta_deltas = np.where(
        gshare_right != bimodal_right, np.where(gshare_right, 1, -1), 0
    )
    meta_before = _saturating_scan(
        pc_index, meta_deltas, meta_values, meta_table.max_value
    )
    pred = np.where(meta_before >= meta_table.midpoint, gshare_pred, bimodal_pred)
    columns = PredictColumns(
        pcs=trace.pcs,
        taken=taken,
        pred=pred,
        correct=pred == taken,
        history=hist,
        index=gshare_index,
        counters=(gshare_before, bimodal_before, meta_before),
        snapshot_is_history=True,
    )
    finals = (
        tuple(gshare_values.tolist()),
        tuple(bimodal_values.tolist()),
        tuple(meta_values.tolist()),
        _final_history(taken, history.bits, history.value, history.mask),
    )
    return columns, finals


def _apply_mcfarling(predictor, finals):
    gshare_values, bimodal_values, meta_values, history_value = finals
    predictor.gshare_table.values[:] = list(gshare_values)
    predictor.bimodal_table.values[:] = list(bimodal_values)
    predictor.meta_table.values[:] = list(meta_values)
    predictor.history.value = history_value


def _sag_key(predictor):
    bht_uniform = _uniform_value(predictor.bht.values)
    pht_uniform = _uniform_value(predictor.pht.values)
    if bht_uniform is None or pht_uniform is None:
        return None
    return (
        "sag",
        predictor.bht.entries,
        predictor.bht.bits,
        predictor.pht.size,
        predictor.pht.bits,
        bht_uniform,
        pht_uniform,
    )


def _scan_sag(trace, predictor):
    bht = predictor.bht
    pht = predictor.pht
    taken = trace.taken
    n = taken.shape[0]
    entry = trace.pcs & bht.index_mask
    hist = np.zeros(n, dtype=np.int64)
    bht_values = np.asarray(bht.values, dtype=np.int64)
    if n:
        order, sorted_entries, pos, seg_start, is_last = _segments(entry)
        outcomes = taken[order].astype(np.int64)
        hist_sorted = np.zeros(n, dtype=np.int64)
        for bit in range(bht.bits):
            source = pos - 1 - bit
            valid = source >= seg_start
            hist_sorted |= np.where(
                valid, outcomes[np.maximum(source, 0)] << bit, 0
            )
        # surviving bits of the entry's pre-trace history register
        initial = bht_values[sorted_entries]
        depth = pos - seg_start
        seeded = depth < bht.bits
        hist_sorted |= np.where(
            seeded, (initial << np.minimum(depth, bht.bits)) & bht.history_mask, 0
        )
        hist[order] = hist_sorted
        final_hist = ((hist_sorted << 1) | outcomes) & bht.history_mask
        bht_values[sorted_entries[is_last]] = final_hist[is_last]
    index = hist & pht.index_mask
    deltas = np.where(taken, 1, -1)
    pht_values = np.asarray(pht.values, dtype=np.int64)
    before = _saturating_scan(index, deltas, pht_values, pht.max_value)
    pred = before >= pht.midpoint
    columns = PredictColumns(
        pcs=trace.pcs,
        taken=taken,
        pred=pred,
        correct=pred == taken,
        history=hist,
        index=index,
        counters=(before,),
        snapshot_is_history=False,
    )
    finals = (tuple(bht_values.tolist()), tuple(pht_values.tolist()))
    return columns, finals


def _apply_sag(predictor, finals):
    bht_values, pht_values = finals
    predictor.bht.values[:] = list(bht_values)
    predictor.pht.values[:] = list(pht_values)


_PREDICTOR_SCANS = {
    GsharePredictor: (_gshare_key, _scan_gshare, _apply_gshare),
    McFarlingPredictor: (_mcfarling_key, _scan_mcfarling, _apply_mcfarling),
    SAgPredictor: (_sag_key, _scan_sag, _apply_sag),
}


def supports_predictor(predictor) -> bool:
    """True when a whole-trace scan exists for this predictor type."""
    return type(predictor) in _PREDICTOR_SCANS


def predict_columns(trace: ColumnarTrace, predictor) -> PredictColumns:
    """Run ``predictor`` over the whole trace as array scans.

    Consumes predictor state exactly like the scalar loop: post-pass
    table/history contents are installed on ``predictor``.  Passes over
    pristine (uniform power-on) state are memoised on the trace, so
    every fresh instance of the same configuration shares one scan per
    workload.
    """
    if not vector_enabled():
        raise UnsupportedVectorization("vector engine disabled")
    entry = _PREDICTOR_SCANS.get(type(predictor))
    if entry is None:
        raise UnsupportedVectorization(type(predictor).__name__)
    key_fn, scan_fn, apply_fn = entry
    key = key_fn(predictor)
    memo = trace._predict_memo
    if key is not None and key in memo:
        columns, finals = memo[key]
    else:
        columns, finals = scan_fn(trace, predictor)
        if key is not None:
            memo[key] = (columns, finals)
    apply_fn(predictor, finals)
    return columns


# ----------------------------------------------------------------------
# estimator kernels
# ----------------------------------------------------------------------


def _jrs_flags(columns, estimator):
    hist = columns.history
    if estimator.enhanced:
        hist = (hist << 1) | columns.pred.astype(np.int64)
    index = (columns.pcs ^ hist) & estimator.table.index_mask
    max_value = estimator.table.max_value
    # correct -> saturating +1; mispredict -> reset, i.e. clip(x - M)
    deltas = np.where(columns.correct, 1, -max_value)
    values = np.asarray(estimator.table.values, dtype=np.int64)
    before = _saturating_scan(index, deltas, values, max_value)
    return before >= estimator.threshold, tuple(values.tolist())


def _jrs_apply(estimator, final):
    estimator.table.values[:] = list(final)


def _satcnt_flags(columns, estimator):
    bits = estimator.counter_bits
    top = (1 << bits) - 1
    counters = columns.counters

    def strong(counter):
        return (counter == 0) | (counter == top)

    if len(counters) == 1:
        return strong(counters[0]), None
    from ..confidence.saturating import McFarlingVariant

    gshare_strong = strong(counters[0])
    bimodal_strong = strong(counters[1])
    if estimator.variant is McFarlingVariant.BOTH_STRONG:
        flags = gshare_strong & bimodal_strong
    elif estimator.variant is McFarlingVariant.EITHER_STRONG:
        flags = gshare_strong | bimodal_strong
    else:  # SELECTED: strength of the chosen component only
        flags = np.where(
            counters[2] >= (1 << (bits - 1)), gshare_strong, bimodal_strong
        )
    return flags, None


def _pattern_flags(columns, estimator):
    patterns = np.asarray(sorted(estimator.patterns), dtype=np.int64)
    return np.isin(columns.history & estimator.history_mask, patterns), None


def _static_flags(columns, estimator):
    sites = np.asarray(sorted(estimator.confident_sites), dtype=np.int64)
    return np.isin(columns.pcs, sites), None


def _stateless_apply(estimator, final):
    return None


def _distance_flags(columns, estimator):
    n = columns.branches
    start = estimator.branches_since_misprediction
    if n == 0:
        return np.empty(0, dtype=bool), start
    mispredicted = ~columns.correct
    pos = np.arange(n, dtype=np.int64)
    run_max = np.maximum.accumulate(np.where(mispredicted, pos, -start - 1))
    previous = np.empty(n, dtype=np.int64)
    previous[0] = -start - 1
    previous[1:] = run_max[:-1]
    distance = pos - previous - 1
    flags = distance > estimator.distance_threshold
    final = 0 if bool(mispredicted[-1]) else int(distance[-1]) + 1
    return flags, final


def _distance_apply(estimator, final):
    estimator.branches_since_misprediction = final


def _boost_flags(columns, estimator):
    inner, base_final, _ = _flags_and_final(columns, estimator.base)
    n = inner.shape[0]
    run_start = estimator._lc_run
    if n == 0:
        return np.empty(0, dtype=bool), (run_start, base_final)
    pos = np.arange(n, dtype=np.int64)
    last_high = np.maximum.accumulate(np.where(inner, pos, -run_start - 1))
    run = pos - last_high
    flags = run < estimator.k
    return flags, (int(run[-1]), base_final)


def _boost_apply(estimator, final):
    run, base_final = final
    estimator._lc_run = run
    plan = _estimator_plan(estimator.base)
    plan[2](estimator.base, base_final)


def _estimator_plan(estimator):
    """The (memo key, compute, apply) kernel triple for ``estimator``.

    ``memo key`` is None when the estimator's current state has no
    hashable expression (the flags are then recomputed per call);
    returns None entirely when no kernel exists for the type, which is
    what routes e.g. :class:`CombiningJRSEstimator` and wrapper
    estimators with opaque state to the scalar fallback.
    """
    from ..confidence.boosting import BoostedEstimator
    from ..confidence.distance import MispredictionDistanceEstimator
    from ..confidence.jrs import JRSEstimator
    from ..confidence.pattern import PatternHistoryEstimator
    from ..confidence.saturating import SaturatingCountersEstimator
    from ..confidence.static import StaticEstimator

    kind = type(estimator)
    if kind is JRSEstimator:
        uniform = _uniform_value(estimator.table.values)
        key = (
            None
            if uniform is None
            else (
                "jrs",
                estimator.table.size,
                estimator.table.bits,
                estimator.threshold,
                estimator.enhanced,
                uniform,
            )
        )
        return key, _jrs_flags, _jrs_apply
    if kind is SaturatingCountersEstimator:
        key = ("satcnt", estimator.counter_bits, estimator.variant.value)
        return key, _satcnt_flags, _stateless_apply
    if kind is PatternHistoryEstimator:
        key = ("pattern", estimator.history_mask, estimator.patterns)
        return key, _pattern_flags, _stateless_apply
    if kind is StaticEstimator:
        return ("static", estimator.confident_sites), _static_flags, _stateless_apply
    if kind is MispredictionDistanceEstimator:
        key = (
            "distance",
            estimator.distance_threshold,
            estimator.branches_since_misprediction,
        )
        return key, _distance_flags, _distance_apply
    if kind is BoostedEstimator:
        base_plan = _estimator_plan(estimator.base)
        if base_plan is None:
            return None
        base_key = base_plan[0]
        key = (
            None
            if base_key is None
            else ("boost", estimator.k, estimator._lc_run, base_key)
        )
        return key, _boost_flags, _boost_apply
    return None


def supports_estimator(estimator) -> bool:
    """True when an array kernel exists for this estimator."""
    return _estimator_plan(estimator) is not None


def _flags_and_final(columns, estimator):
    plan = _estimator_plan(estimator)
    if plan is None:
        raise UnsupportedVectorization(type(estimator).__name__)
    key, compute, apply_fn = plan
    if key is not None and key in columns._flag_memo:
        flags, final = columns._flag_memo[key]
    else:
        flags, final = compute(columns, estimator)
        if key is not None:
            columns._flag_memo[key] = (flags, final)
    return flags, final, apply_fn


def estimator_flags(columns: PredictColumns, estimator):
    """High-confidence flag column for ``estimator`` over ``columns``.

    Consumes estimator state like the scalar loop (post-pass tables and
    registers are installed).  Raises :class:`UnsupportedVectorization`
    when no kernel exists.
    """
    flags, final, apply_fn = _flags_and_final(columns, estimator)
    apply_fn(estimator, final)
    return flags


def fallback_flags(columns: PredictColumns, estimator):
    """Drive a non-kernelizable estimator scalar-wise over the columns.

    Synthesizes the per-branch :class:`Prediction` records the scalar
    loop would have produced and runs the ordinary ``estimate`` /
    ``resolve`` protocol, so any estimator works -- just not at vector
    speed.
    """
    from ..predictors.base import Prediction

    n = columns.branches
    flags = np.empty(n, dtype=bool)
    pcs = columns.pcs.tolist()
    pred = columns.pred.tolist()
    taken = columns.taken.tolist()
    hist = columns.history.tolist()
    index = columns.index.tolist()
    counter_columns = [counter.tolist() for counter in columns.counters]
    snapshot_is_history = columns.snapshot_is_history
    for i in range(n):
        prediction = Prediction(
            taken=pred[i],
            index=index[i],
            history=hist[i],
            counters=tuple(column[i] for column in counter_columns),
            snapshot=hist[i] if snapshot_is_history else None,
        )
        assessment = estimator.estimate(pcs[i], prediction)
        flags[i] = assessment.high_confidence
        estimator.resolve(pcs[i], prediction, taken[i], assessment)
    return flags


# ----------------------------------------------------------------------
# whole-pass helpers for the analysis layer
# ----------------------------------------------------------------------


def measured_flags(trace, predictor, estimator):
    """Vectorized single-estimator measurement.

    Returns ``(high_confidence, correct)`` bool arrays, or None when
    the vector path cannot serve this combination (checked *before* any
    state is consumed, so callers can fall back to the scalar loop with
    untouched predictor/estimator instances).
    """
    if not _vector_ready(trace) or not supports_predictor(predictor):
        return None
    if _estimator_plan(estimator) is None:
        return None
    columns = predict_columns(trace, predictor)
    flags = estimator_flags(columns, estimator)
    return flags, columns.correct


def confident_sites_vector(trace, predictor, accuracy_threshold):
    """Vectorized static profiling: per-site accuracy thresholding.

    Returns the frozenset of confident sites, or None when the vector
    path does not apply.  Consumes the predictor like the scalar
    profiling loop.
    """
    if not _vector_ready(trace) or not supports_predictor(predictor):
        return None
    columns = predict_columns(trace, predictor)
    site_count = trace.sites.shape[0]
    totals = np.bincount(trace.site_index, minlength=site_count)
    corrects = np.bincount(trace.site_index[columns.correct], minlength=site_count)
    confident = []
    for position, pc in enumerate(trace.sites.tolist()):
        total = int(totals[position])
        if total and int(corrects[position]) / total >= accuracy_threshold:
            confident.append(pc)
    return frozenset(confident)


def jrs_value_counts(trace, predictor, table_size, counter_bits, enhanced):
    """Counter values a fresh JRS table would expose per branch.

    Returns ``(correct_counts, incorrect_counts)`` python-int lists of
    length ``2**counter_bits`` (value histogram), or None when the
    vector path does not apply.  Consumes the predictor.
    """
    if not _vector_ready(trace) or not supports_predictor(predictor):
        return None
    columns = predict_columns(trace, predictor)
    hist = columns.history
    if enhanced:
        hist = (hist << 1) | columns.pred.astype(np.int64)
    index = (columns.pcs ^ hist) & (table_size - 1)
    max_value = (1 << counter_bits) - 1
    deltas = np.where(columns.correct, 1, -max_value)
    values = np.zeros(table_size, dtype=np.int64)
    before = _saturating_scan(index, deltas, values, max_value)
    correct = columns.correct
    length = max_value + 1
    correct_counts = np.bincount(before[correct], minlength=length)[:length]
    incorrect_counts = np.bincount(before[~correct], minlength=length)[:length]
    return correct_counts.tolist(), incorrect_counts.tolist()


def distance_value_counts(trace, predictor, max_distance):
    """Misprediction-distance histogram counts, or None if unsupported.

    Returns ``(correct_counts, incorrect_counts)`` python-int lists of
    length ``max_distance + 1``.  Consumes the predictor.
    """
    if not _vector_ready(trace) or not supports_predictor(predictor):
        return None
    columns = predict_columns(trace, predictor)
    n = columns.branches
    length = max_distance + 1
    if n == 0:
        return [0] * length, [0] * length
    mispredicted = ~columns.correct
    pos = np.arange(n, dtype=np.int64)
    previous = np.empty(n, dtype=np.int64)
    previous[0] = -1
    previous[1:] = np.maximum.accumulate(np.where(mispredicted, pos, -1))[:-1]
    bucket = np.minimum(pos - previous - 1, max_distance)
    correct_counts = np.bincount(bucket[columns.correct], minlength=length)[:length]
    incorrect_counts = np.bincount(bucket[mispredicted], minlength=length)[:length]
    return correct_counts.tolist(), incorrect_counts.tolist()


def misestimation_pairs(trace, predictor, estimator):
    """Per-branch (distance-since-misestimation, misestimated) pairs.

    Vector equivalent of :class:`MisestimationDistanceObserver`'s pair
    stream; returns a python list of tuples, or None if unsupported.
    Consumes predictor and estimator state.
    """
    result = measured_flags(trace, predictor, estimator)
    if result is None:
        return None
    flags, correct = result
    n = flags.shape[0]
    if n == 0:
        return []
    misestimated = flags != correct
    pos = np.arange(n, dtype=np.int64)
    previous = np.empty(n, dtype=np.int64)
    previous[0] = -1
    previous[1:] = np.maximum.accumulate(np.where(misestimated, pos, -1))[:-1]
    distance = pos - previous - 1
    return list(zip(distance.tolist(), misestimated.tolist()))


def boosting_counts(trace, predictor, estimator, ks):
    """Boosting-event counts: vector form of :class:`BoostingAccumulator`.

    Returns ``(rows, lc_branches, lc_mispredictions, branches)`` where
    ``rows`` is ``[(k, events, events_with_misprediction), ...]`` for
    each distinct k ascending -- or None when the vector path does not
    apply.  Consumes predictor and estimator state.
    """
    result = measured_flags(trace, predictor, estimator)
    if result is None:
        return None
    flags, correct = result
    n = flags.shape[0]
    low = ~flags
    mispredicted = ~correct
    lc_branches = int(np.count_nonzero(low))
    lc_mispredictions = int(np.count_nonzero(low & mispredicted))
    ordered_ks = sorted(set(ks))
    if n == 0:
        return [(k, 0, 0) for k in ordered_ks], 0, 0, 0
    pos = np.arange(n, dtype=np.int64)
    # length of the LC run ending at each branch (0 on HC branches)
    run = pos - np.maximum.accumulate(np.where(flags, pos, -1))
    last_lc_miss = np.maximum.accumulate(np.where(low & mispredicted, pos, -1))
    rows = []
    for k in ordered_ks:
        event_mask = low & (run >= k)
        events = int(np.count_nonzero(event_mask))
        hits = int(np.count_nonzero(event_mask & (last_lc_miss >= pos - k + 1)))
        rows.append((k, events, hits))
    return rows, lc_branches, lc_mispredictions, n
