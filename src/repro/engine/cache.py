"""Content-addressed on-disk artifact cache.

The expensive intermediates of the experiment battery -- generated
workload traces, pipeline branch-record streams, static-estimator
profiles and full estimator measurements -- are pure functions of
(workload profile, scale, generator/pipeline configuration).  This
module persists them across processes so that a warm rerun of the
battery, a pytest session, or a pool of parallel workers pays each
simulation exactly once per machine instead of once per process.

Keys are content addresses: a SHA-256 over the artifact *kind*, every
parameter that feeds the computation (including a fingerprint of the
workload profile and the pipeline configuration) and a code-version
salt that is bumped whenever simulator semantics change.  A stale or
corrupt cache entry can therefore never be confused with a valid one;
unreadable files are treated as misses and recomputed.

Environment knobs:

* ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) disables the cache.
* ``REPRO_CACHE_DIR`` overrides the cache directory (default
  ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``).

The CLI exposes the same controls as ``repro cache {info,clear}`` and
``repro --no-cache ...``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

from ..obs.registry import REGISTRY

T = TypeVar("T")

#: Bump whenever a change to the generator/tracer/pipeline/estimator
#: code alters what any cached artifact would contain.
CODE_SALT = "repro-artifacts-v2"

ENABLE_ENV = "REPRO_CACHE"
DIR_ENV = "REPRO_CACHE_DIR"

_FALSE_VALUES = {"0", "off", "false", "no"}


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance.

    ``errors`` counts every I/O problem (failed writes, unreadable
    entries); ``corrupt`` is the subset that was *corruption* -- an
    entry that existed, was readable, but did not unpickle.  The two
    are distinguished so ``repro cache info`` can tell a flaky disk
    apart from damaged artifacts.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    corrupt: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.errors += other.errors
        self.corrupt += other.corrupt

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.writes, self.errors, self.corrupt
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            writes=self.writes - earlier.writes,
            errors=self.errors - earlier.errors,
            corrupt=self.corrupt - earlier.corrupt,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "corrupt": self.corrupt,
        }


# ----------------------------------------------------------------------
# warning sink
# ----------------------------------------------------------------------

#: ``(context, message)`` callback for cache degradations.  The runner
#: points this at the active run journal so failed stores and corrupt
#: entries become ``warning`` events; without a sink they go to stderr
#: (silence was the bug -- see docs/robustness.md).
WarningSink = Callable[[str, str], None]

_WARNING_SINK: Optional[WarningSink] = None


def set_warning_sink(sink: Optional[WarningSink]) -> Optional[WarningSink]:
    """Install ``sink`` (or ``None`` to restore stderr); returns the old one."""
    global _WARNING_SINK
    previous = _WARNING_SINK
    _WARNING_SINK = sink
    return previous


def _warn(context: str, message: str) -> None:
    if _WARNING_SINK is not None:
        _WARNING_SINK(context, message)
    else:
        print(f"repro: {message}", file=sys.stderr)


def _json_representable(value: Any) -> bool:
    try:
        json.dumps(value, sort_keys=True)
    except (TypeError, ValueError):
        return False
    return True


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    override = os.environ.get(DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get(ENABLE_ENV, "1").strip().lower() not in _FALSE_VALUES


@dataclass
class ArtifactCache:
    """A directory of pickled artifacts addressed by content hash."""

    root: Path
    enabled: bool = True
    salt: str = CODE_SALT
    stats: CacheStats = field(default_factory=CacheStats)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    def key(self, kind: str, **parts: Any) -> str:
        """Content address for one artifact.

        ``parts`` must be JSON-representable (tuples become lists);
        insertion order does not matter.  Anything else -- an estimator
        instance, a config object -- raises :class:`TypeError` instead
        of being silently stringified: ``str()`` fallbacks collide when
        reprs match and spuriously miss when they embed ``object at
        0x...`` addresses.
        """
        try:
            payload = json.dumps(
                {"kind": kind, "salt": self.salt, "parts": parts},
                sort_keys=True,
            )
        except (TypeError, ValueError) as error:
            offending = sorted(
                name
                for name, value in parts.items()
                if not _json_representable(value)
            )
            raise TypeError(
                f"cache key parts for kind {kind!r} must be "
                f"JSON-representable; offending part(s): "
                f"{', '.join(offending) or '<unknown>'} ({error})"
            ) from None
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return f"{kind}-{digest[:40]}"

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------

    def load(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry counts as a miss.

        Corruption (the file exists and is readable but does not
        unpickle) is distinguished from a transient read error (disk
        I/O, permissions): a corrupt entry is unlinked so the recompute
        can replace it, and announced as a ``corrupt_artifact`` warning
        naming the key; a transient error leaves the file alone -- it
        may be perfectly healthy next time.
        """
        if not self.enabled:
            self.stats.misses += 1
            return False, None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except OSError as error:
            # transient I/O failure: recompute, but keep the entry
            self.stats.misses += 1
            self.stats.errors += 1
            REGISTRY.count("cache.read_errors")
            _warn(
                "cache_read",
                f"artifact cache read failed for {key}"
                f" ({type(error).__name__}: {error}); recomputing",
            )
            return False, None
        except Exception as error:
            # truncated/corrupt entry: drop it and recompute
            self.stats.misses += 1
            self.stats.errors += 1
            self.stats.corrupt += 1
            REGISTRY.count("cache.corrupt_entries")
            _warn(
                "corrupt_artifact",
                f"corrupt artifact cache entry {key}"
                f" ({type(error).__name__}); dropped, recomputing",
            )
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, value

    @staticmethod
    def kind_of(key: str) -> str:
        """The artifact kind a cache key was minted for."""
        return key.rsplit("-", 1)[0]

    def store(self, key: str, value: Any) -> None:
        """Persist ``value`` atomically (safe under concurrent writers)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, path)
            finally:
                if os.path.exists(temp_name):
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
        except OSError as error:
            # a read-only or full disk never breaks the computation,
            # but it is not swallowed silently either
            self.stats.errors += 1
            REGISTRY.count("cache.store_errors")
            _warn(
                "cache_store",
                f"artifact cache store failed for {key}"
                f" ({type(error).__name__}: {error}); continuing uncached",
            )
            return
        self.stats.writes += 1
        # chaos hook: an armed corrupt fault garbles the entry we just
        # wrote so the next load exercises the corruption path
        from ..faults.injector import active_faults

        active_faults().on_cache_store(self.kind_of(key), path)

    def cached(self, kind: str, compute: Callable[[], T], **parts: Any) -> T:
        """``compute()`` memoised under ``key(kind, **parts)``."""
        key = self.key(kind, **parts)
        hit, value = self.load(key)
        if hit:
            return value
        value = compute()
        self.store(key, value)
        return value

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------

    def entries(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(files, bytes)`` breakdown of the cache directory."""
        breakdown: Dict[str, Tuple[int, int]] = {}
        if not self.root.is_dir():
            return breakdown
        for path in self.root.glob("*.pkl"):
            kind = path.stem.rsplit("-", 1)[0]
            files, size = breakdown.get(kind, (0, 0))
            try:
                size += path.stat().st_size
            except OSError:
                continue
            breakdown[kind] = (files + 1, size)
        return breakdown

    def info(self) -> Dict[str, Any]:
        breakdown = self.entries()
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "salt": self.salt,
            "files": sum(files for files, __ in breakdown.values()),
            "bytes": sum(size for __, size in breakdown.values()),
            "kinds": {
                kind: {"files": files, "bytes": size}
                for kind, (files, size) in sorted(breakdown.items())
            },
            "stats": self.stats.as_dict(),
        }

    def verify(self) -> Dict[str, Any]:
        """Scan every entry on disk and classify it.

        Returns ``{"checked": n, "ok": n, "corrupt": [keys...],
        "unreadable": [keys...]}``.  Corrupt entries (present but not
        unpicklable) are reported, not deleted -- ``load`` drops them
        on the next use; a transient read error is listed separately.
        """
        checked = ok = 0
        corrupt: list = []
        unreadable: list = []
        if self.root.is_dir():
            for path in sorted(self.root.glob("*.pkl")):
                checked += 1
                try:
                    with open(path, "rb") as handle:
                        pickle.load(handle)
                except OSError:
                    unreadable.append(path.stem)
                except Exception:
                    corrupt.append(path.stem)
                else:
                    ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "unreadable": unreadable,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed


# ----------------------------------------------------------------------
# process-wide active cache
# ----------------------------------------------------------------------

_ACTIVE: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (created lazily from the environment)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = ArtifactCache(
            root=default_cache_dir(), enabled=cache_enabled_by_env()
        )
    return _ACTIVE


def configure(
    root: Optional[os.PathLike] = None, enabled: Optional[bool] = None
) -> ArtifactCache:
    """Replace the active cache (tests and the CLI use this).

    The environment is updated to match so that worker processes
    spawned afterwards (see :mod:`repro.harness.parallel`) agree with
    the parent about location and enablement.
    """
    global _ACTIVE
    current = get_cache()
    new_root = Path(root) if root is not None else current.root
    new_enabled = current.enabled if enabled is None else enabled
    os.environ[DIR_ENV] = str(new_root)
    os.environ[ENABLE_ENV] = "1" if new_enabled else "0"
    _ACTIVE = ArtifactCache(root=new_root, enabled=new_enabled)
    return _ACTIVE


def reset_active_cache() -> None:
    """Forget the active cache; the next use re-reads the environment."""
    global _ACTIVE
    _ACTIVE = None


def merge_stats(stats: CacheStats) -> None:
    """Fold a worker's cache counters into the active cache's stats."""
    get_cache().stats.merge(stats)
