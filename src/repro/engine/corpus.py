"""Workload corpus with in-process *and* on-disk caching.

Generating and functionally executing a workload is the most expensive
shared step of every trace-driven experiment, and its result (the
committed branch stream) is identical across experiments.  This module
memoises programs per (workload, iterations) in process, and backs the
traced run with the persistent artifact cache
(:mod:`repro.engine.cache`) so the cost is paid once per machine, not
once per process -- which is what makes parallel workers and repeated
pytest/benchmark sessions cheap.
"""

from __future__ import annotations

import hashlib
import time
from functools import lru_cache
from typing import Optional

from ..isa import Program
from ..workloads import generate_program, get_profile
from .cache import get_cache
from .measure import record_trace_generation
from .tracer import TracedRun, trace_branches


@lru_cache(maxsize=64)
def profile_fingerprint(name: str) -> str:
    """Stable digest of a workload profile's full definition.

    Cache keys embed this so editing a profile (sites, guards, seeds)
    invalidates every artifact derived from it without a salt bump.
    """
    profile = get_profile(name)
    return hashlib.sha256(repr(profile).encode("utf-8")).hexdigest()[:16]


@lru_cache(maxsize=64)
def workload_program(name: str, iterations: Optional[int] = None) -> Program:
    """The assembled program of workload ``name`` (cached in process)."""
    return generate_program(get_profile(name), iterations=iterations)


def _trace_workload(name: str, iterations: Optional[int]) -> TracedRun:
    started = time.perf_counter()
    run = trace_branches(workload_program(name, iterations))
    record_trace_generation(
        branches=run.stats.branches, seconds=time.perf_counter() - started
    )
    return run


@lru_cache(maxsize=64)
def workload_run(name: str, iterations: Optional[int] = None) -> TracedRun:
    """The committed branch stream of workload ``name``.

    Memoised in process and persisted in the artifact cache, keyed by
    the profile fingerprint and the iteration count.
    """
    return get_cache().cached(
        "trace",
        lambda: _trace_workload(name, iterations),
        workload=name,
        iterations=iterations,
        profile=profile_fingerprint(name),
    )


def clear_cache() -> None:
    """Drop memoised programs/traces (tests use this to bound memory)."""
    # imported here: columnar imports this module inside columnar_run
    from .columnar import clear_columnar_cache

    workload_program.cache_clear()
    workload_run.cache_clear()
    profile_fingerprint.cache_clear()
    clear_columnar_cache()
