"""Workload corpus with in-process caching.

Generating and functionally executing a workload is the most expensive
shared step of every trace-driven experiment, and its result (the
committed branch stream) is identical across experiments.  This module
memoises programs and traces per (workload, iterations) so a harness
run pays the cost once.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ..isa import Program
from ..workloads import generate_program, get_profile
from .tracer import TracedRun, trace_branches


@lru_cache(maxsize=64)
def workload_program(name: str, iterations: Optional[int] = None) -> Program:
    """The assembled program of workload ``name`` (cached)."""
    return generate_program(get_profile(name), iterations=iterations)


@lru_cache(maxsize=64)
def workload_run(name: str, iterations: Optional[int] = None) -> TracedRun:
    """The committed branch stream of workload ``name`` (cached)."""
    return trace_branches(workload_program(name, iterations))


def clear_cache() -> None:
    """Drop memoised programs/traces (tests use this to bound memory)."""
    workload_program.cache_clear()
    workload_run.cache_clear()
