"""Removed: the ``SIMULATION_COUNTERS`` facade is gone.

The observability refactor (PR 2) turned this module into a thin facade
over the unified metrics registry; this release deletes the facade
outright.  Read simulation throughput from
:data:`repro.obs.registry.REGISTRY` instead::

    from repro.obs.registry import REGISTRY
    from repro.engine.measure import BRANCHES_METRIC, REPLAY_TIMER

    branches = REGISTRY.counter_value(BRANCHES_METRIC)   # "sim.branches"
    seconds = REGISTRY.timer_value(REPLAY_TIMER).seconds  # "sim.replay"

Simulation loops report via :func:`repro.engine.measure.record_simulation`.
This import-error shim remains for one release so stale callers fail
with a pointer instead of an AttributeError.
"""

raise ImportError(
    "repro.engine.counters was removed: SIMULATION_COUNTERS is gone."
    " Use repro.obs.registry.REGISTRY (the 'sim.branches' counter and"
    " 'sim.replay' timer; metric-name constants live in"
    " repro.engine.measure)."
)
