"""Process-wide simulation throughput counters.

Every simulation loop (trace replay in :mod:`repro.engine.measure`,
functional tracing in :mod:`repro.engine.corpus`) reports how many
branches it processed and how long it took.  The harness snapshots the
counters around a battery run and the report renderer turns the delta
into a branches-per-second figure, so speedups from caching and
parallelism are visible directly in ``EXPERIMENTS.md``-style output.

Since the observability refactor these counters are a *facade* over the
unified metrics registry (:mod:`repro.obs.registry`): ``record`` feeds
the ``sim.branches`` counter and ``sim.replay`` timer, and the parallel
scheduler ships whole registry deltas instead of a bespoke counter
pair.  The :class:`SimulationCounters` value object and the
``SIMULATION_COUNTERS`` global keep their original API so existing
callers (runner, benchmarks) are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.registry import MetricsRegistry, get_registry

#: Registry metric names the facade writes to.
BRANCHES_METRIC = "sim.branches"
REPLAY_TIMER = "sim.replay"


@dataclass
class SimulationCounters:
    """Branches simulated and wall time spent simulating them.

    A plain value object: ``SIMULATION_COUNTERS.snapshot()`` returns
    one, and deltas between two snapshots describe a run's work.
    """

    branches: int = 0
    seconds: float = 0.0

    def merge(self, other: "SimulationCounters") -> None:
        self.branches += other.branches
        self.seconds += other.seconds

    def snapshot(self) -> "SimulationCounters":
        return SimulationCounters(branches=self.branches, seconds=self.seconds)

    def since(self, earlier: "SimulationCounters") -> "SimulationCounters":
        return SimulationCounters(
            branches=self.branches - earlier.branches,
            seconds=self.seconds - earlier.seconds,
        )

    @property
    def branches_per_second(self) -> float:
        return self.branches / self.seconds if self.seconds > 0 else 0.0


class RegistrySimulationCounters:
    """The live counters, backed by the process metrics registry.

    Same surface as the old ad-hoc global (``record`` / ``snapshot`` /
    ``since`` / ``merge`` / ``reset`` / the throughput properties) but
    every update lands in :data:`repro.obs.registry.REGISTRY`, so the
    journal's ``metrics_snapshot`` events and the report's throughput
    note can never disagree.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self._registry = get_registry(registry)

    @property
    def branches(self) -> int:
        return int(self._registry.counter_value(BRANCHES_METRIC))

    @property
    def seconds(self) -> float:
        return self._registry.timer_value(REPLAY_TIMER).seconds

    @property
    def branches_per_second(self) -> float:
        seconds = self.seconds
        return self.branches / seconds if seconds > 0 else 0.0

    def record(self, branches: int, seconds: float) -> None:
        self._registry.count(BRANCHES_METRIC, branches)
        self._registry.observe_seconds(REPLAY_TIMER, seconds)

    def snapshot(self) -> SimulationCounters:
        return SimulationCounters(branches=self.branches, seconds=self.seconds)

    def since(self, earlier: SimulationCounters) -> SimulationCounters:
        return self.snapshot().since(earlier)

    def merge(self, other: SimulationCounters) -> None:
        self.record(other.branches, other.seconds)

    def reset(self) -> None:
        self._registry.discard(BRANCHES_METRIC)
        self._registry.discard(REPLAY_TIMER)


#: The process-wide instance (registry-backed).
SIMULATION_COUNTERS = RegistrySimulationCounters()
