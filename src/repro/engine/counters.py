"""Process-wide simulation throughput counters.

Every simulation loop (trace replay in :mod:`repro.engine.measure`,
functional tracing in :mod:`repro.engine.corpus`) reports how many
branches it processed and how long it took.  The harness snapshots the
counters around a battery run and the report renderer turns the delta
into a branches-per-second figure, so speedups from caching and
parallelism are visible directly in ``EXPERIMENTS.md``-style output.

Parallel workers carry their own process-local instance; the scheduler
ships deltas back to the parent and folds them in with ``merge``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimulationCounters:
    """Branches simulated and wall time spent simulating them."""

    branches: int = 0
    seconds: float = 0.0

    def record(self, branches: int, seconds: float) -> None:
        self.branches += branches
        self.seconds += seconds

    def merge(self, other: "SimulationCounters") -> None:
        self.branches += other.branches
        self.seconds += other.seconds

    def snapshot(self) -> "SimulationCounters":
        return SimulationCounters(branches=self.branches, seconds=self.seconds)

    def since(self, earlier: "SimulationCounters") -> "SimulationCounters":
        return SimulationCounters(
            branches=self.branches - earlier.branches,
            seconds=self.seconds - earlier.seconds,
        )

    @property
    def branches_per_second(self) -> float:
        return self.branches / self.seconds if self.seconds > 0 else 0.0

    def reset(self) -> None:
        self.branches = 0
        self.seconds = 0.0


#: The process-wide instance.
SIMULATION_COUNTERS = SimulationCounters()
