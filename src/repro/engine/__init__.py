"""Trace-driven measurement engine."""

from .cache import ArtifactCache, CacheStats, configure, get_cache
from .corpus import clear_cache, profile_fingerprint, workload_program, workload_run
from .measure import (
    BANK_PASSES_METRIC,
    BRANCHES_METRIC,
    PASSES_SAVED_METRIC,
    REPLAY_TIMER,
    MeasurementResult,
    Observer,
    measure,
    measure_accuracy,
    measure_bank,
    record_simulation,
)
from .tracer import TracedRun, TraceRunStats, trace_branches

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "configure",
    "get_cache",
    "clear_cache",
    "profile_fingerprint",
    "workload_program",
    "workload_run",
    "BANK_PASSES_METRIC",
    "BRANCHES_METRIC",
    "PASSES_SAVED_METRIC",
    "REPLAY_TIMER",
    "MeasurementResult",
    "Observer",
    "measure",
    "measure_accuracy",
    "measure_bank",
    "record_simulation",
    "TracedRun",
    "TraceRunStats",
    "trace_branches",
]
