"""Trace-driven measurement engine."""

from .cache import ArtifactCache, CacheStats, configure, get_cache
from .corpus import clear_cache, profile_fingerprint, workload_program, workload_run
from .counters import SIMULATION_COUNTERS, SimulationCounters
from .measure import MeasurementResult, Observer, measure, measure_accuracy
from .tracer import TracedRun, TraceRunStats, trace_branches

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "configure",
    "get_cache",
    "clear_cache",
    "profile_fingerprint",
    "workload_program",
    "workload_run",
    "SIMULATION_COUNTERS",
    "SimulationCounters",
    "MeasurementResult",
    "Observer",
    "measure",
    "measure_accuracy",
    "TracedRun",
    "TraceRunStats",
    "trace_branches",
]
