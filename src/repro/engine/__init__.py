"""Trace-driven measurement engine."""

from .corpus import clear_cache, workload_program, workload_run
from .measure import MeasurementResult, Observer, measure, measure_accuracy
from .tracer import TracedRun, TraceRunStats, trace_branches

__all__ = [
    "clear_cache",
    "workload_program",
    "workload_run",
    "MeasurementResult",
    "Observer",
    "measure",
    "measure_accuracy",
    "TracedRun",
    "TraceRunStats",
    "trace_branches",
]
