"""History-pattern confidence estimator (Lick et al.; paper §3).

Observes only the branch-history pattern the predictor consulted and
tags a fixed set of patterns as high confidence: *always taken, almost
always taken (once not-taken), always not-taken, almost always
not-taken, and alternating* -- the patterns Lick et al. found to lead
to correct predictions under a PAs-style predictor.

On a SAg predictor the consulted history is the branch's own local
pattern and these shapes are meaningful; on gshare/McFarling the
history is global, no dominant patterns emerge, almost everything gets
tagged low confidence, and SENS collapses -- reproducing the paper's
observation that an estimator only performs when its structure mirrors
the underlying predictor.
"""

from __future__ import annotations

from typing import FrozenSet

from ..predictors.base import BranchPredictor, Prediction
from .base import Assessment, ConfidenceEstimator


def lick_confident_patterns(history_bits: int) -> FrozenSet[int]:
    """The confident-pattern set for ``history_bits``-wide histories.

    * always taken / always not-taken,
    * "once not-taken" / "once taken" (exactly one dissenting bit),
    * the two alternating patterns (…0101 and …1010).
    """
    if history_bits < 1:
        raise ValueError("history must be at least 1 bit")
    mask = (1 << history_bits) - 1
    patterns = {0, mask}
    for bit in range(history_bits):
        patterns.add(mask ^ (1 << bit))  # almost always taken
        patterns.add(1 << bit)  # almost always not-taken
    alternating = 0
    for bit in range(history_bits):
        if bit % 2 == 0:
            alternating |= 1 << bit
    patterns.add(alternating & mask)
    patterns.add((~alternating) & mask)
    return frozenset(patterns)


class PatternHistoryEstimator(ConfidenceEstimator):
    """Fixed confident-pattern matcher over the consulted history."""

    def __init__(self, history_bits: int, patterns: FrozenSet[int] = None):
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.patterns = (
            lick_confident_patterns(history_bits) if patterns is None else patterns
        )
        self.name = "pattern"

    @classmethod
    def for_predictor(cls, predictor: BranchPredictor) -> "PatternHistoryEstimator":
        """Match the pattern width to the predictor's history width."""
        history = getattr(predictor, "history", None)
        if history is not None:  # gshare / McFarling global history
            return cls(history_bits=history.bits)
        bht = getattr(predictor, "bht", None)
        if bht is not None:  # SAg local histories
            return cls(history_bits=bht.bits)
        history_bits = getattr(predictor, "history_bits", None)
        if history_bits:  # PAs-style tagged local histories
            return cls(history_bits=history_bits)
        raise TypeError(
            f"predictor {predictor.name!r} exposes no history register"
        )

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        return Assessment(
            (prediction.history & self.history_mask) in self.patterns
        )
