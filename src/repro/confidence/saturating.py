"""Saturating-counters confidence estimator (Smith 1981; paper §3, §3.3.1).

Uses the direction counters the branch predictor *already owns*: a
branch whose counter sits in a saturated ("strong") state is tagged
high confidence, transitional ("weak") states are low confidence.  Zero
additional storage -- the cheapest estimator the paper considers.

For the McFarling combining predictor two counters are consulted per
branch, giving four (strong, weak) combinations and the two variants of
§3.3.1:

* **Both Strong**: HC only when *both* component counters are strong
  (higher SPEC and PVP; the variant shown in Table 2).
* **Either Strong**: LC only when *both* components are weak
  (higher SENS).
"""

from __future__ import annotations

import enum

from ..predictors.base import BranchPredictor, Prediction
from ..predictors.counters import counter_is_strong
from .base import Assessment, ConfidenceEstimator


class McFarlingVariant(enum.Enum):
    """How component counter strengths combine into one estimate."""

    BOTH_STRONG = "both-strong"
    EITHER_STRONG = "either-strong"
    #: Use only the counter the meta predictor selected (one of the
    #: "number of variations" §3.3.1 reports as generally worse).
    SELECTED = "selected"


class SaturatingCountersEstimator(ConfidenceEstimator):
    """Strong/weak counter-state estimator.

    For single-counter predictors (gshare, bimodal, SAg) the single
    consulted counter decides.  For McFarling, ``variant`` selects the
    combination rule.  ``counter_bits`` must match the predictor's.
    """

    def __init__(
        self,
        counter_bits: int = 2,
        variant: McFarlingVariant = McFarlingVariant.BOTH_STRONG,
    ):
        self.counter_bits = counter_bits
        self.variant = variant
        self.name = f"satcnt({variant.value})"

    @classmethod
    def for_predictor(
        cls,
        predictor: BranchPredictor,
        variant: McFarlingVariant = McFarlingVariant.BOTH_STRONG,
    ) -> "SaturatingCountersEstimator":
        """Build an estimator matched to ``predictor``'s counter width."""
        return cls(counter_bits=predictor.counter_bits, variant=variant)

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        counters = prediction.counters
        bits = self.counter_bits
        if len(counters) == 1:
            return Assessment(counter_is_strong(counters[0], bits))
        # McFarling: counters = (gshare, bimodal, meta)
        gshare_strong = counter_is_strong(counters[0], bits)
        bimodal_strong = counter_is_strong(counters[1], bits)
        if self.variant is McFarlingVariant.BOTH_STRONG:
            high = gshare_strong and bimodal_strong
        elif self.variant is McFarlingVariant.EITHER_STRONG:
            high = gshare_strong or bimodal_strong
        else:  # SELECTED: strength of the chosen component only
            meta_chooses_gshare = counters[2] >= (1 << (bits - 1))
            high = gshare_strong if meta_chooses_gshare else bimodal_strong
        return Assessment(high)
