"""Static (profile-based) confidence estimator (paper §3).

A profiling run simulates the underlying branch predictor, records each
static branch site's prediction accuracy, and marks sites at or above a
threshold (paper: 90%) as high confidence.  At run time the estimate is
a single hint bit per site -- no dynamic state at all.

The paper stresses (footnote 1) that this cannot use a plain program
profile: the hint depends on the *predictor's* behaviour at the site,
so profiling requires a predictor simulation (or Profile-Me-style
hardware).  :func:`profile_confident_sites` is that simulation; the
reported results are "self-profiled" -- trained and evaluated on the
same input -- the paper's explicit best case.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Tuple

from ..predictors.base import BranchPredictor, Prediction
from .base import Assessment, ConfidenceEstimator


def profile_site_accuracy(
    trace, predictor: BranchPredictor
) -> Dict[int, Tuple[int, int]]:
    """Run ``predictor`` over ``trace``; per-site (correct, total) counts.

    ``trace`` is any iterable of ``(pc, taken)`` pairs (typically a
    :class:`~repro.workloads.trace.BranchTrace`).  The predictor is
    consumed: pass a fresh instance.
    """
    counts: Dict[int, Tuple[int, int]] = {}
    predict = predictor.predict
    resolve = predictor.resolve
    for pc, taken in trace:
        prediction = predict(pc)
        resolve(pc, taken, prediction)
        correct, total = counts.get(pc, (0, 0))
        counts[pc] = (correct + (1 if prediction.taken == taken else 0), total + 1)
    return counts


def profile_confident_sites(
    trace, predictor: BranchPredictor, accuracy_threshold: float = 0.90
) -> AbstractSet[int]:
    """Static sites whose predicted accuracy meets the threshold."""
    if not 0.0 <= accuracy_threshold <= 1.0:
        raise ValueError("accuracy_threshold must be in [0, 1]")
    counts = profile_site_accuracy(trace, predictor)
    return frozenset(
        pc
        for pc, (correct, total) in counts.items()
        if total and correct / total >= accuracy_threshold
    )


class StaticEstimator(ConfidenceEstimator):
    """Per-site hint-bit estimator built from a profiling pass."""

    def __init__(self, confident_sites: AbstractSet[int], threshold: float = 0.90):
        self.confident_sites = frozenset(confident_sites)
        self.threshold = threshold
        self.name = f"static(>{threshold:.0%})"

    @classmethod
    def from_profile(
        cls,
        trace,
        predictor: BranchPredictor,
        accuracy_threshold: float = 0.90,
    ) -> "StaticEstimator":
        """Profile ``trace`` under a fresh ``predictor`` and build hints."""
        sites = profile_confident_sites(trace, predictor, accuracy_threshold)
        return cls(sites, threshold=accuracy_threshold)

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        return Assessment(pc in self.confident_sites)
