"""Misprediction-distance confidence estimator (paper §4.1).

The paper's own inexpensive design, derived from the observation that
mispredictions cluster: *"essentially a JRS confidence estimator with a
single MDC register"*.  One global counter tracks how many branches
have been fetched since the last **resolved** misprediction; a branch
is high confidence when that count exceeds the distance threshold --
enough correctly handled branches have gone by to have stepped past the
cluster.

Two timing details match hardware (and the paper):

* the counter advances at *fetch* time, including wrong-path branches
  (a real front end cannot tell them apart), and
* it resets at *resolution* time, when the misprediction is detected --
  the "perceived" rather than "precise" event.  In the trace-driven
  engine resolution follows prediction immediately, degenerating to the
  precise distance; the pipeline engine exhibits the skew of Figs 8/9.
"""

from __future__ import annotations

from ..predictors.base import Prediction
from .base import Assessment, ConfidenceEstimator


class MispredictionDistanceEstimator(ConfidenceEstimator):
    """Single global branch-distance counter with a HC threshold."""

    def __init__(self, distance_threshold: int = 4):
        if distance_threshold < 0:
            raise ValueError("distance_threshold must be non-negative")
        self.distance_threshold = distance_threshold
        self.branches_since_misprediction = 0
        self.name = f"distance(>{distance_threshold})"

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        high = self.branches_since_misprediction > self.distance_threshold
        self.branches_since_misprediction += 1
        return Assessment(high)

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        if taken != prediction.taken:
            self.branches_since_misprediction = 0

    def reset(self) -> None:
        self.branches_since_misprediction = 0
