"""JRS miss-distance-counter confidence estimator.

Jacobsen, Rotenberg & Smith's one-level resetting-counter estimator:
a gshare-like table of n-bit *miss distance counters* (MDCs), indexed
by PC XOR branch history.  Every correctly predicted branch increments
its MDC (saturating); every misprediction resets it to zero.  A branch
is tagged high-confidence when its MDC has reached the threshold --
i.e. when enough consecutive correct predictions have mapped there to
have stepped past the local cluster of poorly predicted branches
(which is why the mechanism works; see paper §4.1).

Paper defaults: 4096 four-bit counters, threshold 15 (a saturated MDC).

This module also implements the paper's **enhanced** variant (§3.2.1):
*"rather than use the same branch history to index the branch
prediction and MDC table, we first predict the branch and include that
prediction when we index the MDC table"* -- i.e. the MDC is indexed
with the speculatively-updated history (the prediction shifted in), one
bit fresher than what the predictor itself saw.  Hardware reads both
candidate MDCs and late-selects once the prediction completes; the
simulator simply forms the final index.  This is the "more recent
information" improvement §3.5 credits for Figure 3.
"""

from __future__ import annotations

from ..predictors.base import Prediction
from ..predictors.counters import CounterTable
from .base import Assessment, ConfidenceEstimator


class JRSEstimator(ConfidenceEstimator):
    """Resetting miss-distance-counter estimator (JRS, 1996).

    Parameters
    ----------
    table_size:
        Number of MDC entries (power of two; paper sweeps 64..4096).
    counter_bits:
        MDC width; the paper uses 4-bit counters.
    threshold:
        MDC value at or above which a branch is high confidence.
        ``threshold = 2**counter_bits`` is unreachable and marks every
        branch low-confidence (the right-most points of Figures 4/5).
    enhanced:
        Include the predicted direction in the MDC index (§3.2.1).
    """

    def __init__(
        self,
        table_size: int = 4096,
        counter_bits: int = 4,
        threshold: int = 15,
        enhanced: bool = True,
    ):
        if threshold < 0 or threshold > (1 << counter_bits):
            raise ValueError(
                f"threshold {threshold} outside [0, {1 << counter_bits}]"
            )
        self.table = CounterTable(table_size, bits=counter_bits, initial=0)
        self.threshold = threshold
        self.enhanced = enhanced
        self.name = f"jrs{'+' if enhanced else ''}(t>={threshold})"

    def _index(self, pc: int, prediction: Prediction) -> int:
        history = prediction.history
        if self.enhanced:
            # speculatively-updated history: prediction bit shifted in
            history = (history << 1) | (1 if prediction.taken else 0)
        return (pc ^ history) & self.table.index_mask

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        index = self._index(pc, prediction)
        return Assessment(
            high_confidence=self.table.values[index] >= self.threshold,
            token=index,
        )

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        index = assessment.token
        if taken == prediction.taken:
            self.table.increment(index)
        else:
            self.table.reset(index)

    def reset(self) -> None:
        self.table = CounterTable(self.table.size, bits=self.table.bits, initial=0)


class CombiningJRSEstimator(ConfidenceEstimator):
    """McFarling-structure-aware JRS (paper §5 future work).

    §5: *"We are also working on a confidence estimator similar to the
    JRS mechanism designed to better exploit the structure of the
    McFarling two-level branch predictor."*  The §3.5 lesson is that an
    estimator performs when its indexing mirrors the predictor's; a
    combining predictor has *two* indexing structures, so this
    estimator keeps one MDC table per component -- a gshare-style table
    indexed by PC XOR (speculatively updated) history, and a
    bimodal-style table indexed by PC alone -- and consults them the
    way the predictor consults its components:

    * ``selection="meta"`` -- trust the MDC whose component the meta
      predictor selected for this branch (requires a McFarling
      :class:`~repro.predictors.base.Prediction`, whose ``counters``
      carry ``(gshare, bimodal, meta)``);
    * ``selection="both"`` -- high confidence only when *both* MDCs
      clear the threshold (the conservative analogue of Both-Strong);
    * ``selection="either"`` -- high confidence when either MDC does.

    Both tables train on every resolved branch (increment on correct,
    reset on mispredict), mirroring how both components of the
    McFarling predictor train on every outcome.
    """

    SELECTIONS = ("meta", "both", "either")

    def __init__(
        self,
        table_size: int = 4096,
        counter_bits: int = 4,
        threshold: int = 15,
        selection: str = "meta",
    ):
        if selection not in self.SELECTIONS:
            raise ValueError(
                f"selection must be one of {self.SELECTIONS}, got {selection!r}"
            )
        if threshold < 0 or threshold > (1 << counter_bits):
            raise ValueError(
                f"threshold {threshold} outside [0, {1 << counter_bits}]"
            )
        self.global_table = CounterTable(table_size, bits=counter_bits, initial=0)
        self.local_table = CounterTable(table_size, bits=counter_bits, initial=0)
        self.threshold = threshold
        self.selection = selection
        self.meta_midpoint = None  # inferred from the prediction
        self.name = f"jrs-mcf({selection},t>={threshold})"

    def _indices(self, pc: int, prediction: Prediction):
        history = (prediction.history << 1) | (1 if prediction.taken else 0)
        global_index = (pc ^ history) & self.global_table.index_mask
        local_index = pc & self.local_table.index_mask
        return global_index, local_index

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        global_index, local_index = self._indices(pc, prediction)
        global_high = self.global_table.values[global_index] >= self.threshold
        local_high = self.local_table.values[local_index] >= self.threshold
        if self.selection == "both":
            high = global_high and local_high
        elif self.selection == "either":
            high = global_high or local_high
        else:  # meta: follow the chosen component's structure
            counters = prediction.counters
            if len(counters) >= 3:
                meta_counter = counters[2]
                meta_chooses_global = meta_counter >= 2  # 2-bit midpoint
            else:
                meta_chooses_global = True  # single-component predictor
            high = global_high if meta_chooses_global else local_high
        return Assessment(high_confidence=high, token=(global_index, local_index))

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        global_index, local_index = assessment.token
        if taken == prediction.taken:
            self.global_table.increment(global_index)
            self.local_table.increment(local_index)
        else:
            self.global_table.reset(global_index)
            self.local_table.reset(local_index)

    def reset(self) -> None:
        self.global_table = CounterTable(
            self.global_table.size, bits=self.global_table.bits, initial=0
        )
        self.local_table = CounterTable(
            self.local_table.size, bits=self.local_table.bits, initial=0
        )
