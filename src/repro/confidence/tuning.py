"""Tuned static confidence estimation (paper §5 future work).

§5: *"we are working on an algorithm to 'tune' static confidence
estimation to achieve a particular goal for PVN or SPEC."*  This module
implements that algorithm.

The static estimator's only degree of freedom is the set of sites
marked low-confidence.  Given per-site profiling counts (correct_s,
incorrect_s), marking site s low-confidence moves its whole population
into the LC row, so any target is a knapsack-style selection problem
over sites.  Both goals below admit exact greedy solutions:

* **target SPEC** -- SPEC = (incorrect mass in LC) / (total incorrect).
  To hit a SPEC target while keeping SENS maximal, pick LC sites in
  decreasing incorrect:correct ratio (most misprediction coverage per
  correct branch sacrificed) until the target is reached.
* **target PVN** -- PVN of a site set is its pooled misprediction
  rate.  Sorting sites by misprediction rate descending, every prefix
  is the maximum-coverage set achieving its pooled rate; take the
  longest prefix whose pooled rate still meets the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Tuple

from .static import StaticEstimator

SiteCounts = Dict[int, Tuple[int, int]]  # pc -> (correct, total)


@dataclass(frozen=True)
class TunedStatic:
    """A tuned static estimator plus its training-set statistics."""

    estimator: StaticEstimator
    low_confidence_sites: FrozenSet[int]
    achieved_spec: float
    achieved_pvn: float
    achieved_sens: float

    @property
    def coverage(self) -> float:
        """Alias: fraction of mispredictions the LC set covers = SPEC."""
        return self.achieved_spec


def _site_table(counts: SiteCounts):
    """Per-site (pc, correct, incorrect) rows plus population totals."""
    rows = []
    total_correct = 0
    total_incorrect = 0
    for pc, (correct, total) in counts.items():
        incorrect = total - correct
        if incorrect < 0:
            raise ValueError(f"site {pc}: correct {correct} exceeds total {total}")
        rows.append((pc, correct, incorrect))
        total_correct += correct
        total_incorrect += incorrect
    return rows, total_correct, total_incorrect


def _build(counts: SiteCounts, low_confidence: AbstractSet[int]) -> TunedStatic:
    rows, total_correct, total_incorrect = _site_table(counts)
    lc_correct = sum(c for pc, c, __ in rows if pc in low_confidence)
    lc_incorrect = sum(i for pc, __, i in rows if pc in low_confidence)
    confident = frozenset(pc for pc, __, ___ in rows) - frozenset(low_confidence)
    spec = lc_incorrect / total_incorrect if total_incorrect else 0.0
    pvn = (
        lc_incorrect / (lc_correct + lc_incorrect)
        if (lc_correct + lc_incorrect)
        else 0.0
    )
    sens = (
        (total_correct - lc_correct) / total_correct if total_correct else 0.0
    )
    estimator = StaticEstimator(confident, threshold=float("nan"))
    estimator.name = "static(tuned)"
    return TunedStatic(
        estimator=estimator,
        low_confidence_sites=frozenset(low_confidence),
        achieved_spec=spec,
        achieved_pvn=pvn,
        achieved_sens=sens,
    )


def tune_for_spec(counts: SiteCounts, target_spec: float) -> TunedStatic:
    """Smallest-SENS-loss LC set reaching ``target_spec`` on the profile.

    Greedy by incorrect:correct ratio; exact for this objective because
    sites are indivisible only at the margin (the classic knapsack
    greedy bound) and in practice the marginal site is tiny.
    """
    if not 0.0 <= target_spec <= 1.0:
        raise ValueError("target_spec must be in [0, 1]")
    rows, __, total_incorrect = _site_table(counts)
    needed = target_spec * total_incorrect
    # most misprediction mass per sacrificed correct branch first
    ranked = sorted(
        rows, key=lambda row: (row[2] / (row[1] + 1), row[2]), reverse=True
    )
    low_confidence = set()
    covered = 0
    for pc, correct, incorrect in ranked:
        if covered >= needed:
            break
        if incorrect == 0:
            continue  # marking an always-correct site LC buys nothing
        low_confidence.add(pc)
        covered += incorrect
    return _build(counts, low_confidence)


def tune_for_pvn(counts: SiteCounts, target_pvn: float) -> TunedStatic:
    """Maximum-coverage LC set whose pooled PVN meets ``target_pvn``.

    Sites sorted by misprediction rate descending; the longest prefix
    whose pooled rate is still >= the target is the unique
    coverage-maximal solution (pooled rate is non-increasing along the
    prefix order).
    """
    if not 0.0 <= target_pvn <= 1.0:
        raise ValueError("target_pvn must be in [0, 1]")
    rows, __, ___ = _site_table(counts)
    ranked = sorted(
        rows,
        key=lambda row: (row[2] / (row[1] + row[2]) if (row[1] + row[2]) else 0.0),
        reverse=True,
    )
    low_confidence = set()
    pooled_correct = 0
    pooled_incorrect = 0
    for pc, correct, incorrect in ranked:
        new_correct = pooled_correct + correct
        new_incorrect = pooled_incorrect + incorrect
        total = new_correct + new_incorrect
        if total and new_incorrect / total >= target_pvn:
            low_confidence.add(pc)
            pooled_correct, pooled_incorrect = new_correct, new_incorrect
        else:
            break  # rates only fall from here; no later site can help
    return _build(counts, low_confidence)
