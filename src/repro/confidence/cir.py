"""Correct/incorrect-register (CIR) estimators -- Jacobsen et al.'s
original design and the §4.1 global-distance-indexed variant.

Before proposing the resetting miss distance counter, Jacobsen,
Rotenberg & Smith's estimator kept a table of n-bit *correct/incorrect
registers*: shift registers recording, per table entry, whether the
last n predictions mapping there were correct.  A *reduction function*
turns the register into a confidence bit; the standard choice is ones
counting -- high confidence when at most ``max_incorrect`` of the last
``register_bits`` outcomes were wrong (``max_incorrect = 0`` is the
"all correct" AND-reduction).

The paper's §4.1 also mentions the related configuration where *a
global MDC was used to index into a table of correct-incorrect
registers* -- i.e. the estimator state is keyed by the current
misprediction distance rather than by (PC, history).  The paper argues
this "probably did not work well" because the index structure no
longer matches the underlying predictor; it is implemented here
(:class:`DistanceIndexedCIREstimator`) so that claim can be tested --
and the ablation bench confirms it.
"""

from __future__ import annotations

from typing import List

from ..predictors.base import Prediction
from .base import Assessment, ConfidenceEstimator


def _popcount(value: int) -> int:
    return bin(value).count("1")


class CIREstimator(ConfidenceEstimator):
    """JRS correct/incorrect shift-register estimator.

    Each table entry is a ``register_bits``-wide shift register of
    prediction outcomes (1 = correct).  A branch is high confidence
    when the number of *incorrect* bits in its register is at most
    ``max_incorrect``.  Indexed like the JRS MDC table: PC XOR the
    consulted history, optionally with the prediction shifted in
    (the same "enhanced" option as :class:`~repro.confidence.jrs.JRSEstimator`).

    Registers start all-incorrect so cold entries are low confidence,
    matching the MDC table's reset-to-zero initialisation.
    """

    def __init__(
        self,
        table_size: int = 4096,
        register_bits: int = 8,
        max_incorrect: int = 0,
        enhanced: bool = True,
    ):
        if table_size < 1 or table_size & (table_size - 1):
            raise ValueError(f"table_size {table_size} must be a power of two")
        if register_bits < 1:
            raise ValueError("register_bits must be >= 1")
        if not 0 <= max_incorrect <= register_bits:
            raise ValueError(
                f"max_incorrect {max_incorrect} outside [0, {register_bits}]"
            )
        self.table_size = table_size
        self.register_bits = register_bits
        self.register_mask = (1 << register_bits) - 1
        self.max_incorrect = max_incorrect
        self.enhanced = enhanced
        self.index_mask = table_size - 1
        self.registers: List[int] = [0] * table_size  # 0 = all incorrect
        self.name = f"cir({register_bits}b,<= {max_incorrect} wrong)"

    def _index(self, pc: int, prediction: Prediction) -> int:
        history = prediction.history
        if self.enhanced:
            history = (history << 1) | (1 if prediction.taken else 0)
        return (pc ^ history) & self.index_mask

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        index = self._index(pc, prediction)
        incorrect = self.register_bits - _popcount(self.registers[index])
        return Assessment(
            high_confidence=incorrect <= self.max_incorrect,
            token=index,
        )

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        index = assessment.token
        outcome_bit = 1 if taken == prediction.taken else 0
        self.registers[index] = (
            (self.registers[index] << 1) | outcome_bit
        ) & self.register_mask

    def reset(self) -> None:
        self.registers = [0] * self.table_size


class DistanceIndexedCIREstimator(ConfidenceEstimator):
    """CIR table indexed by the global misprediction distance (§4.1).

    A single global counter tracks branches since the last detected
    misprediction; its (clamped) value selects which correct/incorrect
    register both assesses the branch and trains on its outcome.  The
    structure deliberately ignores PC and history -- the configuration
    the paper says Jacobsen et al. examined and that underperforms
    because it matches no predictor's indexing.
    """

    def __init__(
        self,
        max_distance: int = 32,
        register_bits: int = 8,
        max_incorrect: int = 1,
    ):
        if max_distance < 1:
            raise ValueError("max_distance must be >= 1")
        if register_bits < 1:
            raise ValueError("register_bits must be >= 1")
        if not 0 <= max_incorrect <= register_bits:
            raise ValueError(
                f"max_incorrect {max_incorrect} outside [0, {register_bits}]"
            )
        self.max_distance = max_distance
        self.register_bits = register_bits
        self.register_mask = (1 << register_bits) - 1
        self.max_incorrect = max_incorrect
        self.registers: List[int] = [0] * (max_distance + 1)
        self.distance = 0
        self.name = f"cir@distance(<= {max_incorrect} wrong)"

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        index = min(self.distance, self.max_distance)
        self.distance += 1
        incorrect = self.register_bits - _popcount(self.registers[index])
        return Assessment(
            high_confidence=incorrect <= self.max_incorrect,
            token=index,
        )

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        index = assessment.token
        correct = taken == prediction.taken
        self.registers[index] = (
            (self.registers[index] << 1) | (1 if correct else 0)
        ) & self.register_mask
        if not correct:
            self.distance = 0

    def reset(self) -> None:
        self.registers = [0] * (self.max_distance + 1)
        self.distance = 0
