"""Confidence estimators: the paper's four families plus its two
contributions (misprediction distance, boosting)."""

from .base import Assessment, ConfidenceEstimator
from .boosting import (
    BoostedEstimator,
    BoostingAccumulator,
    BoostingResult,
    boosted_pvn,
)
from .cir import CIREstimator, DistanceIndexedCIREstimator
from .distance import MispredictionDistanceEstimator
from .jrs import CombiningJRSEstimator, JRSEstimator
from .pattern import PatternHistoryEstimator, lick_confident_patterns
from .saturating import McFarlingVariant, SaturatingCountersEstimator
from .static import (
    StaticEstimator,
    profile_confident_sites,
    profile_site_accuracy,
)
from .tuning import TunedStatic, tune_for_pvn, tune_for_spec

__all__ = [
    "Assessment",
    "ConfidenceEstimator",
    "BoostedEstimator",
    "BoostingAccumulator",
    "BoostingResult",
    "boosted_pvn",
    "CIREstimator",
    "DistanceIndexedCIREstimator",
    "MispredictionDistanceEstimator",
    "CombiningJRSEstimator",
    "JRSEstimator",
    "PatternHistoryEstimator",
    "lick_confident_patterns",
    "McFarlingVariant",
    "SaturatingCountersEstimator",
    "StaticEstimator",
    "profile_confident_sites",
    "profile_site_accuracy",
    "TunedStatic",
    "tune_for_pvn",
    "tune_for_spec",
]
