"""Confidence-estimator interface.

An estimator sees each branch *at prediction time* -- together with the
:class:`~repro.predictors.base.Prediction` record, which carries the
predictor state the paper's inexpensive estimators tap (consulted
counter values, the history register used, the predicted direction) --
and tags it high or low confidence.  When the branch later resolves,
:meth:`ConfidenceEstimator.resolve` lets stateful estimators (JRS's
miss distance counters, the misprediction-distance counter) learn.

As with predictors, squashed wrong-path branches are never resolved,
so estimator tables only train on resolved branches, matching what a
hardware implementation sees.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..predictors.base import Prediction


class Assessment:
    """One confidence estimate plus whatever the estimator must remember
    (for the JRS estimator: the MDC index it read, which for the
    *enhanced* variant depends on the predicted direction)."""

    __slots__ = ("high_confidence", "token")

    def __init__(self, high_confidence: bool, token: Optional[int] = None):
        self.high_confidence = high_confidence
        self.token = token

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        level = "HC" if self.high_confidence else "LC"
        return f"Assessment({level}, token={self.token})"


class ConfidenceEstimator(abc.ABC):
    """Abstract confidence estimator (the paper's diagnostic test)."""

    #: Short name used in tables and experiment output.
    name: str = "estimator"

    @abc.abstractmethod
    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        """Tag the prediction HC/LC (called at fetch, after predict)."""

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        """Learn the branch outcome (called in order at resolution).

        Stateless estimators (saturating counters, pattern, static)
        keep the default no-op.
        """

    def reset(self) -> None:
        """Restore power-on state (re-creating the object also works)."""
