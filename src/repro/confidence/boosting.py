"""Confidence boosting by composing consecutive estimates (paper §4.2).

Because confidence *mis-estimations* are only slightly clustered, the
paper approximates successive estimates as Bernoulli trials over the
few branches resident in a pipeline.  Waiting for ``k`` consecutive
low-confidence estimates then boosts the effective PVN:

    PVN_k = 1 - (1 - PVN)^k

(the probability that *at least one* of the k flagged branches is
mispredicted).  Boosting describes the state of the *pipeline*, not of
one branch: an SMT processor can treat two consecutive LC estimates as
evidence the current thread's instructions will not commit and switch;
an eager-execution core would have to fork at both branches.

Two tools are provided:

* :class:`BoostingAccumulator` measures the empirical boosted PVN of an
  estimator over a measured run (to validate the Bernoulli model);
* :class:`BoostedEstimator` wraps any estimator into one whose LC
  signal fires only after ``k`` consecutive LC estimates (directly
  usable by the speculation-control applications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..predictors.base import Prediction
from .base import Assessment, ConfidenceEstimator


def boosted_pvn(pvn: float, k: int) -> float:
    """Analytic boosted PVN for ``k`` composed low-confidence events."""
    if not 0.0 <= pvn <= 1.0:
        raise ValueError("pvn must be in [0, 1]")
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 - (1.0 - pvn) ** k


@dataclass
class BoostingResult:
    """Empirical vs. analytic boosted PVN for one configuration."""

    k: int
    base_pvn: float
    events: int
    events_with_misprediction: int

    @property
    def empirical_pvn(self) -> float:
        return (
            self.events_with_misprediction / self.events if self.events else 0.0
        )

    @property
    def analytic_pvn(self) -> float:
        return boosted_pvn(self.base_pvn, self.k)


class BoostingAccumulator:
    """Streams (low_confidence, mispredicted) pairs; counts the boosted
    events of every window size in ``ks`` in a single pass.

    A boosted event of size k occurs at each branch ending a run of
    >= k consecutive LC estimates; the event "hits" if any of the k
    branches in the window was mispredicted.
    """

    def __init__(self, ks: List[int]):
        if not ks or any(k < 1 for k in ks):
            raise ValueError("ks must be non-empty positive window sizes")
        self.ks = sorted(set(ks))
        self._window_flags: List[bool] = []  # mispredicted? of current LC run
        self._events = {k: 0 for k in self.ks}
        self._hits = {k: 0 for k in self.ks}
        self._lc_branches = 0
        self._lc_mispredictions = 0

    def observe(self, low_confidence: bool, mispredicted: bool) -> None:
        if not low_confidence:
            self._window_flags.clear()
            return
        self._lc_branches += 1
        if mispredicted:
            self._lc_mispredictions += 1
        self._window_flags.append(mispredicted)
        run = len(self._window_flags)
        for k in self.ks:
            if run >= k:
                self._events[k] += 1
                if any(self._window_flags[-k:]):
                    self._hits[k] += 1

    def results(self) -> List[BoostingResult]:
        base_pvn = (
            self._lc_mispredictions / self._lc_branches if self._lc_branches else 0.0
        )
        return [
            BoostingResult(
                k=k,
                base_pvn=base_pvn,
                events=self._events[k],
                events_with_misprediction=self._hits[k],
            )
            for k in self.ks
        ]


@dataclass
class BoostedEstimator(ConfidenceEstimator):
    """LC only after ``k`` consecutive LC estimates from ``base``.

    The wrapped estimator still sees every resolve, so its internal
    state (e.g. JRS MDCs) trains exactly as when used alone.
    """

    base: ConfidenceEstimator
    k: int = 2
    _lc_run: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        self.name = f"boost{self.k}({self.base.name})"

    def estimate(self, pc: int, prediction: Prediction) -> Assessment:
        inner = self.base.estimate(pc, prediction)
        if inner.high_confidence:
            self._lc_run = 0
        else:
            self._lc_run += 1
        boosted_low = self._lc_run >= self.k
        return Assessment(high_confidence=not boosted_low, token=inner)

    def resolve(
        self,
        pc: int,
        prediction: Prediction,
        taken: bool,
        assessment: Assessment,
    ) -> None:
        self.base.resolve(pc, prediction, taken, assessment.token)

    def reset(self) -> None:
        self._lc_run = 0
        self.base.reset()
