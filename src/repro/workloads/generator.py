"""Profile-driven synthetic workload generator.

Turns a :class:`WorkloadProfile` (a statistical description of a
benchmark's branch population) into a real, runnable assembly program:
an outer loop that advances a program-internal LCG and visits every
branch site once per iteration, optionally through subroutine calls and
behind data-dependent guards.

The generated text is fed through the ordinary assembler, so workloads
exercise exactly the path a user porting their own kernels would use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import Program, assemble
from .sites import FIELD_RANGE, BranchSite

#: LCG constants (Numerical Recipes); full-period mod 2^32.
LCG_MULTIPLIER = 1664525
LCG_INCREMENT = 1013904223


@dataclass(frozen=True)
class GuardSpec:
    """Optional data-dependent guard around a site block.

    The guard itself is a conditional branch (taken = skip the block)
    with bias ``1 - threshold/1024``; guarded blocks make the global
    path, and therefore the history register contents, vary from
    iteration to iteration as it does in irregular integer code.
    """

    field_shift: int
    threshold: int


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one synthetic benchmark.

    ``sites`` are visited in order once per outer-loop iteration
    (unless guarded).  ``guards`` maps site index -> :class:`GuardSpec`.
    """

    name: str
    description: str
    sites: Tuple[BranchSite, ...]
    guards: Dict[int, GuardSpec] = field(default_factory=dict)
    #: Group sites into subroutines of this many blocks (0 = inline).
    subroutine_group: int = 0
    #: Seed for the program-internal LCG.
    lcg_seed: int = 0x2545F491
    #: Seed for generator-side randomness (array contents).
    data_seed: int = 12345
    #: Default outer-loop iteration count.
    default_iterations: int = 300

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("profile needs at least one branch site")
        for index in self.guards:
            if not 0 <= index < len(self.sites):
                raise ValueError(f"guard index {index} out of range")


class ProgramBuilder:
    """Accumulates code and data while sites emit their blocks."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._label_counter = 0
        self._data_lines: List[str] = []
        self._data_labels: set = set()

    def fresh_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def add_data_table(self, label: str, words: Sequence[int]) -> str:
        """Add a labelled table of words to the data segment."""
        if label in self._data_labels:
            raise ValueError(f"duplicate data label {label!r}")
        self._data_labels.add(label)
        rendered = ", ".join(str(word) for word in words)
        self._data_lines.append(f"{label}: .word {rendered}")
        return label

    def add_data_table_of_labels(self, label: str, names: Sequence[str]) -> str:
        """Add a jump table: a labelled array of code-label addresses."""
        if label in self._data_labels:
            raise ValueError(f"duplicate data label {label!r}")
        self._data_labels.add(label)
        rendered = ", ".join(names)
        self._data_lines.append(f"{label}: .word {rendered}")
        return label

    def add_random_array(self, label: str, words: int) -> str:
        """Add an array of seeded-random values in [0, FIELD_RANGE)."""
        values = [self._rng.randrange(FIELD_RANGE) for __ in range(words)]
        return self.add_data_table(label, values)

    @staticmethod
    def emit_lcg_advance() -> List[str]:
        """Step the program-internal LCG held in r20 (multiplier in r21)."""
        return [
            "mul r20, r20, r21",
            f"addi r20, r20, {LCG_INCREMENT}",
        ]

    @property
    def data_lines(self) -> List[str]:
        return list(self._data_lines)


def generate_source(
    profile: WorkloadProfile, iterations: Optional[int] = None
) -> str:
    """Render ``profile`` as assembly source text."""
    iterations = profile.default_iterations if iterations is None else iterations
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    builder = ProgramBuilder(random.Random(profile.data_seed))

    blocks: List[List[str]] = []
    for index, site in enumerate(profile.sites):
        block = site.emit(builder, index)
        guard = profile.guards.get(index)
        if guard is not None:
            skip = builder.fresh_label(f"guard{index}_skip")
            block = (
                [
                    f"srli r1, r20, {guard.field_shift}",
                    f"andi r1, r1, {FIELD_RANGE - 1}",
                    f"li r2, {guard.threshold}",
                    f"bge r1, r2, {skip}",
                ]
                + block
                + [f"{skip}:"]
            )
        blocks.append(block)

    body: List[str] = []
    subroutines: List[str] = []
    group = profile.subroutine_group
    if group > 0:
        for group_index in range(0, len(blocks), group):
            name = f"sub_{group_index // group}"
            body.append(f"jal {name}")
            subroutines.append(f"{name}:")
            for block in blocks[group_index : group_index + group]:
                subroutines.extend(block)
            subroutines.append("jr r31")
    else:
        for block in blocks:
            body.extend(block)

    lines: List[str] = [
        f"; synthetic workload '{profile.name}': {profile.description}",
        ".text",
        "start:",
        f"li r20, {profile.lcg_seed}",
        f"li r21, {LCG_MULTIPLIER}",
        f"li r10, {iterations}",
        "main_loop:",
    ]
    lines.extend(ProgramBuilder.emit_lcg_advance())
    lines.extend(body)
    lines.extend(
        [
            "addi r10, r10, -1",
            "bne r10, r0, main_loop",
            "halt",
        ]
    )
    lines.extend(subroutines)
    data_lines = builder.data_lines
    if data_lines:
        lines.append(".data")
        lines.extend(data_lines)
    return "\n".join(lines) + "\n"


def generate_program(
    profile: WorkloadProfile, iterations: Optional[int] = None
) -> Program:
    """Generate and assemble ``profile`` into a runnable program."""
    source = generate_source(profile, iterations)
    return assemble(source, name=profile.name)
