"""Synthetic SPECint95-like workload substrate."""

from .generator import (
    GuardSpec,
    ProgramBuilder,
    WorkloadProfile,
    generate_program,
    generate_source,
)
from .profiles import SUITE, all_profiles, get_profile
from .sites import (
    AlternatingSite,
    BiasedSite,
    BranchSite,
    CorrelatedSite,
    LoopSite,
    PatternSite,
    SwitchSite,
    WalkSite,
)
from .trace import BranchTrace, convert_text_trace

__all__ = [
    "GuardSpec",
    "ProgramBuilder",
    "WorkloadProfile",
    "generate_program",
    "generate_source",
    "SUITE",
    "all_profiles",
    "get_profile",
    "AlternatingSite",
    "BiasedSite",
    "BranchSite",
    "CorrelatedSite",
    "LoopSite",
    "PatternSite",
    "SwitchSite",
    "WalkSite",
    "BranchTrace",
    "convert_text_trace",
]
