"""Branch-trace container and on-disk format.

The paper's methodology records a "speculative trace": the prediction
and eventual outcome of every conditional branch.  The ground truth
part (branch site, actual direction) is independent of any predictor,
so we capture it once per workload as a :class:`BranchTrace` and replay
it under many predictor/estimator configurations.

Traces can be persisted in a compact binary format (``.rbt``) so that
externally produced traces can be *converted* into this format and fed
to the same measurement machinery (see :func:`convert_text_trace`).
"""

from __future__ import annotations

import gzip
import io
import struct
from array import array
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

MAGIC = b"RBT1"
_HEADER = struct.Struct("<4sII")  # magic, record count, flags
_RECORD = struct.Struct("<IB")  # pc (instruction index), taken flag


@dataclass
class BranchTrace:
    """Committed conditional-branch stream of one program run.

    ``pcs[i]`` is the instruction index of the i-th dynamic branch and
    ``outcomes[i]`` is 1 if it was taken.  Stored as compact arrays:
    a million-branch trace costs ~5 MB.
    """

    pcs: array
    outcomes: bytearray
    name: str = "trace"

    def __post_init__(self) -> None:
        if len(self.pcs) != len(self.outcomes):
            raise ValueError("pcs and outcomes length mismatch")

    @classmethod
    def empty(cls, name: str = "trace") -> "BranchTrace":
        return cls(pcs=array("L"), outcomes=bytearray(), name=name)

    @classmethod
    def from_records(
        cls, records: Iterable[Tuple[int, bool]], name: str = "trace"
    ) -> "BranchTrace":
        trace = cls.empty(name)
        append_pc = trace.pcs.append
        append_outcome = trace.outcomes.append
        for pc, taken in records:
            append_pc(pc)
            append_outcome(1 if taken else 0)
        return trace

    def append(self, pc: int, taken: bool) -> None:
        self.pcs.append(pc)
        self.outcomes.append(1 if taken else 0)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, bool]]:
        outcomes = self.outcomes
        for index, pc in enumerate(self.pcs):
            yield pc, bool(outcomes[index])

    def __getitem__(self, index: int) -> Tuple[int, bool]:
        return self.pcs[index], bool(self.outcomes[index])

    @property
    def taken_count(self) -> int:
        return sum(self.outcomes)

    @property
    def taken_rate(self) -> float:
        return self.taken_count / len(self) if len(self) else 0.0

    def static_sites(self) -> List[int]:
        """Distinct static branch sites appearing in the trace."""
        return sorted(set(self.pcs))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the trace to ``path`` (gzip-compressed iff ``.gz``)."""
        opener = gzip.open if path.endswith(".gz") else open
        with opener(path, "wb") as handle:
            self._write(handle)

    def _write(self, handle: BinaryIO) -> None:
        handle.write(_HEADER.pack(MAGIC, len(self), 0))
        pack = _RECORD.pack
        outcomes = self.outcomes
        buffer = io.BytesIO()
        for index, pc in enumerate(self.pcs):
            buffer.write(pack(pc, outcomes[index]))
        handle.write(buffer.getvalue())

    @classmethod
    def load(cls, path: str, name: Union[str, None] = None) -> "BranchTrace":
        """Read a trace previously written by :meth:`save`."""
        opener = gzip.open if path.endswith(".gz") else open
        with opener(path, "rb") as handle:
            data = handle.read()
        magic, count, __ = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            raise ValueError(f"{path!r} is not a branch trace (bad magic)")
        expected = _HEADER.size + count * _RECORD.size
        if len(data) < expected:
            raise ValueError(f"{path!r} truncated: {len(data)} < {expected} bytes")
        trace = cls.empty(name or path)
        offset = _HEADER.size
        unpack = _RECORD.unpack_from
        for __ in range(count):
            pc, taken = unpack(data, offset)
            trace.pcs.append(pc)
            trace.outcomes.append(1 if taken else 0)
            offset += _RECORD.size
        return trace


def convert_text_trace(lines: Iterable[str], name: str = "converted") -> BranchTrace:
    """Convert a simple textual trace into a :class:`BranchTrace`.

    Accepts one branch per line: ``<pc> <T|N|1|0>`` with ``#`` comments,
    the common denominator of published trace dumps.  This is the
    conversion hook for users bringing traces from other simulators.
    """
    trace = BranchTrace.empty(name)
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split("#")[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"line {line_no}: expected '<pc> <T|N>', got {raw!r}")
        pc_text, outcome_text = parts
        pc = int(pc_text, 0)
        outcome_text = outcome_text.upper()
        if outcome_text in ("T", "1"):
            taken = True
        elif outcome_text in ("N", "0"):
            taken = False
        else:
            raise ValueError(f"line {line_no}: bad outcome {outcome_text!r}")
        trace.append(pc, taken)
    return trace
