"""The eight SPECint95-like benchmark profiles.

The paper evaluates on SPECint95 (compress, gcc, perl, go, m88ksim,
xlisp, vortex, ijpeg).  Each profile below is a *statistical stand-in*:
a branch-site population whose mix of biases, correlations, loops and
patterns is chosen so that the predictability ordering and rough
accuracy levels of the suite match the paper's Table 1 (vortex and
m88ksim easiest, go hardest, the rest near 90% under gshare), and so
that each benchmark stresses a different corner of the
predictor/estimator design space.

Two properties of real integer code are modelled deliberately because
the confidence-estimation results depend on them:

* **Bias skew** -- the median branch is right ~95% of the time; a small
  minority of weakly biased branches produces most mispredictions.
  Site biases come from an easy/medium/hard mixture, not a uniform
  draw.
* **Locality of difficulty** -- hard branches concentrate in hot
  regions (the paper's misprediction *clustering*, §4.1).  Each
  profile therefore lays out a mostly-stable region of easy sites and
  a contiguous "noisy" region holding the weakly biased and correlated
  sites.  This also keeps global-history contexts repeatable enough for
  a 4096-entry gshare to train, as in real code.

Hard-but-learnable branches are generated as *correlated clusters*
(:func:`_correlated_cluster`): a ~50/50 leader plus followers testing
related conditions on the same datum, which global-history predictors
exploit and bimodal predictors cannot -- the actual source of gshare's
advantage on integer code.

All profiles are deterministic: site parameters are drawn from a
benchmark-specific seeded RNG, so every run of the suite sees the same
programs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from .generator import GuardSpec, WorkloadProfile
from .sites import (
    MAX_FIELD_SHIFT,
    MIN_FIELD_SHIFT,
    AlternatingSite,
    BiasedSite,
    BranchSite,
    CorrelatedSite,
    LoopSite,
    PatternSite,
    SwitchSite,
    WalkSite,
)

#: Benchmarks in the order the paper lists them.
SUITE: Tuple[str, ...] = (
    "compress",
    "gcc",
    "perl",
    "go",
    "m88ksim",
    "xlisp",
    "vortex",
    "jpeg",
)

#: Bias ranges of the three site difficulty classes.
EASY_BIAS = (0.94, 0.998)
MEDIUM_BIAS = (0.82, 0.94)
HARD_BIAS = (0.55, 0.78)


def _threshold(bias: float) -> int:
    """Convert a taken-bias in [0,1] to a 10-bit field threshold."""
    return max(0, min(1024, round(bias * 1024)))


def _shift(rng: random.Random) -> int:
    return rng.randint(MIN_FIELD_SHIFT, MAX_FIELD_SHIFT)


def _biased(rng: random.Random, low: float, high: float, **kwargs) -> BiasedSite:
    bias = rng.uniform(low, high)
    # branches are taken- or not-taken-biased with equal probability
    if rng.random() < 0.5:
        bias = 1.0 - bias
    return BiasedSite(threshold=_threshold(bias), field_shift=_shift(rng), **kwargs)


def _easy(rng: random.Random, count: int) -> List[BranchSite]:
    return [_biased(rng, *EASY_BIAS) for __ in range(count)]


def _medium(rng: random.Random, count: int) -> List[BranchSite]:
    return [_biased(rng, *MEDIUM_BIAS) for __ in range(count)]


def _hard(rng: random.Random, count: int) -> List[BranchSite]:
    return [_biased(rng, *HARD_BIAS) for __ in range(count)]


def _chaotic(
    rng: random.Random, count: int, low: float = 0.52, high: float = 0.70
) -> List[BranchSite]:
    # chaotic sites draw fresh LCG entropy so even global history
    # carries no information about them
    return [_biased(rng, low, high, advance_lcg=True) for __ in range(count)]


def _correlated_cluster(
    rng: random.Random, followers: int = 2, exact_fraction: float = 0.4
) -> List[BranchSite]:
    """A weakly biased leader plus followers on the same LCG field.

    The leader is close to 50/50 (a genuine data-dependent decision);
    the followers test related conditions on the same datum.  A
    global-history predictor sees the leader's direction in its history
    register and predicts the followers well; a bimodal or purely
    local-history predictor only sees the followers' weak marginal
    bias.  With probability ``exact_fraction`` a follower repeats the
    leader's threshold exactly (fully implied outcome); otherwise its
    threshold brackets the leader's (partially implied).
    """
    shift = _shift(rng)
    lead_threshold = rng.randint(320, 704)  # leader bias ~0.31-0.69
    sites: List[BranchSite] = [
        BiasedSite(threshold=lead_threshold, field_shift=shift)
    ]
    for __ in range(followers):
        if rng.random() < exact_fraction:
            follow_threshold = lead_threshold
        else:
            follow_threshold = min(
                974, max(50, lead_threshold + rng.randint(-220, 220))
            )
        sites.append(
            CorrelatedSite(threshold=follow_threshold, field_shift=shift)
        )
    return sites


def _clusters(
    rng: random.Random, count: int, followers: int = 2, exact_fraction: float = 0.4
) -> List[BranchSite]:
    sites: List[BranchSite] = []
    for __ in range(count):
        sites.extend(
            _correlated_cluster(rng, followers=followers, exact_fraction=exact_fraction)
        )
    return sites


def _pattern(rng: random.Random, min_len: int = 3, max_len: int = 8) -> PatternSite:
    length = rng.randint(min_len, max_len)
    bits = tuple(rng.randint(0, 1) for __ in range(length))
    if all(bit == bits[0] for bit in bits):  # avoid degenerate all-same
        bits = bits[:-1] + (1 - bits[0],)
    return PatternSite(pattern=bits)


def _patterns(rng: random.Random, count: int, min_len: int = 3, max_len: int = 8) -> List[BranchSite]:
    return [_pattern(rng, min_len, max_len) for __ in range(count)]


def _arrange(
    rng: random.Random,
    stable: Sequence[BranchSite],
    regular: Sequence[BranchSite],
    noisy: Sequence[BranchSite],
    filler_per_noisy: int = 2,
) -> List[BranchSite]:
    """Lay out a profile: stable region with regular sites sprinkled in,
    then the noisy (hot) region -- the locality-of-difficulty structure
    described in the module docstring.

    Within the noisy region each noisy site is followed by
    ``filler_per_noisy`` easy sites.  Real hot regions look like this
    too (error checks between the hard decisions), and it bounds the
    number of entropy bits a 12-branch global-history window can
    accumulate, so history-indexed tables still train.  Correlated
    clusters are kept adjacent: filler goes after CorrelatedSite
    followers, never between a leader and its followers.
    """
    stable = list(stable)
    regular = list(regular)
    noisy = list(noisy)
    rng.shuffle(stable)
    rng.shuffle(regular)
    laid_out = list(stable)
    for site in regular:
        laid_out.insert(rng.randrange(len(laid_out) + 1), site)
    for index, site in enumerate(noisy):
        laid_out.append(site)
        next_is_follower = index + 1 < len(noisy) and isinstance(
            noisy[index + 1], CorrelatedSite
        )
        if not next_is_follower:
            laid_out.extend(_easy(rng, filler_per_noisy))
    return laid_out


def _sparse_guards(
    rng: random.Random,
    site_count: int,
    how_many: int,
    low: float = 0.80,
    high: float = 0.96,
) -> Dict[int, GuardSpec]:
    """Guards that *rarely* skip their block (high execute probability),
    so the per-iteration path stays mostly repeatable."""
    how_many = min(how_many, site_count)
    return {
        index: GuardSpec(
            field_shift=_shift(rng), threshold=_threshold(rng.uniform(low, high))
        )
        for index in rng.sample(range(site_count), how_many)
    }


def _compress() -> WorkloadProfile:
    rng = random.Random(0xC0301)
    stable = _easy(rng, 15)
    regular = [LoopSite(trip_min=6, trip_max=6), LoopSite(trip_min=3, trip_max=11)]
    noisy = (
        _medium(rng, 4)
        + _hard(rng, 1)
        + _chaotic(rng, 1)
        + _clusters(rng, 3, followers=2)
        + [
            WalkSite(array_words=1536, stride=7, threshold=_threshold(0.85)),
            WalkSite(array_words=2048, stride=13, threshold=_threshold(0.70)),
        ]
    )
    sites = _arrange(rng, stable, regular, noisy)
    guards = _sparse_guards(rng, len(stable), 2)
    return WorkloadProfile(
        name="compress",
        description="LZW-style coder: table-hit branches, data-driven walks",
        sites=tuple(sites),
        guards=guards,
        data_seed=101,
        default_iterations=800,
    )


def _gcc() -> WorkloadProfile:
    rng = random.Random(0x6CC)
    stable = _easy(rng, 72)
    regular = _patterns(rng, 4) + [
        LoopSite(trip_min=4, trip_max=4),
        LoopSite(trip_min=2, trip_max=9),
        LoopSite(trip_min=3, trip_max=3),
        LoopSite(trip_min=2, trip_max=7),
        SwitchSite(cases=4, field_shift=_shift(rng)),  # AST-node dispatch
    ]
    noisy = (
        _medium(rng, 14)
        + _hard(rng, 3)
        + _chaotic(rng, 3)
        + _clusters(rng, 12, followers=2)
    )
    sites = _arrange(rng, stable, regular, noisy)
    guards = _sparse_guards(rng, len(stable), 8)
    return WorkloadProfile(
        name="gcc",
        description="compiler: very many moderately biased static branches",
        sites=tuple(sites),
        guards=guards,
        subroutine_group=10,
        data_seed=102,
        default_iterations=500,
    )


def _perl() -> WorkloadProfile:
    rng = random.Random(0x9E21)
    stable = _easy(rng, 26)
    regular = _patterns(rng, 6, 2, 6) + [
        AlternatingSite(),
        SwitchSite(cases=8, field_shift=_shift(rng)),  # opcode dispatch
    ]
    noisy = (
        _medium(rng, 6)
        + _hard(rng, 1)
        + _chaotic(rng, 1)
        + _clusters(rng, 5, followers=1)
    )
    sites = _arrange(rng, stable, regular, noisy)
    guards = _sparse_guards(rng, len(stable), 3)
    return WorkloadProfile(
        name="perl",
        description="interpreter: dispatch patterns plus biased opcode checks",
        sites=tuple(sites),
        guards=guards,
        subroutine_group=8,
        data_seed=103,
        default_iterations=600,
    )


def _go() -> WorkloadProfile:
    rng = random.Random(0x60)
    stable = _easy(rng, 24)
    regular = [LoopSite(trip_min=2, trip_max=7), LoopSite(trip_min=3, trip_max=3)]
    noisy = (
        _medium(rng, 8)
        + _hard(rng, 6)
        + _chaotic(rng, 16, low=0.50, high=0.60)
        + _clusters(rng, 7, followers=1, exact_fraction=0.25)
        + [
            WalkSite(array_words=4096, stride=17, threshold=_threshold(0.5)),
            WalkSite(array_words=3072, stride=5, threshold=_threshold(0.62)),
        ]
    )
    sites = _arrange(rng, stable, regular, noisy)
    guards = _sparse_guards(rng, len(stable), 6, low=0.70, high=0.90)
    return WorkloadProfile(
        name="go",
        description="game tree evaluation: chaotic, weakly biased branches",
        sites=tuple(sites),
        guards=guards,
        data_seed=104,
        default_iterations=420,
    )


def _m88ksim() -> WorkloadProfile:
    rng = random.Random(0x88)
    stable = _easy(rng, 31)
    regular = (
        [LoopSite(trip_min=4, trip_max=4) for __ in range(5)]
        + _patterns(rng, 3, 2, 4)
        + [AlternatingSite()]
    )
    noisy = _medium(rng, 3) + _hard(rng, 1) + _clusters(rng, 2, followers=2, exact_fraction=0.6)
    sites = _arrange(rng, stable, regular, noisy)
    return WorkloadProfile(
        name="m88ksim",
        description="CPU simulator: highly regular decode/dispatch branches",
        sites=tuple(sites),
        data_seed=105,
        default_iterations=700,
    )


def _xlisp() -> WorkloadProfile:
    rng = random.Random(0x715)
    stable = _easy(rng, 27)
    regular = _patterns(rng, 4, 2, 5) + [
        LoopSite(trip_min=2, trip_max=6),
        LoopSite(trip_min=3, trip_max=3),
    ]
    noisy = (
        _medium(rng, 7)
        + _hard(rng, 1)
        + _chaotic(rng, 1)
        + _clusters(rng, 7, followers=1, exact_fraction=0.5)
    )
    sites = _arrange(rng, stable, regular, noisy)
    guards = _sparse_guards(rng, len(stable), 3)
    return WorkloadProfile(
        name="xlisp",
        description="lisp interpreter: type-check chains, recursive patterns",
        sites=tuple(sites),
        guards=guards,
        subroutine_group=9,
        data_seed=106,
        default_iterations=600,
    )


def _vortex() -> WorkloadProfile:
    rng = random.Random(0x0DB)
    stable = _easy(rng, 51)
    regular = [LoopSite(trip_min=5, trip_max=5) for __ in range(6)]
    noisy = _medium(rng, 4) + _clusters(rng, 2, followers=1, exact_fraction=0.7)
    sites = _arrange(rng, stable, regular, noisy)
    return WorkloadProfile(
        name="vortex",
        description="OO database: validation branches that almost never fire",
        sites=tuple(sites),
        subroutine_group=12,
        data_seed=107,
        default_iterations=520,
    )


def _jpeg() -> WorkloadProfile:
    rng = random.Random(0x396)
    stable = _easy(rng, 16)
    regular = [LoopSite(trip_min=8, trip_max=8) for __ in range(6)] + [
        LoopSite(trip_min=3, trip_max=12) for __ in range(4)
    ]
    noisy = (
        _medium(rng, 4)
        + _hard(rng, 1)
        + _chaotic(rng, 1)
        + _clusters(rng, 2, followers=1)
        + [
            WalkSite(array_words=2560, stride=11, threshold=_threshold(0.80)),
            WalkSite(array_words=1024, stride=3, threshold=_threshold(0.55)),
        ]
    )
    sites = _arrange(rng, stable, regular, noisy)
    return WorkloadProfile(
        name="jpeg",
        description="image coder: long counted loops over pixel data",
        sites=tuple(sites),
        data_seed=108,
        default_iterations=520,
    )


_FACTORIES: Dict[str, Callable[[], WorkloadProfile]] = {
    "compress": _compress,
    "gcc": _gcc,
    "perl": _perl,
    "go": _go,
    "m88ksim": _m88ksim,
    "xlisp": _xlisp,
    "vortex": _vortex,
    "jpeg": _jpeg,
}


def get_profile(name: str) -> WorkloadProfile:
    """Return the named benchmark profile (see :data:`SUITE`)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(SUITE)}"
        ) from None
    return factory()


def all_profiles() -> List[WorkloadProfile]:
    """All eight benchmark profiles in paper order."""
    return [get_profile(name) for name in SUITE]
