"""Branch-site behaviour models for the synthetic workload generator.

The paper's evaluation runs SPECint95; what the confidence-estimation
results actually depend on is the *statistical character of the branch
stream*: how many static sites exist, how biased each is, how outcomes
correlate with global/local history, and how much wrong-path code a
misprediction exposes.  Each class below describes one static branch
site's behaviour and knows how to emit real ISA code for it, so the
generated workloads are ordinary executable programs rather than traces.

Site kinds and the predictor behaviour they induce:

``BiasedSite``
    Branch on a pseudo-random bit-field (program-internal LCG) compared
    against a threshold.  Predictable only up to its bias -- this is the
    "hard" population that creates mispredictions.
``CorrelatedSite``
    Re-uses the bit-field of an *earlier* site in the same iteration
    with a different threshold: its outcome is (partially) implied by a
    branch already in the global history, so two-level predictors beat
    bimodal ones here, as on real integer code.
``PatternSite``
    Deterministic repeating taken/not-taken pattern read from a data
    table.  Learnable by history-based predictors; also the population
    the Lick et al. pattern-history confidence estimator keys on.
``LoopSite``
    An inner counted loop; its backward branch is taken ``trip-1``
    times then falls through.  Trip counts may be fixed or drawn from
    the LCG, modelling for-loops with data-dependent bounds.
``AlternatingSite``
    Strict T/N/T/N alternation -- the classic two-bit-counter killer
    that two-level predictors learn perfectly.
``WalkSite``
    Strides through a large pre-initialised random array and branches
    on the loaded value; adds data-cache traffic and a second source of
    hard-to-predict outcomes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .generator import ProgramBuilder

#: Width (bits) of the pseudo-random field sites extract from the LCG.
FIELD_BITS = 10
FIELD_RANGE = 1 << FIELD_BITS

#: LCG shifts below this reuse low-entropy LCG bits; sites must not.
MIN_FIELD_SHIFT = 12
MAX_FIELD_SHIFT = 21


class BranchSite(abc.ABC):
    """One static conditional-branch site of a synthetic workload."""

    @abc.abstractmethod
    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        """Emit the assembly block realising this site.

        ``index`` is the site's position in the profile (used to make
        labels unique).  Returns a list of assembly source lines.
        """

    def data_words(self) -> int:
        """Approximate data-segment footprint, for documentation."""
        return 0


def _check_shift(shift: int) -> int:
    if not MIN_FIELD_SHIFT <= shift <= MAX_FIELD_SHIFT:
        raise ValueError(
            f"field shift {shift} outside safe LCG bit range "
            f"[{MIN_FIELD_SHIFT}, {MAX_FIELD_SHIFT}]"
        )
    return shift


def _check_threshold(threshold: int) -> int:
    if not 0 <= threshold <= FIELD_RANGE:
        raise ValueError(f"threshold {threshold} outside [0, {FIELD_RANGE}]")
    return threshold


@dataclass(frozen=True)
class BiasedSite(BranchSite):
    """Taken iff a fresh pseudo-random field is below ``threshold``.

    ``threshold / 1024`` is the taken bias.  With ``advance_lcg`` the
    site steps the LCG before extracting its field, decorrelating it
    from every other site (used for "go"-like chaotic branches).
    """

    threshold: int
    field_shift: int = 14
    advance_lcg: bool = False

    def __post_init__(self) -> None:
        _check_threshold(self.threshold)
        _check_shift(self.field_shift)

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        lines: List[str] = []
        if self.advance_lcg:
            lines.extend(builder.emit_lcg_advance())
        skip = builder.fresh_label(f"bias{index}_nt")
        lines.extend(
            [
                f"srli r1, r20, {self.field_shift}",
                f"andi r1, r1, {FIELD_RANGE - 1}",
                f"li r2, {self.threshold}",
                f"bge r1, r2, {skip}",
                "addi r9, r9, 1",  # taken-path work
                f"{skip}:",
            ]
        )
        return lines


@dataclass(frozen=True)
class CorrelatedSite(BranchSite):
    """Biased site that *shares* its field with an earlier site.

    Pass the same ``field_shift`` as the earlier site (and do not
    advance the LCG in between): when ``threshold`` equals the earlier
    site's, the outcome repeats exactly; otherwise the earlier outcome
    bounds this one, giving the partial correlation history-based
    predictors exploit on real code.
    """

    threshold: int
    field_shift: int

    def __post_init__(self) -> None:
        _check_threshold(self.threshold)
        _check_shift(self.field_shift)

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        skip = builder.fresh_label(f"corr{index}_nt")
        return [
            f"srli r1, r20, {self.field_shift}",
            f"andi r1, r1, {FIELD_RANGE - 1}",
            f"li r2, {self.threshold}",
            f"bge r1, r2, {skip}",
            "addi r9, r9, 3",
            f"{skip}:",
        ]


@dataclass(frozen=True)
class PatternSite(BranchSite):
    """Deterministic repeating taken(1)/not-taken(0) pattern."""

    pattern: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("pattern must be non-empty")
        if any(bit not in (0, 1) for bit in self.pattern):
            raise ValueError("pattern entries must be 0 or 1")

    def data_words(self) -> int:
        return len(self.pattern) + 1  # table + cursor

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        table = builder.add_data_table(f"pat{index}", list(self.pattern))
        cursor = builder.add_data_table(f"pat{index}_cur", [0])
        wrap = builder.fresh_label(f"pat{index}_wrap")
        skip = builder.fresh_label(f"pat{index}_nt")
        return [
            f"la r3, {cursor}",
            "lw r1, 0(r3)",  # cursor value
            f"la r4, {table}",
            "add r4, r4, r1",
            "lw r2, 0(r4)",  # pattern bit for this visit
            "addi r1, r1, 1",
            f"li r5, {len(self.pattern)}",
            f"blt r1, r5, {wrap}",  # cursor wrap branch (loop-like)
            "add r1, r0, r0",
            f"{wrap}:",
            "sw r1, 0(r3)",
            f"bne r2, r0, {skip}",  # the pattern branch: taken iff bit == 1
            "addi r9, r9, 5",
            f"{skip}:",
        ]


@dataclass(frozen=True)
class LoopSite(BranchSite):
    """Inner counted loop; back-branch taken ``trip-1`` times per visit.

    With ``trip_max > trip_min`` the trip count is LCG-modulated, which
    makes the final not-taken occurrence hard to pin down -- the classic
    loop-exit misprediction.
    """

    trip_min: int
    trip_max: int
    field_shift: int = 16

    def __post_init__(self) -> None:
        if self.trip_min < 1 or self.trip_max < self.trip_min:
            raise ValueError("need 1 <= trip_min <= trip_max")
        _check_shift(self.field_shift)

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        head = builder.fresh_label(f"loop{index}_head")
        lines = [f"li r6, {self.trip_min}"]
        spread = self.trip_max - self.trip_min
        if spread:
            mask = _next_pow2_mask(spread)
            lines.extend(
                [
                    f"srli r1, r20, {self.field_shift}",
                    f"andi r1, r1, {mask}",
                    f"li r2, {spread + 1}",
                    # r1 mod (spread+1) via conditional subtract (mask < 2*(spread+1))
                    f"blt r1, r2, {head}_nosub",
                    "sub r1, r1, r2",
                    f"{head}_nosub:",
                    "add r6, r6, r1",
                ]
            )
        lines.extend(
            [
                f"{head}:",
                "addi r9, r9, 1",  # loop body work
                "addi r6, r6, -1",
                f"bne r6, r0, {head}",
            ]
        )
        return lines


@dataclass(frozen=True)
class AlternatingSite(BranchSite):
    """Outcome strictly alternates taken / not-taken across visits."""

    def data_words(self) -> int:
        return 1

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        cell = builder.add_data_table(f"alt{index}", [0])
        skip = builder.fresh_label(f"alt{index}_nt")
        return [
            f"la r3, {cell}",
            "lw r1, 0(r3)",
            "xori r1, r1, 1",
            "sw r1, 0(r3)",
            f"beq r1, r0, {skip}",
            "addi r9, r9, 7",
            f"{skip}:",
        ]


@dataclass(frozen=True)
class WalkSite(BranchSite):
    """Stride through a random array; branch on the loaded value.

    The array is filled by the generator's seeded RNG with values in
    ``[0, 1024)``; the branch is taken iff the value is below
    ``threshold``.  Large arrays also produce data-cache misses in the
    pipeline model, perturbing branch-resolution timing as real loads do.
    """

    array_words: int
    stride: int
    threshold: int

    def __post_init__(self) -> None:
        if self.array_words < 1:
            raise ValueError("array_words must be >= 1")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        _check_threshold(self.threshold)

    def data_words(self) -> int:
        return self.array_words + 1

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        array = builder.add_random_array(f"walk{index}", self.array_words)
        cursor = builder.add_data_table(f"walk{index}_cur", [0])
        wrap = builder.fresh_label(f"walk{index}_wrap")
        skip = builder.fresh_label(f"walk{index}_nt")
        return [
            f"la r3, {cursor}",
            "lw r1, 0(r3)",
            f"la r4, {array}",
            "add r4, r4, r1",
            "lw r2, 0(r4)",  # array value
            f"addi r1, r1, {self.stride}",
            f"li r5, {self.array_words}",
            f"blt r1, r5, {wrap}",
            "sub r1, r1, r5",
            f"{wrap}:",
            "sw r1, 0(r3)",
            f"li r5, {self.threshold}",
            f"bge r2, r5, {skip}",
            "addi r9, r9, 11",
            f"{skip}:",
        ]


@dataclass(frozen=True)
class SwitchSite(BranchSite):
    """Computed multi-way dispatch through a jump table (``jr``).

    Models interpreter/compiler dispatch: a pseudo-random case selector
    indexes a table of code addresses and an indirect jump lands in one
    of ``cases`` bodies.  The dispatch itself is an *unconditional*
    indirect jump, so it does not enter the conditional-branch
    statistics -- its value is control-flow realism: a wrong path that
    reaches the dispatch with stale registers flies off to an arbitrary
    case (or out of the program), exactly the front-end behaviour that
    makes real wrong paths interesting.  Each case body ends with a
    biased conditional branch so the dispatch also diversifies the
    global history.
    """

    cases: int
    field_shift: int = 15
    threshold: int = 720

    def __post_init__(self) -> None:
        if self.cases < 2 or self.cases & (self.cases - 1):
            raise ValueError("cases must be a power of two >= 2")
        if self.cases > 16:
            raise ValueError("at most 16 cases supported")
        _check_shift(self.field_shift)
        _check_threshold(self.threshold)

    def data_words(self) -> int:
        return self.cases

    def emit(self, builder: "ProgramBuilder", index: int) -> List[str]:
        case_labels = [
            builder.fresh_label(f"sw{index}_case{case}") for case in range(self.cases)
        ]
        table = builder.add_data_table_of_labels(f"sw{index}_tab", case_labels)
        merge = builder.fresh_label(f"sw{index}_merge")
        lines = [
            f"srli r1, r20, {self.field_shift}",
            f"andi r1, r1, {self.cases - 1}",
            f"la r3, {table}",
            "add r3, r3, r1",
            "lw r2, 0(r3)",
            "jr r2",
        ]
        for case, label in enumerate(case_labels):
            skip = builder.fresh_label(f"sw{index}_c{case}_nt")
            lines.extend(
                [
                    f"{label}:",
                    f"addi r9, r9, {case + 1}",
                    f"srli r1, r20, {(self.field_shift + 3 + case) % (MAX_FIELD_SHIFT - MIN_FIELD_SHIFT + 1) + MIN_FIELD_SHIFT}",
                    f"andi r1, r1, {FIELD_RANGE - 1}",
                    f"li r2, {self.threshold}",
                    f"bge r1, r2, {skip}",
                    f"addi r9, r9, {13 + case}",
                    f"{skip}:",
                    f"j {merge}",
                ]
            )
        lines.append(f"{merge}:")
        return lines


def _next_pow2_mask(value: int) -> int:
    """Smallest ``2^k - 1`` mask covering ``value``."""
    mask = 1
    while mask < value:
        mask = (mask << 1) | 1
    return mask
