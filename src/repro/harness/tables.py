"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class TextTable:
    """A titled monospace table; cells are pre-formatted strings."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, cells: Sequence[object]) -> None:
        cells = [str(cell) for cell in cells]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

        lines = [self.title, "=" * len(self.title), render(self.headers)]
        lines.append("  ".join("-" * width for width in widths))
        lines.extend(render(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


#: Rendering for an undefined ratio (empty denominator population).
NA = "n/a"


def pct(value: Optional[float]) -> str:
    """Format a rate as the paper prints them (whole percent).

    ``None`` -- an undefined ratio, e.g. the PVN of an estimator that
    never emitted a low-confidence tag -- renders as ``n/a``.
    """
    return NA if value is None else f"{value:.0%}"


def pct1(value: Optional[float]) -> str:
    """One-decimal percent (used where whole percent hides the signal)."""
    return NA if value is None else f"{value:.1%}"


def spct1(value: Optional[float]) -> str:
    """Signed one-decimal percent for deltas (explicit ``+``/``-``)."""
    return NA if value is None else f"{value:+.1%}"
